//! Partitioned, asymmetric, quantized storage of a set of vectors.
//!
//! A [`QuantizedTensor`] holds `rows` vectors of length `cols`, where `cols` is the
//! *contracted* dimension of a matrix product:
//!
//! * for the left operand `A` (`M × Z`) the vectors are the rows of `A`;
//! * for the right operand `B` (`Z × N`) the vectors are the **columns** of `B`
//!   (i.e. the tensor stores `Bᵀ`), which is also exactly how K and V are laid out in
//!   the KV cache (token-major for K, channel-major for V).
//!
//! Each vector is split into partitions of `Π` consecutive elements (Fig. 6); each
//! partition carries its own `min`/`scale` metadata and, for Summation Elimination
//! (§5.3), the integer sum of its codes.
//!
//! Codes are held unpacked (one byte per code) for compute — mirroring §6, where 2-bit
//! codes are widened to INT8 in local GPU memory before the matrix multiplication —
//! while [`packed bytes`](QuantizedTensor::packed_code_bytes) are used for transfer and
//! memory accounting.

use crate::params::{QuantBits, RoundingMode};
use crate::stochastic::{dequantize_value, quantize_value, PartitionMeta};
use hack_tensor::{DetRng, Matrix};

/// Statistics returned by append operations; used by the ablation cost accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppendStats {
    /// Number of already-quantized elements that had to be dequantized and requantized
    /// because the range of their partition changed (only non-zero without RQE).
    pub requantized_elements: usize,
    /// Number of new partitions created by the append.
    pub new_partitions: usize,
    /// Number of new elements quantized.
    pub quantized_elements: usize,
}

impl AppendStats {
    /// Merges two stats objects.
    pub fn merge(self, other: AppendStats) -> AppendStats {
        AppendStats {
            requantized_elements: self.requantized_elements + other.requantized_elements,
            new_partitions: self.new_partitions + other.new_partitions,
            quantized_elements: self.quantized_elements + other.quantized_elements,
        }
    }
}

/// Quantizes one partition's values into `dst` (same length), returning the partition
/// metadata and the code sum (Summation Elimination). Operating on flat slices lets the
/// compiler hoist every bounds check out of the element loop; the per-element
/// arithmetic is exactly [`quantize_value`], so codes are bit-identical to the scalar
/// path.
#[inline]
fn quantize_partition(
    src: &[f32],
    dst: &mut [u8],
    bits: QuantBits,
    mode: RoundingMode,
    rng: &mut DetRng,
) -> (PartitionMeta, i32) {
    debug_assert_eq!(src.len(), dst.len());
    let pm = PartitionMeta::from_values(src, bits);
    let mut sum = 0i32;
    for (c, &v) in dst.iter_mut().zip(src) {
        let code = quantize_value(v, &pm, bits, mode, rng);
        *c = code;
        sum += code as i32;
    }
    (pm, sum)
}

/// Partition layout of one vector along the contracted dimension: Π plus the vector
/// length. This is the single place the partition-index arithmetic lives; every
/// quantize/dequantize/append path derives its ranges from here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionLayout {
    cols: usize,
    partition: usize,
}

impl PartitionLayout {
    /// Creates a layout for vectors of length `cols` split into partitions of Π =
    /// `partition` elements.
    ///
    /// # Panics
    /// Panics if `partition` is zero.
    pub fn new(cols: usize, partition: usize) -> Self {
        assert!(partition > 0, "partition size must be positive");
        Self { cols, partition }
    }

    /// Number of partitions per vector (zero for zero-length vectors).
    #[inline]
    pub fn n_partitions(&self) -> usize {
        if self.cols == 0 {
            0
        } else {
            self.cols.div_ceil(self.partition)
        }
    }

    /// `[start, end)` column range of partition `p` (the last partition may be short).
    #[inline]
    pub fn range(&self, p: usize) -> (usize, usize) {
        let start = p * self.partition;
        let end = (start + self.partition).min(self.cols);
        (start, end)
    }

    /// Iterator over `(start, end)` ranges of every partition, in order.
    pub fn ranges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n_partitions()).map(|p| self.range(p))
    }
}

/// Quantized, partitioned tensor (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTensor {
    rows: usize,
    cols: usize,
    bits: QuantBits,
    partition: usize,
    /// Unpacked codes, `rows × cols`, row-major, each in `[0, 2^bits)`.
    codes: Vec<u8>,
    /// Per-partition metadata, `rows × n_partitions`, row-major.
    meta: Vec<PartitionMeta>,
    /// Per-partition code sums (Summation Elimination), same layout as `meta`.
    sums: Vec<i32>,
}

impl QuantizedTensor {
    /// Quantizes the rows of `m` (each row is one vector along the contracted
    /// dimension). Use for the left operand of a product and for K (token-major).
    pub fn quantize_rows(
        m: &Matrix,
        bits: QuantBits,
        partition: usize,
        mode: RoundingMode,
        rng: &mut DetRng,
    ) -> Self {
        let layout = PartitionLayout::new(m.cols(), partition);
        let rows = m.rows();
        let cols = m.cols();
        let n_parts = layout.n_partitions();
        let mut codes = vec![0u8; rows * cols];
        let mut meta = Vec::with_capacity(rows * n_parts);
        let mut sums = Vec::with_capacity(rows * n_parts);
        if cols > 0 {
            for (r, row_codes) in codes.chunks_exact_mut(cols).enumerate() {
                let row = m.row(r);
                for (start, end) in layout.ranges() {
                    let (pm, sum) = quantize_partition(
                        &row[start..end],
                        &mut row_codes[start..end],
                        bits,
                        mode,
                        rng,
                    );
                    meta.push(pm);
                    sums.push(sum);
                }
            }
        }
        Self {
            rows,
            cols,
            bits,
            partition,
            codes,
            meta,
            sums,
        }
    }

    /// Quantizes the columns of `m` (`Z × N`): the resulting tensor has `N` vectors of
    /// length `Z` (it stores `mᵀ`). Use for the right operand of a product and for V
    /// (sequence-major source, channel-major storage).
    pub fn quantize_cols(
        m: &Matrix,
        bits: QuantBits,
        partition: usize,
        mode: RoundingMode,
        rng: &mut DetRng,
    ) -> Self {
        Self::quantize_rows(&m.transpose(), bits, partition, mode, rng)
    }

    /// Creates an empty tensor with `rows` vectors of length zero, ready for appends.
    pub fn empty(rows: usize, bits: QuantBits, partition: usize) -> Self {
        assert!(partition > 0, "partition size must be positive");
        Self {
            rows,
            cols: 0,
            bits,
            partition,
            codes: Vec::new(),
            meta: Vec::new(),
            sums: Vec::new(),
        }
    }

    /// Rebuilds a tensor from its raw parts (used by the transport layer).
    ///
    /// # Panics
    /// Panics if the part lengths are inconsistent.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        rows: usize,
        cols: usize,
        bits: QuantBits,
        partition: usize,
        codes: Vec<u8>,
        meta: Vec<PartitionMeta>,
        sums: Vec<i32>,
    ) -> Self {
        assert_eq!(codes.len(), rows * cols, "codes length mismatch");
        let n_parts = PartitionLayout::new(cols, partition).n_partitions();
        assert_eq!(meta.len(), rows * n_parts, "meta length mismatch");
        assert_eq!(sums.len(), rows * n_parts, "sums length mismatch");
        Self {
            rows,
            cols,
            bits,
            partition,
            codes,
            meta,
            sums,
        }
    }

    /// Number of vectors.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Length of each vector (the contracted dimension).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Quantization precision.
    pub fn bits(&self) -> QuantBits {
        self.bits
    }

    /// Partition size Π.
    pub fn partition(&self) -> usize {
        self.partition
    }

    /// Partition layout of the stored vectors.
    #[inline]
    pub fn layout(&self) -> PartitionLayout {
        PartitionLayout {
            cols: self.cols,
            partition: self.partition,
        }
    }

    /// Number of partitions per vector.
    #[inline]
    pub fn n_partitions(&self) -> usize {
        self.layout().n_partitions()
    }

    /// `[start, end)` column range of partition `p`.
    #[inline]
    pub fn partition_range(&self, p: usize) -> (usize, usize) {
        self.layout().range(p)
    }

    /// Codes of vector `r`.
    pub fn codes_row(&self, r: usize) -> &[u8] {
        &self.codes[r * self.cols..(r + 1) * self.cols]
    }

    /// All codes, row-major.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// All partition metadata, row-major.
    pub fn metas(&self) -> &[PartitionMeta] {
        &self.meta
    }

    /// All partition sums, row-major.
    pub fn sums(&self) -> &[i32] {
        &self.sums
    }

    /// Metadata of partition `p` of vector `r`.
    #[inline]
    pub fn meta(&self, r: usize, p: usize) -> PartitionMeta {
        self.meta[r * self.n_partitions() + p]
    }

    /// Stored code sum of partition `p` of vector `r` (Summation Elimination).
    #[inline]
    pub fn sum(&self, r: usize, p: usize) -> i32 {
        self.sums[r * self.n_partitions() + p]
    }

    /// Recomputes the code sum of partition `p` of vector `r` from the codes.
    ///
    /// This is what the HACK/SE ablation does every decode iteration instead of reading
    /// the stored sums.
    pub fn recompute_sum(&self, r: usize, p: usize) -> i32 {
        let (start, end) = self.partition_range(p);
        self.codes_row(r)[start..end]
            .iter()
            .map(|&c| c as i32)
            .sum()
    }

    /// Verifies the stored-sum invariant (every stored sum equals the recomputed one).
    pub fn sums_consistent(&self) -> bool {
        for r in 0..self.rows {
            for p in 0..self.n_partitions() {
                if self.sum(r, p) != self.recompute_sum(r, p) {
                    return false;
                }
            }
        }
        true
    }

    /// Dequantizes into a `rows × cols` matrix (in the stored orientation).
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        let cols = self.cols;
        if cols == 0 {
            return out;
        }
        let layout = self.layout();
        let n_parts = layout.n_partitions();
        let data = out.as_mut_slice();
        for (r, (row_codes, out_row)) in self
            .codes
            .chunks_exact(cols)
            .zip(data.chunks_exact_mut(cols))
            .enumerate()
        {
            let meta_row = &self.meta[r * n_parts..(r + 1) * n_parts];
            for (p, (start, end)) in layout.ranges().enumerate() {
                let pm = meta_row[p];
                for (o, &c) in out_row[start..end].iter_mut().zip(&row_codes[start..end]) {
                    *o = dequantize_value(c, &pm);
                }
            }
        }
        out
    }

    /// Dequantizes and transposes, recovering the original orientation of a tensor that
    /// was built with [`Self::quantize_cols`].
    pub fn dequantize_transposed(&self) -> Matrix {
        self.dequantize().transpose()
    }

    /// Appends new vectors (rows of `m`, which must have `cols` columns), quantizing
    /// them with fresh partitions. This is the K-append path during decode: the new
    /// token's K vector forms its own partitions, so existing metadata never changes.
    pub fn append_rows(&mut self, m: &Matrix, mode: RoundingMode, rng: &mut DetRng) -> AppendStats {
        assert_eq!(
            m.cols(),
            self.cols,
            "append_rows expects vectors of length {}",
            self.cols
        );
        let layout = self.layout();
        let mut stats = AppendStats::default();
        for r in 0..m.rows() {
            let row = m.row(r);
            let base = self.codes.len();
            self.codes.resize(base + self.cols, 0);
            let row_codes = &mut self.codes[base..];
            for (start, end) in layout.ranges() {
                let (pm, sum) = quantize_partition(
                    &row[start..end],
                    &mut row_codes[start..end],
                    self.bits,
                    mode,
                    rng,
                );
                self.meta.push(pm);
                self.sums.push(sum);
                stats.new_partitions += 1;
                stats.quantized_elements += end - start;
            }
            self.rows += 1;
        }
        stats
    }

    /// Appends new elements along the contracted dimension to **every** vector.
    ///
    /// `new_cols` must be a `rows × t` matrix: row `r` holds the `t` new elements of
    /// vector `r`. This is the V-append path during decode *without* Requantization
    /// Elimination: when the last partition is partial, its range may grow and all its
    /// existing codes must be requantized (Fig. 8). The returned [`AppendStats`] counts
    /// exactly how many elements were requantized.
    pub fn append_columns(
        &mut self,
        new_cols: &Matrix,
        mode: RoundingMode,
        rng: &mut DetRng,
    ) -> AppendStats {
        assert_eq!(
            new_cols.rows(),
            self.rows,
            "append_columns expects {} rows",
            self.rows
        );
        let t = new_cols.cols();
        if t == 0 {
            return AppendStats::default();
        }
        let old_cols = self.cols;
        let new_total = old_cols + t;
        let old_parts = self.n_partitions();
        let new_layout = PartitionLayout::new(new_total, self.partition);
        let new_parts = new_layout.n_partitions();
        let mut stats = AppendStats::default();

        // Rebuild codes/meta/sums row by row (the contracted dimension is contiguous
        // per row, so growth shifts every subsequent row's storage anyway).
        let mut new_codes = vec![0u8; self.rows * new_total];
        let mut new_meta = Vec::with_capacity(self.rows * new_parts);
        let mut new_sums = Vec::with_capacity(self.rows * new_parts);
        // Scratch for the values of a partition that must be (re)quantized.
        let mut values: Vec<f32> = Vec::with_capacity(self.partition);

        for (r, new_row_codes) in new_codes.chunks_exact_mut(new_total).enumerate() {
            // Assemble the full real-valued row: dequantized existing full partitions
            // stay untouched; the partial last partition (if any) is dequantized so it
            // can be requantized together with the new values.
            let old_row_codes = &self.codes[r * old_cols..(r + 1) * old_cols];
            let old_meta_row = &self.meta[r * old_parts..(r + 1) * old_parts];
            let old_sums_row = &self.sums[r * old_parts..(r + 1) * old_parts];
            let new_row_vals = new_cols.row(r);

            for (p, (start, end)) in new_layout.ranges().enumerate() {
                if end <= old_cols {
                    // Entirely existing, untouched partition: copy codes/meta/sum.
                    new_row_codes[start..end].copy_from_slice(&old_row_codes[start..end]);
                    new_meta.push(old_meta_row[p]);
                    new_sums.push(old_sums_row[p]);
                    continue;
                }

                // Partition contains new elements (and possibly old ones needing
                // requantization).
                let n_old = old_cols.saturating_sub(start);
                values.clear();
                if n_old > 0 {
                    let pm_old = old_meta_row[p];
                    values.extend(
                        old_row_codes[start..old_cols]
                            .iter()
                            .map(|&c| dequantize_value(c, &pm_old)),
                    );
                    stats.requantized_elements += n_old;
                }
                let new_from = start.max(old_cols);
                values.extend_from_slice(&new_row_vals[new_from - old_cols..end - old_cols]);
                stats.quantized_elements += end - new_from;
                if p >= old_parts || n_old == 0 {
                    stats.new_partitions += 1;
                }

                let (pm, sum) = quantize_partition(
                    &values,
                    &mut new_row_codes[start..end],
                    self.bits,
                    mode,
                    rng,
                );
                new_meta.push(pm);
                new_sums.push(sum);
            }
        }

        self.cols = new_total;
        self.codes = new_codes;
        self.meta = new_meta;
        self.sums = new_sums;
        stats
    }

    /// Appends exactly one full partition's worth of elements (`rows × Π`) to every
    /// vector. Used by the RQE path when the FP16 tail buffer fills up: the flushed
    /// block becomes a brand-new partition, so no existing codes are touched.
    ///
    /// # Panics
    /// Panics if the current length is not a multiple of Π or the block is not `Π` wide.
    pub fn append_full_partition(
        &mut self,
        block: &Matrix,
        mode: RoundingMode,
        rng: &mut DetRng,
    ) -> AppendStats {
        assert_eq!(
            self.cols % self.partition,
            0,
            "append_full_partition requires the tensor to end on a partition boundary"
        );
        assert_eq!(block.cols(), self.partition, "block must be exactly Π wide");
        let stats = self.append_columns(block, mode, rng);
        debug_assert_eq!(stats.requantized_elements, 0);
        stats
    }

    /// Bytes needed for the densely packed codes (2/4/8-bit packing).
    pub fn packed_code_bytes(&self) -> usize {
        self.rows * self.bits.packed_bytes(self.cols)
    }

    /// Bytes needed for the per-partition `min`/`scale` metadata (two FP16 each).
    pub fn metadata_bytes(&self) -> usize {
        self.meta.len() * PartitionMeta::STORAGE_BYTES
    }

    /// Bytes needed for the stored partition sums, honouring the alignment rule of §6
    /// (1 byte when `b + ⌈log2 Π⌉ ≤ 8`, otherwise INT16).
    pub fn sum_bytes(&self) -> usize {
        let per = crate::params::PartitionSize(self.partition).sum_storage_bytes(self.bits);
        self.sums.len() * per
    }

    /// Total storage bytes. `include_sums` is false for methods that do not use
    /// Summation Elimination (baselines, HACK/SE).
    pub fn total_bytes(&self, include_sums: bool) -> usize {
        self.packed_code_bytes()
            + self.metadata_bytes()
            + if include_sums { self.sum_bytes() } else { 0 }
    }
}

/// Pre-change scalar implementations, kept verbatim as the bit-exactness oracle for
/// the blocked kernels above. Every optimized path must reproduce these exactly —
/// codes, metadata, sums and RNG stream consumption included.
#[cfg(test)]
mod scalar_reference {
    use super::*;

    /// The seed's element-indexed `quantize_rows`.
    pub fn quantize_rows(
        m: &Matrix,
        bits: QuantBits,
        partition: usize,
        mode: RoundingMode,
        rng: &mut DetRng,
    ) -> QuantizedTensor {
        assert!(partition > 0, "partition size must be positive");
        let rows = m.rows();
        let cols = m.cols();
        let n_parts = cols
            .div_ceil(partition.max(1))
            .max(if cols == 0 { 0 } else { 1 });
        let mut codes = vec![0u8; rows * cols];
        let mut meta = Vec::with_capacity(rows * n_parts);
        let mut sums = Vec::with_capacity(rows * n_parts);
        for r in 0..rows {
            let row = m.row(r);
            for p in 0..n_parts {
                let start = p * partition;
                let end = (start + partition).min(cols);
                let slice = &row[start..end];
                let pm = PartitionMeta::from_values(slice, bits);
                let mut sum = 0i32;
                for (i, &v) in slice.iter().enumerate() {
                    let c = quantize_value(v, &pm, bits, mode, rng);
                    codes[r * cols + start + i] = c;
                    sum += c as i32;
                }
                meta.push(pm);
                sums.push(sum);
            }
        }
        QuantizedTensor::from_parts(rows, cols, bits, partition, codes, meta, sums)
    }

    /// The seed's element-indexed `dequantize`.
    pub fn dequantize(q: &QuantizedTensor) -> Matrix {
        let mut out = Matrix::zeros(q.rows(), q.cols());
        let n_parts = q.n_partitions();
        for r in 0..q.rows() {
            for p in 0..n_parts {
                let (start, end) = q.partition_range(p);
                let pm = q.metas()[r * n_parts + p];
                for c in start..end {
                    out.set(r, c, dequantize_value(q.codes()[r * q.cols() + c], &pm));
                }
            }
        }
        out
    }

    /// The seed's element-indexed `append_columns`.
    pub fn append_columns(
        q: &mut QuantizedTensor,
        new_cols: &Matrix,
        mode: RoundingMode,
        rng: &mut DetRng,
    ) -> AppendStats {
        assert_eq!(new_cols.rows(), q.rows(), "append_columns rows");
        let t = new_cols.cols();
        if t == 0 {
            return AppendStats::default();
        }
        let old_cols = q.cols();
        let new_total = old_cols + t;
        let old_parts = q.n_partitions();
        let partition = q.partition();
        let bits = q.bits();
        let new_parts = new_total.div_ceil(partition);
        let mut stats = AppendStats::default();

        let mut new_codes = vec![0u8; q.rows() * new_total];
        let mut new_meta = Vec::with_capacity(q.rows() * new_parts);
        let mut new_sums = Vec::with_capacity(q.rows() * new_parts);

        for r in 0..q.rows() {
            let old_row_codes = &q.codes()[r * old_cols..(r + 1) * old_cols];
            let new_row_vals = new_cols.row(r);

            for p in 0..new_parts {
                let start = p * partition;
                let end = (start + partition).min(new_total);

                if end <= old_cols {
                    let pm = q.metas()[r * old_parts + p];
                    let sum = q.sums()[r * old_parts + p];
                    new_codes[r * new_total + start..r * new_total + end]
                        .copy_from_slice(&old_row_codes[start..end]);
                    new_meta.push(pm);
                    new_sums.push(sum);
                    continue;
                }

                let n_old = old_cols.saturating_sub(start);
                let mut values: Vec<f32> = Vec::with_capacity(end - start);
                if n_old > 0 {
                    let pm_old = q.metas()[r * old_parts + p];
                    #[allow(clippy::needless_range_loop)]
                    for c in start..old_cols {
                        values.push(dequantize_value(old_row_codes[c], &pm_old));
                    }
                    stats.requantized_elements += n_old;
                }
                for idx in (start.max(old_cols))..end {
                    values.push(new_row_vals[idx - old_cols]);
                }
                stats.quantized_elements += end - start.max(old_cols);
                if p >= old_parts || n_old == 0 {
                    stats.new_partitions += 1;
                }

                let pm = PartitionMeta::from_values(&values, bits);
                let mut sum = 0i32;
                for (i, &v) in values.iter().enumerate() {
                    let c = quantize_value(v, &pm, bits, mode, rng);
                    new_codes[r * new_total + start + i] = c;
                    sum += c as i32;
                }
                new_meta.push(pm);
                new_sums.push(sum);
            }
        }

        *q = QuantizedTensor::from_parts(
            q.rows(),
            new_total,
            bits,
            partition,
            new_codes,
            new_meta,
            new_sums,
        );
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_tensor::relative_frobenius_error;

    fn rng() -> DetRng {
        DetRng::new(1234)
    }

    // --- Bit-exactness of the blocked kernels against the scalar reference. ---

    #[test]
    fn blocked_quantize_rows_is_bit_identical_to_scalar_reference() {
        for (case, (rows, cols, partition)) in
            [(3, 128, 64), (5, 100, 32), (1, 16, 16), (4, 97, 64)]
                .into_iter()
                .enumerate()
        {
            for bits in [QuantBits::Int2, QuantBits::Int4, QuantBits::Int8] {
                for mode in [RoundingMode::Nearest, RoundingMode::Stochastic] {
                    let mut data_rng = DetRng::new(500 + case as u64);
                    let m = Matrix::random_normal(rows, cols, 0.0, 1.5, &mut data_rng);
                    let mut rng_a = DetRng::new(42 + case as u64);
                    let mut rng_b = DetRng::new(42 + case as u64);
                    let fast =
                        QuantizedTensor::quantize_rows(&m, bits, partition, mode, &mut rng_a);
                    let slow =
                        scalar_reference::quantize_rows(&m, bits, partition, mode, &mut rng_b);
                    assert_eq!(fast, slow, "case {case} {bits:?} {mode:?}");
                    // The RNG streams must stay in lockstep, so later draws agree too.
                    assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "case {case}");
                }
            }
        }
    }

    #[test]
    fn blocked_dequantize_is_bit_identical_to_scalar_reference() {
        for seed in 0..4 {
            let mut rng = DetRng::new(700 + seed);
            let m = Matrix::random_normal(6, 150, 0.0, 2.0, &mut rng);
            let q = QuantizedTensor::quantize_rows(
                &m,
                QuantBits::Int2,
                64,
                RoundingMode::Stochastic,
                &mut rng,
            );
            let fast = q.dequantize();
            let slow = scalar_reference::dequantize(&q);
            assert_eq!(fast.as_slice(), slow.as_slice(), "seed {seed}");
        }
    }

    #[test]
    fn blocked_append_columns_is_bit_identical_to_scalar_reference() {
        // Exercise aligned, unaligned and growing-past-a-boundary appends.
        for (case, (cols, t)) in [(64, 3), (40, 1), (40, 30), (0, 32), (33, 64)]
            .into_iter()
            .enumerate()
        {
            for mode in [RoundingMode::Nearest, RoundingMode::Stochastic] {
                let mut data_rng = DetRng::new(900 + case as u64);
                let head = Matrix::random_normal(4, cols, 0.0, 1.0, &mut data_rng);
                let tail = Matrix::random_normal(4, t, 0.0, 2.0, &mut data_rng);
                let mut rng_a = DetRng::new(77 + case as u64);
                let mut rng_b = DetRng::new(77 + case as u64);
                let mut fast = if cols == 0 {
                    QuantizedTensor::empty(4, QuantBits::Int2, 32)
                } else {
                    QuantizedTensor::quantize_rows(&head, QuantBits::Int2, 32, mode, &mut rng_a)
                };
                let mut slow = if cols == 0 {
                    QuantizedTensor::empty(4, QuantBits::Int2, 32)
                } else {
                    scalar_reference::quantize_rows(&head, QuantBits::Int2, 32, mode, &mut rng_b)
                };
                let stats_fast = fast.append_columns(&tail, mode, &mut rng_a);
                let stats_slow =
                    scalar_reference::append_columns(&mut slow, &tail, mode, &mut rng_b);
                assert_eq!(fast, slow, "case {case} {mode:?}");
                assert_eq!(stats_fast, stats_slow, "case {case} {mode:?}");
                assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "case {case}");
            }
        }
    }

    #[test]
    fn quantize_dequantize_rows_bounded_error() {
        let mut rng = rng();
        let m = Matrix::random_normal(8, 128, 0.0, 1.0, &mut rng);
        let q = QuantizedTensor::quantize_rows(
            &m,
            QuantBits::Int8,
            64,
            RoundingMode::Nearest,
            &mut rng,
        );
        let back = q.dequantize();
        let err = relative_frobenius_error(&m, &back);
        assert!(err < 0.01, "int8 relative error {err}");
    }

    #[test]
    fn int2_error_larger_than_int8_but_bounded() {
        let mut rng = rng();
        let m = Matrix::random_normal(8, 128, 0.0, 1.0, &mut rng);
        let q2 = QuantizedTensor::quantize_rows(
            &m,
            QuantBits::Int2,
            64,
            RoundingMode::Nearest,
            &mut rng,
        );
        let q8 = QuantizedTensor::quantize_rows(
            &m,
            QuantBits::Int8,
            64,
            RoundingMode::Nearest,
            &mut rng,
        );
        let e2 = relative_frobenius_error(&m, &q2.dequantize());
        let e8 = relative_frobenius_error(&m, &q8.dequantize());
        assert!(e2 > e8, "int2 error {e2} should exceed int8 error {e8}");
        assert!(e2 < 0.5, "int2 error should still be bounded, got {e2}");
    }

    #[test]
    fn smaller_partitions_give_lower_error() {
        let mut rng = rng();
        // Rows with a strong per-segment structure so partition granularity matters.
        let m = Matrix::from_fn(4, 128, |r, c| {
            let segment = (c / 32) as f32;
            (r as f32 + 1.0) * segment + ((c % 32) as f32) * 0.01
        });
        let q32 = QuantizedTensor::quantize_rows(
            &m,
            QuantBits::Int2,
            32,
            RoundingMode::Nearest,
            &mut rng,
        );
        let q128 = QuantizedTensor::quantize_rows(
            &m,
            QuantBits::Int2,
            128,
            RoundingMode::Nearest,
            &mut rng,
        );
        let e32 = relative_frobenius_error(&m, &q32.dequantize());
        let e128 = relative_frobenius_error(&m, &q128.dequantize());
        assert!(
            e32 < e128,
            "Π=32 error {e32} should be below Π=128 error {e128}"
        );
    }

    #[test]
    fn quantize_cols_stores_transpose() {
        let mut rng = rng();
        let m = Matrix::random_normal(64, 16, 0.0, 1.0, &mut rng);
        let q = QuantizedTensor::quantize_cols(
            &m,
            QuantBits::Int8,
            32,
            RoundingMode::Nearest,
            &mut rng,
        );
        assert_eq!(q.rows(), 16);
        assert_eq!(q.cols(), 64);
        let back = q.dequantize_transposed();
        assert_eq!(back.shape(), (64, 16));
        assert!(relative_frobenius_error(&m, &back) < 0.01);
    }

    #[test]
    fn partition_layout_and_ranges() {
        let mut rng = rng();
        let m = Matrix::random_normal(2, 100, 0.0, 1.0, &mut rng);
        let q = QuantizedTensor::quantize_rows(
            &m,
            QuantBits::Int2,
            64,
            RoundingMode::Nearest,
            &mut rng,
        );
        assert_eq!(q.n_partitions(), 2);
        assert_eq!(q.partition_range(0), (0, 64));
        assert_eq!(q.partition_range(1), (64, 100));
        assert_eq!(q.metas().len(), 4);
        assert_eq!(q.sums().len(), 4);
    }

    #[test]
    fn stored_sums_match_recomputed() {
        let mut rng = rng();
        let m = Matrix::random_normal(5, 96, 0.0, 2.0, &mut rng);
        let q = QuantizedTensor::quantize_rows(
            &m,
            QuantBits::Int2,
            32,
            RoundingMode::Stochastic,
            &mut rng,
        );
        assert!(q.sums_consistent());
        for r in 0..q.rows() {
            for p in 0..q.n_partitions() {
                assert_eq!(q.sum(r, p), q.recompute_sum(r, p));
            }
        }
    }

    #[test]
    fn append_rows_preserves_existing_metadata() {
        let mut rng = rng();
        let m = Matrix::random_normal(3, 64, 0.0, 1.0, &mut rng);
        let mut q = QuantizedTensor::quantize_rows(
            &m,
            QuantBits::Int2,
            64,
            RoundingMode::Nearest,
            &mut rng,
        );
        let before_meta = q.metas().to_vec();
        let extra = Matrix::random_normal(2, 64, 0.0, 1.0, &mut rng);
        let stats = q.append_rows(&extra, RoundingMode::Nearest, &mut rng);
        assert_eq!(q.rows(), 5);
        assert_eq!(stats.new_partitions, 2);
        assert_eq!(stats.requantized_elements, 0);
        assert_eq!(&q.metas()[..before_meta.len()], &before_meta[..]);
        assert!(q.sums_consistent());
    }

    #[test]
    fn append_columns_requantizes_partial_partition() {
        let mut rng = rng();
        // 8 channels, 40 tokens, partition 32: last partition has 8 tokens.
        let v = Matrix::random_normal(8, 40, 0.0, 1.0, &mut rng);
        let mut q = QuantizedTensor::quantize_rows(
            &v,
            QuantBits::Int2,
            32,
            RoundingMode::Nearest,
            &mut rng,
        );
        let extra = Matrix::random_normal(8, 1, 0.0, 5.0, &mut rng); // likely out of range
        let stats = q.append_columns(&extra, RoundingMode::Nearest, &mut rng);
        assert_eq!(q.cols(), 41);
        // All 8 rows requantize their 8 existing tail elements.
        assert_eq!(stats.requantized_elements, 8 * 8);
        assert_eq!(stats.quantized_elements, 8);
        assert!(q.sums_consistent());
    }

    #[test]
    fn append_columns_on_boundary_creates_new_partition_without_requantization() {
        let mut rng = rng();
        let v = Matrix::random_normal(4, 64, 0.0, 1.0, &mut rng);
        let mut q = QuantizedTensor::quantize_rows(
            &v,
            QuantBits::Int2,
            32,
            RoundingMode::Nearest,
            &mut rng,
        );
        let extra = Matrix::random_normal(4, 3, 0.0, 1.0, &mut rng);
        let stats = q.append_columns(&extra, RoundingMode::Nearest, &mut rng);
        assert_eq!(stats.requantized_elements, 0);
        assert_eq!(stats.new_partitions, 4);
        assert_eq!(q.cols(), 67);
        assert_eq!(q.n_partitions(), 3);
        assert!(q.sums_consistent());
    }

    #[test]
    fn append_full_partition_never_requantizes() {
        let mut rng = rng();
        let v = Matrix::random_normal(4, 64, 0.0, 1.0, &mut rng);
        let mut q = QuantizedTensor::quantize_rows(
            &v,
            QuantBits::Int2,
            32,
            RoundingMode::Nearest,
            &mut rng,
        );
        let block = Matrix::random_normal(4, 32, 0.0, 1.0, &mut rng);
        let stats = q.append_full_partition(&block, RoundingMode::Nearest, &mut rng);
        assert_eq!(stats.requantized_elements, 0);
        assert_eq!(q.cols(), 96);
    }

    #[test]
    #[should_panic(expected = "partition boundary")]
    fn append_full_partition_requires_boundary() {
        let mut rng = rng();
        let v = Matrix::random_normal(2, 40, 0.0, 1.0, &mut rng);
        let mut q = QuantizedTensor::quantize_rows(
            &v,
            QuantBits::Int2,
            32,
            RoundingMode::Nearest,
            &mut rng,
        );
        let block = Matrix::zeros(2, 32);
        q.append_full_partition(&block, RoundingMode::Nearest, &mut rng);
    }

    #[test]
    fn append_columns_equivalent_to_direct_quantization_of_full_matrix() {
        // With nearest rounding and appends aligned to partition boundaries, appending
        // must produce exactly the same codes as quantizing the concatenated matrix.
        let mut rng_a = DetRng::new(9);
        let mut rng_b = DetRng::new(9);
        let head = Matrix::random_normal(4, 64, 0.0, 1.0, &mut rng_a);
        let tail = Matrix::random_normal(4, 32, 0.0, 1.0, &mut rng_a);
        let full = head.hstack(&tail);

        let mut incremental = QuantizedTensor::quantize_rows(
            &head,
            QuantBits::Int2,
            32,
            RoundingMode::Nearest,
            &mut rng_b,
        );
        incremental.append_columns(&tail, RoundingMode::Nearest, &mut rng_b);
        let direct = QuantizedTensor::quantize_rows(
            &full,
            QuantBits::Int2,
            32,
            RoundingMode::Nearest,
            &mut rng_b,
        );
        assert_eq!(incremental.codes(), direct.codes());
        assert_eq!(incremental.metas(), direct.metas());
        assert_eq!(incremental.sums(), direct.sums());
    }

    #[test]
    fn empty_tensor_appends() {
        let mut rng = rng();
        let mut q = QuantizedTensor::empty(8, QuantBits::Int2, 32);
        assert_eq!(q.n_partitions(), 0);
        assert_eq!(q.total_bytes(true), 0);
        let cols = Matrix::random_normal(8, 32, 0.0, 1.0, &mut rng);
        q.append_columns(&cols, RoundingMode::Nearest, &mut rng);
        assert_eq!(q.cols(), 32);
        assert_eq!(q.n_partitions(), 1);
        assert!(q.sums_consistent());
    }

    #[test]
    fn storage_accounting() {
        let mut rng = rng();
        let m = Matrix::random_normal(16, 128, 0.0, 1.0, &mut rng);
        let q = QuantizedTensor::quantize_rows(
            &m,
            QuantBits::Int2,
            64,
            RoundingMode::Nearest,
            &mut rng,
        );
        // 16 rows x 128 cols x 2 bits = 512 bytes of codes.
        assert_eq!(q.packed_code_bytes(), 512);
        // 16 rows x 2 partitions x 4 bytes of metadata.
        assert_eq!(q.metadata_bytes(), 128);
        // Π=64, 2-bit: sums fit in one byte -> 32 bytes.
        assert_eq!(q.sum_bytes(), 32);
        assert_eq!(q.total_bytes(true), 512 + 128 + 32);
        assert_eq!(q.total_bytes(false), 512 + 128);
        // Compression vs FP16: 16*128*2 = 4096 bytes -> ~84% compression with sums.
        let fp16 = 16 * 128 * 2;
        let ratio = 1.0 - q.total_bytes(true) as f64 / fp16 as f64;
        assert!(ratio > 0.8, "compression ratio {ratio}");
    }

    #[test]
    fn from_parts_round_trip() {
        let mut rng = rng();
        let m = Matrix::random_normal(4, 96, 0.0, 1.0, &mut rng);
        let q = QuantizedTensor::quantize_rows(
            &m,
            QuantBits::Int2,
            32,
            RoundingMode::Nearest,
            &mut rng,
        );
        let rebuilt = QuantizedTensor::from_parts(
            q.rows(),
            q.cols(),
            q.bits(),
            q.partition(),
            q.codes().to_vec(),
            q.metas().to_vec(),
            q.sums().to_vec(),
        );
        assert_eq!(q, rebuilt);
    }

    #[test]
    fn codes_stay_within_bit_range() {
        let mut rng = rng();
        let m = Matrix::random_normal(6, 64, 0.0, 3.0, &mut rng);
        for bits in [QuantBits::Int2, QuantBits::Int4, QuantBits::Int8] {
            let q =
                QuantizedTensor::quantize_rows(&m, bits, 32, RoundingMode::Stochastic, &mut rng);
            let max = bits.max_code() as u8;
            assert!(
                q.codes().iter().all(|&c| c <= max),
                "codes exceed {max} for {bits:?}"
            );
        }
    }
}
