//! Homomorphic quantized matrix multiplication (Eq. 4 of the paper).
//!
//! For `C = A·B` with `A` quantized per-row and `B` quantized per-column (both along
//! the contracted dimension, in aligned partitions of Π elements), each output entry is
//! recovered per partition `p` as
//!
//! ```text
//! Σ_z a_iz·b_zj ≈ s_a·s_b·Σ_z a'_iz·b'_zj  +  m_b·s_a·Σ_z a'_iz  +  m_a·s_b·Σ_z b'_zj  +  Π·m_a·m_b
//! ```
//!
//! The first term is the integer GEMM on the raw codes (executable with INT8 tensor
//! cores); the remaining three are the cheap affine correction. With Summation
//! Elimination the code sums `Σ a'` and `Σ b'` are read from storage instead of being
//! recomputed.

use crate::cost::HomomorphicOpCounts;
use crate::qmatrix::QuantizedTensor;
use hack_tensor::matmul::partition_dots_u8_i32;
use hack_tensor::Matrix;

/// Checks that two tensors can participate in a homomorphic product.
fn check_compat(a: &QuantizedTensor, b: &QuantizedTensor) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "contracted dimension mismatch: A has {}, B has {}",
        a.cols(),
        b.cols()
    );
    assert_eq!(
        a.partition(),
        b.partition(),
        "partition size mismatch: A uses {}, B uses {}",
        a.partition(),
        b.partition()
    );
}

/// Homomorphic quantized GEMM with Summation Elimination (stored code sums).
///
/// `a` holds the `M` rows of the left operand, `b` holds the `N` columns of the right
/// operand (both along the contracted dimension). Returns the `M × N` approximation of
/// `A·B` in `f32`.
pub fn homomorphic_matmul(a: &QuantizedTensor, b: &QuantizedTensor) -> Matrix {
    homomorphic_matmul_impl(a, b, true).0
}

/// Homomorphic quantized GEMM without Summation Elimination: the per-partition code
/// sums are recomputed from the codes on every call (the HACK/SE ablation, §7.4).
/// The numerical result is identical to [`homomorphic_matmul`].
pub fn homomorphic_matmul_no_se(a: &QuantizedTensor, b: &QuantizedTensor) -> Matrix {
    homomorphic_matmul_impl(a, b, false).0
}

/// Homomorphic GEMM that also returns the operation counts of the integer GEMM and of
/// the approximation step, for the cost model and the ablation benches.
pub fn homomorphic_matmul_counted(
    a: &QuantizedTensor,
    b: &QuantizedTensor,
    use_stored_sums: bool,
) -> (Matrix, HomomorphicOpCounts) {
    homomorphic_matmul_impl(a, b, use_stored_sums)
}

/// Recomputes every per-partition code sum of `t` (the no-SE path), once per
/// `(row, partition)` — the same recomputation count as reading them partition by
/// partition, so [`HomomorphicOpCounts::sum_recompute_ops`] is unchanged.
fn recompute_all_sums(t: &QuantizedTensor) -> Vec<i32> {
    let layout = t.layout();
    let cols = t.cols();
    let mut sums = Vec::with_capacity(t.rows() * layout.n_partitions());
    for row_codes in t.codes().chunks_exact(cols.max(1)) {
        for (start, end) in layout.ranges() {
            sums.push(row_codes[start..end].iter().map(|&c| c as i32).sum());
        }
    }
    sums
}

fn homomorphic_matmul_impl(
    a: &QuantizedTensor,
    b: &QuantizedTensor,
    use_stored_sums: bool,
) -> (Matrix, HomomorphicOpCounts) {
    check_compat(a, b);
    let m = a.rows();
    let n = b.rows();
    let z = a.cols();
    let layout = a.layout();
    let n_parts = layout.n_partitions();
    let mut out = Matrix::zeros(m, n);
    let mut counts = HomomorphicOpCounts::default();

    // Hoist everything that is per-partition or per-row out of the (i, j) loops:
    // partition ranges/lengths, code sums (stored with SE, recomputed once per
    // row-partition without), and flat row strides into the code/metadata arrays.
    let spans: Vec<(usize, usize)> = layout.ranges().collect();
    let lens: Vec<f32> = spans.iter().map(|&(s, e)| (e - s) as f32).collect();
    let mut dots = vec![0i32; n_parts];
    let (a_sums_buf, b_sums_buf);
    let (a_sums, b_sums): (&[i32], &[i32]) = if use_stored_sums {
        (a.sums(), b.sums())
    } else {
        a_sums_buf = recompute_all_sums(a);
        b_sums_buf = recompute_all_sums(b);
        counts.sum_recompute_ops += (m + n) * z;
        (&a_sums_buf, &b_sums_buf)
    };
    let a_codes = a.codes();
    let b_codes = b.codes();
    let a_metas = a.metas();
    let b_metas = b.metas();

    for i in 0..m {
        let a_row = &a_codes[i * z..(i + 1) * z];
        let a_meta_row = &a_metas[i * n_parts..(i + 1) * n_parts];
        let a_sum_row = &a_sums[i * n_parts..(i + 1) * n_parts];
        let out_row = out.row_mut(i);
        #[allow(clippy::needless_range_loop)]
        for j in 0..n {
            let b_row = &b_codes[j * z..(j + 1) * z];
            let b_meta_row = &b_metas[j * n_parts..(j + 1) * n_parts];
            let b_sum_row = &b_sums[j * n_parts..(j + 1) * n_parts];

            // Integer inner products on the raw codes, all partitions in one
            // fused pass (the INT8-accelerated part).
            partition_dots_u8_i32(a_row, b_row, &spans, &mut dots);

            // Accumulate the per-partition affine corrections (Eq. 4) in
            // partition order — the same FP addition order as the scalar
            // reference, so the result is bit-identical.
            let mut acc = 0.0f32;
            for (p, &dot) in dots.iter().enumerate() {
                let a_meta = a_meta_row[p];
                let b_meta = b_meta_row[p];
                acc += a_meta.scale * b_meta.scale * dot as f32
                    + b_meta.min * a_meta.scale * a_sum_row[p] as f32
                    + a_meta.min * b_meta.scale * b_sum_row[p] as f32
                    + lens[p] * a_meta.min * b_meta.min;
            }
            out_row[j] += acc;
        }
    }
    counts.int_mac_ops = m * n * z;
    counts.approx_ops = 9 * m * n * n_parts;
    counts.m = m;
    counts.n = n;
    counts.z = z;
    (out, counts)
}

/// The pre-change scalar homomorphic GEMM, retained verbatim.
///
/// It serves two purposes: the bit-exactness oracle the blocked kernel above is
/// pinned against in tests, and the baseline the in-tree `bench` binary times the
/// optimized kernel against (see PERF.md).
pub mod reference {
    use super::*;

    /// Scalar homomorphic GEMM (the seed implementation of
    /// [`super::homomorphic_matmul`]).
    pub fn homomorphic_matmul_scalar(
        a: &QuantizedTensor,
        b: &QuantizedTensor,
        use_stored_sums: bool,
    ) -> (Matrix, HomomorphicOpCounts) {
        check_compat(a, b);
        let m = a.rows();
        let n = b.rows();
        let z = a.cols();
        let n_parts = a.n_partitions();
        let mut out = Matrix::zeros(m, n);
        let mut counts = HomomorphicOpCounts::default();

        for p in 0..n_parts {
            let (start, end) = a.partition_range(p);
            let len = (end - start) as f32;

            // Pre-fetch the per-partition sums for both operands.
            let a_sums: Vec<i32> = (0..m)
                .map(|i| {
                    if use_stored_sums {
                        a.sum(i, p)
                    } else {
                        counts.sum_recompute_ops += end - start;
                        a.recompute_sum(i, p)
                    }
                })
                .collect();
            let b_sums: Vec<i32> = (0..n)
                .map(|j| {
                    if use_stored_sums {
                        b.sum(j, p)
                    } else {
                        counts.sum_recompute_ops += end - start;
                        b.recompute_sum(j, p)
                    }
                })
                .collect();

            #[allow(clippy::needless_range_loop)]
            for i in 0..m {
                let a_codes = &a.codes_row(i)[start..end];
                let a_meta = a.meta(i, p);
                let out_row = out.row_mut(i);
                for j in 0..n {
                    let b_codes = &b.codes_row(j)[start..end];
                    let b_meta = b.meta(j, p);

                    // Integer inner product on the raw codes.
                    let mut dot = 0i32;
                    for (x, y) in a_codes.iter().zip(b_codes) {
                        dot += *x as i32 * *y as i32;
                    }
                    counts.int_mac_ops += end - start;

                    // Affine correction (Eq. 4).
                    let approx = a_meta.scale * b_meta.scale * dot as f32
                        + b_meta.min * a_meta.scale * a_sums[i] as f32
                        + a_meta.min * b_meta.scale * b_sums[j] as f32
                        + len * a_meta.min * b_meta.min;
                    counts.approx_ops += 9;
                    out_row[j] += approx;
                }
            }
        }
        counts.m = m;
        counts.n = n;
        counts.z = z;
        (out, counts)
    }
}

/// Dequantize-then-multiply comparator: the path KV-quantization baselines (CacheGen,
/// KVQuant) must take. Both operands are fully dequantized to FP16 precision and the
/// product is computed in floating point. Mathematically this equals the homomorphic
/// result; the paper's point is that it costs a full dequantization of the KV data on
/// every decode iteration.
pub fn dequant_matmul(a: &QuantizedTensor, b: &QuantizedTensor) -> Matrix {
    check_compat(a, b);
    let a_deq = a.dequantize().to_f16_precision();
    let b_deq = b.dequantize().to_f16_precision();
    hack_tensor::matmul::matmul_transposed_b(&a_deq, &b_deq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{QuantBits, RoundingMode};
    use hack_tensor::matmul::matmul_transposed_b;
    use hack_tensor::{relative_frobenius_error, DetRng, Matrix};

    fn quantize_pair(
        a: &Matrix,
        b_t: &Matrix,
        a_bits: QuantBits,
        b_bits: QuantBits,
        partition: usize,
        rng: &mut DetRng,
    ) -> (QuantizedTensor, QuantizedTensor) {
        let qa = QuantizedTensor::quantize_rows(a, a_bits, partition, RoundingMode::Nearest, rng);
        let qb = QuantizedTensor::quantize_rows(b_t, b_bits, partition, RoundingMode::Nearest, rng);
        (qa, qb)
    }

    #[test]
    fn blocked_kernel_is_bit_identical_to_scalar_reference() {
        // The blocked kernel must reproduce the scalar seed implementation exactly:
        // same output bits, same operation counts, with and without SE, across
        // shapes that cover full, partial and single partitions.
        for (case, (m, n, z, partition)) in [
            (1usize, 6usize, 128usize, 64usize),
            (4, 3, 96, 32),
            (2, 5, 100, 64), // partial last partition
            (3, 2, 16, 16),  // single partition
            (1, 1, 130, 64), // decode-like with ragged tail
        ]
        .into_iter()
        .enumerate()
        {
            let mut rng = DetRng::new(4242 + case as u64);
            let a = Matrix::random_normal(m, z, 0.0, 1.0, &mut rng);
            let b_t = Matrix::random_normal(n, z, 0.0, 1.0, &mut rng);
            let (qa, qb) = quantize_pair(
                &a,
                &b_t,
                QuantBits::Int8,
                QuantBits::Int2,
                partition,
                &mut rng,
            );
            for use_se in [true, false] {
                let (fast, fast_counts) = homomorphic_matmul_counted(&qa, &qb, use_se);
                let (slow, slow_counts) = reference::homomorphic_matmul_scalar(&qa, &qb, use_se);
                assert_eq!(
                    fast.as_slice(),
                    slow.as_slice(),
                    "case {case} se={use_se}: outputs differ"
                );
                assert_eq!(fast_counts, slow_counts, "case {case} se={use_se}: counts");
            }
        }
    }

    #[test]
    fn matches_dequantize_then_multiply() {
        // Eq. 4 is the exact algebraic expansion of the dequantized product, so the two
        // paths must agree to floating-point rounding.
        let mut rng = DetRng::new(1);
        let a = Matrix::random_normal(4, 128, 0.0, 1.0, &mut rng);
        let b_t = Matrix::random_normal(6, 128, 0.0, 1.0, &mut rng);
        let (qa, qb) = quantize_pair(&a, &b_t, QuantBits::Int8, QuantBits::Int2, 64, &mut rng);
        let hom = homomorphic_matmul(&qa, &qb);
        let deq = dequant_matmul(&qa, &qb);
        let err = relative_frobenius_error(&deq, &hom);
        assert!(err < 2e-3, "homomorphic vs dequantized mismatch: {err}");
    }

    #[test]
    fn approximates_true_product_with_int8() {
        let mut rng = DetRng::new(2);
        let a = Matrix::random_normal(8, 128, 0.0, 1.0, &mut rng);
        let b_t = Matrix::random_normal(8, 128, 0.0, 1.0, &mut rng);
        let truth = matmul_transposed_b(&a, &b_t);
        let (qa, qb) = quantize_pair(&a, &b_t, QuantBits::Int8, QuantBits::Int8, 64, &mut rng);
        let hom = homomorphic_matmul(&qa, &qb);
        let err = relative_frobenius_error(&truth, &hom);
        assert!(err < 0.02, "int8 homomorphic error too large: {err}");
    }

    #[test]
    fn int2_error_is_moderate_and_improves_with_smaller_partitions() {
        let mut rng = DetRng::new(3);
        let a = Matrix::random_normal(4, 128, 0.0, 1.0, &mut rng);
        let b_t = Matrix::random_normal(16, 128, 0.0, 1.0, &mut rng);
        let truth = matmul_transposed_b(&a, &b_t);

        let (qa32, qb32) = quantize_pair(&a, &b_t, QuantBits::Int8, QuantBits::Int2, 32, &mut rng);
        let (qa128, qb128) =
            quantize_pair(&a, &b_t, QuantBits::Int8, QuantBits::Int2, 128, &mut rng);
        let e32 = relative_frobenius_error(&truth, &homomorphic_matmul(&qa32, &qb32));
        let e128 = relative_frobenius_error(&truth, &homomorphic_matmul(&qa128, &qb128));
        assert!(
            e32 < e128,
            "Π=32 error {e32} should be below Π=128 error {e128}"
        );
        assert!(e128 < 0.6, "Π=128 error should still be bounded: {e128}");
    }

    #[test]
    fn exact_when_values_lie_on_quantization_grid() {
        // Construct matrices whose entries are exactly representable with 2-bit codes
        // (values in {0, 1, 2, 3}); nearest-rounding quantization is then lossless and
        // the homomorphic product must equal the exact product.
        let mut rng = DetRng::new(4);
        let a = Matrix::from_fn(3, 64, |_, _| rng.range_usize(0, 4) as f32);
        let b_t = Matrix::from_fn(5, 64, |_, _| rng.range_usize(0, 4) as f32);
        let truth = matmul_transposed_b(&a, &b_t);
        let (qa, qb) = quantize_pair(&a, &b_t, QuantBits::Int2, QuantBits::Int2, 32, &mut rng);
        let hom = homomorphic_matmul(&qa, &qb);
        let err = relative_frobenius_error(&truth, &hom);
        assert!(
            err < 1e-3,
            "grid-aligned product should be (nearly) exact: {err}"
        );
    }

    #[test]
    fn se_and_no_se_agree_exactly() {
        let mut rng = DetRng::new(5);
        let a = Matrix::random_normal(2, 96, 0.0, 1.0, &mut rng);
        let b_t = Matrix::random_normal(7, 96, 0.0, 1.0, &mut rng);
        let (qa, qb) = quantize_pair(&a, &b_t, QuantBits::Int8, QuantBits::Int2, 32, &mut rng);
        let with_se = homomorphic_matmul(&qa, &qb);
        let without_se = homomorphic_matmul_no_se(&qa, &qb);
        assert_eq!(with_se.as_slice(), without_se.as_slice());
    }

    #[test]
    fn op_counts_match_paper_formulas() {
        let mut rng = DetRng::new(6);
        let m = 3;
        let n = 10;
        let z = 128;
        let partition = 64;
        let a = Matrix::random_normal(m, z, 0.0, 1.0, &mut rng);
        let b_t = Matrix::random_normal(n, z, 0.0, 1.0, &mut rng);
        let (qa, qb) = quantize_pair(
            &a,
            &b_t,
            QuantBits::Int8,
            QuantBits::Int2,
            partition,
            &mut rng,
        );

        let (_, counts) = homomorphic_matmul_counted(&qa, &qb, true);
        // Integer MACs: one per (i, j, z) triple.
        assert_eq!(counts.int_mac_ops, m * n * z);
        // Approximation: 9 ops per (i, j, partition) triple.
        let n_parts = z / partition;
        assert_eq!(counts.approx_ops, 9 * m * n * n_parts);
        assert_eq!(counts.sum_recompute_ops, 0);

        let (_, counts_no_se) = homomorphic_matmul_counted(&qa, &qb, false);
        // Without SE every partition sum of both operands is recomputed: (m + n) * z ops.
        assert_eq!(counts_no_se.sum_recompute_ops, (m + n) * z);
    }

    #[test]
    fn decode_shape_single_query_row() {
        // Decode: L_Q = 1 against a long KV history.
        let mut rng = DetRng::new(7);
        let d_h = 128;
        let l_kv = 300;
        let q = Matrix::random_normal(1, d_h, 0.0, 1.0, &mut rng);
        let k = Matrix::random_normal(l_kv, d_h, 0.0, 1.0, &mut rng);
        let truth = matmul_transposed_b(&q, &k);
        let qq = QuantizedTensor::quantize_rows(
            &q,
            QuantBits::Int8,
            64,
            RoundingMode::Nearest,
            &mut rng,
        );
        let qk = QuantizedTensor::quantize_rows(
            &k,
            QuantBits::Int2,
            64,
            RoundingMode::Nearest,
            &mut rng,
        );
        let hom = homomorphic_matmul(&qq, &qk);
        assert_eq!(hom.shape(), (1, l_kv));
        // Pure-Gaussian K is the worst case for 2-bit quantization (real keys carry
        // much more per-partition structure); the error just needs to stay bounded.
        let err = relative_frobenius_error(&truth, &hom);
        assert!(err < 0.6, "decode-shape error {err}");
    }

    #[test]
    #[should_panic(expected = "contracted dimension mismatch")]
    fn mismatched_inner_dims_panic() {
        let mut rng = DetRng::new(8);
        let a = Matrix::zeros(2, 64);
        let b = Matrix::zeros(2, 32);
        let qa = QuantizedTensor::quantize_rows(
            &a,
            QuantBits::Int2,
            32,
            RoundingMode::Nearest,
            &mut rng,
        );
        let qb = QuantizedTensor::quantize_rows(
            &b,
            QuantBits::Int2,
            32,
            RoundingMode::Nearest,
            &mut rng,
        );
        homomorphic_matmul(&qa, &qb);
    }

    #[test]
    #[should_panic(expected = "partition size mismatch")]
    fn mismatched_partitions_panic() {
        let mut rng = DetRng::new(9);
        let a = Matrix::zeros(2, 64);
        let qa = QuantizedTensor::quantize_rows(
            &a,
            QuantBits::Int2,
            32,
            RoundingMode::Nearest,
            &mut rng,
        );
        let qb = QuantizedTensor::quantize_rows(
            &a,
            QuantBits::Int2,
            64,
            RoundingMode::Nearest,
            &mut rng,
        );
        homomorphic_matmul(&qa, &qb);
    }

    #[test]
    fn stochastic_rounding_is_unbiased_in_the_product() {
        // Averaging many stochastic quantizations of the same product should converge
        // towards the true product (the whole point of stochastic rounding).
        let mut rng = DetRng::new(10);
        let a = Matrix::random_normal(1, 64, 0.0, 1.0, &mut rng);
        let b_t = Matrix::random_normal(1, 64, 0.0, 1.0, &mut rng);
        let truth = matmul_transposed_b(&a, &b_t).get(0, 0);
        let trials = 400;
        let mut acc = 0.0f64;
        for _ in 0..trials {
            let qa = QuantizedTensor::quantize_rows(
                &a,
                QuantBits::Int8,
                64,
                RoundingMode::Stochastic,
                &mut rng,
            );
            let qb = QuantizedTensor::quantize_rows(
                &b_t,
                QuantBits::Int2,
                64,
                RoundingMode::Stochastic,
                &mut rng,
            );
            acc += homomorphic_matmul(&qa, &qb).get(0, 0) as f64;
        }
        let mean = acc / trials as f64;
        assert!(
            (mean - truth as f64).abs() < 0.35,
            "stochastic mean {mean} vs truth {truth}"
        );
    }
}
