//! Dense bit-packing of quantization codes.
//!
//! In-memory compute uses one byte per code (§6 widens 2-bit codes to INT8 before the
//! GEMM), but the KV cache and the prefill→decode transfer keep codes densely packed:
//! four 2-bit codes, two 4-bit codes or one 8-bit code per byte. This module provides
//! the pack/unpack routines used by the transport layer and by the byte-exact memory
//! accounting in `hack-kvcache`.

use crate::params::QuantBits;

/// Packs unpacked codes (one per byte, little-end-first within each byte) into a dense
/// byte vector.
///
/// # Panics
/// Panics if any code does not fit in the requested precision.
pub fn pack_codes(codes: &[u8], bits: QuantBits) -> Vec<u8> {
    let max = bits.max_code() as u8;
    let per_byte = bits.codes_per_byte();
    let width = bits.bits();
    let mut out = vec![0u8; bits.packed_bytes(codes.len())];
    for (i, &code) in codes.iter().enumerate() {
        assert!(code <= max, "code {code} does not fit in {width} bits");
        let byte = i / per_byte;
        let slot = (i % per_byte) as u32;
        out[byte] |= code << (slot * width);
    }
    out
}

/// Unpacks a dense byte vector back into one code per byte. `n` is the number of codes
/// originally packed (needed because the final byte may be partially used).
pub fn unpack_codes(packed: &[u8], bits: QuantBits, n: usize) -> Vec<u8> {
    let per_byte = bits.codes_per_byte();
    let width = bits.bits();
    let mask = bits.max_code() as u8;
    assert!(
        packed.len() >= bits.packed_bytes(n),
        "packed buffer too short: {} bytes for {} codes",
        packed.len(),
        n
    );
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let byte = packed[i / per_byte];
        let slot = (i % per_byte) as u32;
        out.push((byte >> (slot * width)) & mask);
    }
    out
}

/// Packs a slice of `i32` partition sums into little-endian `i16` bytes (the alignment
/// format chosen in §6 when the sum needs more than 8 bits).
pub fn pack_sums_i16(sums: &[i32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(sums.len() * 2);
    for &s in sums {
        let clamped = s.clamp(i16::MIN as i32, i16::MAX as i32) as i16;
        out.extend_from_slice(&clamped.to_le_bytes());
    }
    out
}

/// Unpacks little-endian `i16` sums back to `i32`.
pub fn unpack_sums_i16(bytes: &[u8]) -> Vec<i32> {
    assert!(
        bytes.len().is_multiple_of(2),
        "i16 sum buffer must have even length"
    );
    bytes
        .chunks_exact(2)
        .map(|c| i16::from_le_bytes([c[0], c[1]]) as i32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_tensor::DetRng;

    #[test]
    fn int2_pack_unpack_round_trip() {
        let codes = vec![0u8, 1, 2, 3, 3, 2, 1, 0, 1];
        let packed = pack_codes(&codes, QuantBits::Int2);
        assert_eq!(packed.len(), 3);
        assert_eq!(unpack_codes(&packed, QuantBits::Int2, codes.len()), codes);
    }

    #[test]
    fn int2_known_bit_layout() {
        // Codes 0,1,2,3 -> bits 11_10_01_00 = 0xE4.
        let packed = pack_codes(&[0, 1, 2, 3], QuantBits::Int2);
        assert_eq!(packed, vec![0xE4]);
    }

    #[test]
    fn int4_pack_unpack_round_trip() {
        let codes = vec![0u8, 15, 7, 8, 3];
        let packed = pack_codes(&codes, QuantBits::Int4);
        assert_eq!(packed.len(), 3);
        assert_eq!(unpack_codes(&packed, QuantBits::Int4, codes.len()), codes);
    }

    #[test]
    fn int8_pack_is_identity() {
        let codes = vec![0u8, 255, 128, 1];
        let packed = pack_codes(&codes, QuantBits::Int8);
        assert_eq!(packed, codes);
        assert_eq!(unpack_codes(&packed, QuantBits::Int8, 4), codes);
    }

    #[test]
    fn random_round_trips_all_precisions() {
        let mut rng = DetRng::new(2);
        for bits in [QuantBits::Int2, QuantBits::Int4, QuantBits::Int8] {
            let n = 1000 + rng.range_usize(0, 7);
            let codes: Vec<u8> = (0..n)
                .map(|_| rng.range_usize(0, bits.levels() as usize) as u8)
                .collect();
            let packed = pack_codes(&codes, bits);
            assert_eq!(packed.len(), bits.packed_bytes(n));
            assert_eq!(unpack_codes(&packed, bits, n), codes);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_code_panics() {
        pack_codes(&[4], QuantBits::Int2);
    }

    #[test]
    fn empty_inputs() {
        assert!(pack_codes(&[], QuantBits::Int2).is_empty());
        assert!(unpack_codes(&[], QuantBits::Int2, 0).is_empty());
    }

    #[test]
    fn sum_packing_round_trip() {
        let sums = vec![0, 127, -5, 300, 32767];
        let bytes = pack_sums_i16(&sums);
        assert_eq!(bytes.len(), 10);
        assert_eq!(unpack_sums_i16(&bytes), sums);
    }

    #[test]
    fn sum_packing_clamps_out_of_range() {
        let sums = vec![100_000, -100_000];
        let back = unpack_sums_i16(&pack_sums_i16(&sums));
        assert_eq!(back, vec![i16::MAX as i32, i16::MIN as i32]);
    }
}
