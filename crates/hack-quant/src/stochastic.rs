//! Scalar asymmetric quantization with stochastic rounding (§5.2).
//!
//! A partition with range `[min, max]` and `b`-bit codes uses
//! `scale = (max - min) / (2^b - 1)` and maps a value `x` to
//! `code = round((x - min) / scale)`, where `round` is either stochastic (unbiased in
//! expectation) or nearest. Dequantization maps a code back to `min + scale * code`.

use crate::params::{QuantBits, RoundingMode};
use hack_tensor::DetRng;

/// Per-partition quantization metadata: minimum value and scale.
///
/// Stored in FP16 on the wire and in the cache (§6); kept as `f32` in memory here with
/// FP16 rounding applied at construction so the numerical behaviour matches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionMeta {
    /// Minimum value of the partition.
    pub min: f32,
    /// Scale value `(max - min) / (2^b - 1)`.
    pub scale: f32,
}

impl PartitionMeta {
    /// Computes metadata from a partition's `[min, max]` range.
    ///
    /// Degenerate partitions (constant values, or empty ranges) get `scale = 0`, which
    /// quantizes every element to code 0 and dequantizes back to `min` exactly.
    pub fn from_range(min: f32, max: f32, bits: QuantBits) -> Self {
        let denom = bits.max_code() as f32;
        let raw_scale = if max > min { (max - min) / denom } else { 0.0 };
        // The paper stores m and s in FP16 (§6); model that storage precision.
        Self {
            min: hack_tensor::half::round_to_f16(min),
            scale: hack_tensor::half::round_to_f16(raw_scale),
        }
    }

    /// Computes metadata directly from a slice of values.
    pub fn from_values(values: &[f32], bits: QuantBits) -> Self {
        let mut mn = f32::INFINITY;
        let mut mx = f32::NEG_INFINITY;
        for &v in values {
            mn = mn.min(v);
            mx = mx.max(v);
        }
        if values.is_empty() {
            mn = 0.0;
            mx = 0.0;
        }
        Self::from_range(mn, mx, bits)
    }

    /// Bytes used to store this metadata on the wire / in the cache (two FP16 values).
    pub const STORAGE_BYTES: usize = 4;
}

/// Rounds `x` (an arbitrary non-negative real in code space) to an integer using the
/// requested rounding mode, clamping into `[0, max_code]`.
#[inline]
pub fn round_code(x: f32, max_code: u32, mode: RoundingMode, rng: &mut DetRng) -> u32 {
    let clamped = x.clamp(0.0, max_code as f32);
    let floor = clamped.floor();
    let frac = clamped - floor;
    let rounded = match mode {
        RoundingMode::Nearest => {
            if frac >= 0.5 {
                floor + 1.0
            } else {
                floor
            }
        }
        RoundingMode::Stochastic => {
            // Round up with probability equal to the fractional part, which makes the
            // rounding unbiased: E[round(x)] = x.
            if frac > 0.0 && (rng.next_f32() < frac) {
                floor + 1.0
            } else {
                floor
            }
        }
    };
    (rounded as u32).min(max_code)
}

/// Quantizes a single value to its integer code.
#[inline]
pub fn quantize_value(
    x: f32,
    meta: &PartitionMeta,
    bits: QuantBits,
    mode: RoundingMode,
    rng: &mut DetRng,
) -> u8 {
    if meta.scale == 0.0 {
        return 0;
    }
    let normalised = (x - meta.min) / meta.scale;
    round_code(normalised, bits.max_code(), mode, rng) as u8
}

/// Dequantizes a single code back to an approximate real value.
#[inline]
pub fn dequantize_value(code: u8, meta: &PartitionMeta) -> f32 {
    meta.min + meta.scale * code as f32
}

/// Quantizes a slice in place into `codes` (which must have the same length).
pub fn quantize_slice(
    values: &[f32],
    meta: &PartitionMeta,
    bits: QuantBits,
    mode: RoundingMode,
    rng: &mut DetRng,
    codes: &mut [u8],
) {
    assert_eq!(values.len(), codes.len(), "quantize_slice length mismatch");
    for (v, c) in values.iter().zip(codes.iter_mut()) {
        *c = quantize_value(*v, meta, bits, mode, rng);
    }
}

/// Dequantizes a slice of codes into `out`.
pub fn dequantize_slice(codes: &[u8], meta: &PartitionMeta, out: &mut [f32]) {
    assert_eq!(codes.len(), out.len(), "dequantize_slice length mismatch");
    for (c, o) in codes.iter().zip(out.iter_mut()) {
        *o = dequantize_value(*c, meta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_from_range_matches_formula() {
        let m = PartitionMeta::from_range(-1.0, 2.0, QuantBits::Int2);
        assert_eq!(m.min, -1.0);
        assert_eq!(m.scale, 1.0);
        let m8 = PartitionMeta::from_range(0.0, 255.0, QuantBits::Int8);
        assert_eq!(m8.scale, 1.0);
    }

    #[test]
    fn degenerate_range_has_zero_scale() {
        let m = PartitionMeta::from_range(3.0, 3.0, QuantBits::Int2);
        assert_eq!(m.scale, 0.0);
        let mut rng = DetRng::new(1);
        let c = quantize_value(3.0, &m, QuantBits::Int2, RoundingMode::Nearest, &mut rng);
        assert_eq!(c, 0);
        assert_eq!(dequantize_value(c, &m), 3.0);
    }

    #[test]
    fn from_values_finds_range() {
        let vals = [0.5, -2.0, 1.5, 0.0];
        let m = PartitionMeta::from_values(&vals, QuantBits::Int4);
        assert_eq!(m.min, -2.0);
        assert!((m.scale - 3.5 / 15.0).abs() < 2e-3); // fp16 rounding of the scale
    }

    #[test]
    fn empty_values_are_degenerate() {
        let m = PartitionMeta::from_values(&[], QuantBits::Int2);
        assert_eq!(m.min, 0.0);
        assert_eq!(m.scale, 0.0);
    }

    #[test]
    fn nearest_rounding_is_exact_on_grid_points() {
        let mut rng = DetRng::new(1);
        let m = PartitionMeta::from_range(0.0, 3.0, QuantBits::Int2); // scale = 1
        for (x, expect) in [(0.0, 0u8), (1.0, 1), (2.0, 2), (3.0, 3)] {
            let c = quantize_value(x, &m, QuantBits::Int2, RoundingMode::Nearest, &mut rng);
            assert_eq!(c, expect);
            assert_eq!(dequantize_value(c, &m), x);
        }
    }

    #[test]
    fn codes_are_clamped_to_range() {
        let mut rng = DetRng::new(2);
        let m = PartitionMeta::from_range(0.0, 3.0, QuantBits::Int2);
        // Values outside the [min, max] range (possible after FP16 rounding of min/scale)
        // must clamp rather than wrap.
        let lo = quantize_value(
            -10.0,
            &m,
            QuantBits::Int2,
            RoundingMode::Stochastic,
            &mut rng,
        );
        let hi = quantize_value(
            10.0,
            &m,
            QuantBits::Int2,
            RoundingMode::Stochastic,
            &mut rng,
        );
        assert_eq!(lo, 0);
        assert_eq!(hi, 3);
    }

    #[test]
    fn stochastic_rounding_is_unbiased() {
        let mut rng = DetRng::new(3);
        let m = PartitionMeta::from_range(0.0, 3.0, QuantBits::Int2); // scale 1
        let x = 1.3f32;
        let n = 200_000;
        let mut sum = 0u64;
        for _ in 0..n {
            sum +=
                quantize_value(x, &m, QuantBits::Int2, RoundingMode::Stochastic, &mut rng) as u64;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 1.3).abs() < 0.01, "stochastic mean {mean}");
    }

    #[test]
    fn stochastic_rounding_on_integers_is_deterministic() {
        let mut rng = DetRng::new(4);
        for code in 0..=3u32 {
            let got = round_code(code as f32, 3, RoundingMode::Stochastic, &mut rng);
            assert_eq!(got, code);
        }
    }

    #[test]
    fn quantization_error_bounded_by_scale() {
        let mut rng = DetRng::new(5);
        let vals: Vec<f32> = (0..256).map(|_| rng.range_f32(-4.0, 4.0)).collect();
        let meta = PartitionMeta::from_values(&vals, QuantBits::Int8);
        for &v in &vals {
            let c = quantize_value(
                v,
                &meta,
                QuantBits::Int8,
                RoundingMode::Stochastic,
                &mut rng,
            );
            let back = dequantize_value(c, &meta);
            // Stochastic rounding error is at most one full step.
            assert!(
                (back - v).abs() <= meta.scale * 1.001 + 1e-4,
                "v={v} back={back} scale={}",
                meta.scale
            );
        }
    }

    #[test]
    fn int2_error_bounded_by_quarter_range() {
        let mut rng = DetRng::new(6);
        let vals: Vec<f32> = (0..64).map(|_| rng.range_f32(-1.0, 1.0)).collect();
        let meta = PartitionMeta::from_values(&vals, QuantBits::Int2);
        for &v in &vals {
            let c = quantize_value(v, &meta, QuantBits::Int2, RoundingMode::Nearest, &mut rng);
            let back = dequantize_value(c, &meta);
            assert!((back - v).abs() <= meta.scale / 2.0 + 1e-3);
        }
    }

    #[test]
    fn slice_round_trip() {
        let mut rng = DetRng::new(7);
        let vals: Vec<f32> = (0..32).map(|_| rng.range_f32(0.0, 1.0)).collect();
        let meta = PartitionMeta::from_values(&vals, QuantBits::Int8);
        let mut codes = vec![0u8; vals.len()];
        quantize_slice(
            &vals,
            &meta,
            QuantBits::Int8,
            RoundingMode::Nearest,
            &mut rng,
            &mut codes,
        );
        let mut back = vec![0.0f32; vals.len()];
        dequantize_slice(&codes, &meta, &mut back);
        for (v, b) in vals.iter().zip(&back) {
            assert!((v - b).abs() <= meta.scale + 1e-4);
        }
    }

    #[test]
    fn metadata_storage_size() {
        assert_eq!(PartitionMeta::STORAGE_BYTES, 4);
    }
}
