//! Quantization parameters: precision, partition size, rounding mode and the paper's
//! default HACK configuration.

/// Integer precision of quantization codes.
///
/// The paper uses 2-bit codes for K and V (to maximise compression of transferred and
/// cached data) and 8-bit codes for Q and the attention probabilities P (which are
/// discarded right after use, so their size does not matter — §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantBits {
    /// 2-bit codes (4 levels). Used for K and V.
    Int2,
    /// 4-bit codes (16 levels). Supported for sensitivity experiments and the planned
    /// CUDA INT4 path mentioned in §8.
    Int4,
    /// 8-bit codes (256 levels). Used for Q and P.
    Int8,
}

impl QuantBits {
    /// Number of bits per code.
    pub fn bits(self) -> u32 {
        match self {
            QuantBits::Int2 => 2,
            QuantBits::Int4 => 4,
            QuantBits::Int8 => 8,
        }
    }

    /// Number of representable levels (`2^bits`).
    pub fn levels(self) -> u32 {
        1 << self.bits()
    }

    /// Largest code value (`2^bits - 1`), which is also the quantization denominator in
    /// `scale = (max - min) / (2^b - 1)`.
    pub fn max_code(self) -> u32 {
        self.levels() - 1
    }

    /// Number of codes that fit in one byte when densely packed.
    pub fn codes_per_byte(self) -> usize {
        (8 / self.bits()) as usize
    }

    /// Bytes needed to densely pack `n` codes.
    pub fn packed_bytes(self, n: usize) -> usize {
        n.div_ceil(self.codes_per_byte())
    }
}

/// Rounding mode used when mapping a real value to its integer code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoundingMode {
    /// Stochastic rounding (§5.2): round down with probability proportional to the
    /// distance to the ceiling; unbiased in expectation.
    #[default]
    Stochastic,
    /// Deterministic round-to-nearest; biased but reproducible without an RNG stream.
    Nearest,
}

/// Quantization partition size Π (§5.2, Fig. 6).
///
/// The contracted dimension of each matrix is split into partitions of Π elements, each
/// with its own `[min, max]` range. The paper requires Π to be a multiple of 16 for
/// efficient tensor-core execution and evaluates Π ∈ {32, 64, 128}.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionSize(pub usize);

impl PartitionSize {
    /// The paper's default (Π = 64, §7).
    pub const DEFAULT: PartitionSize = PartitionSize(64);

    /// Creates a partition size, validating the paper's multiple-of-16 constraint.
    pub fn new(size: usize) -> Result<Self, String> {
        if size == 0 {
            return Err("partition size must be positive".to_string());
        }
        if !size.is_multiple_of(16) {
            return Err(format!(
                "partition size must be a multiple of 16 for efficient matrix operations (got {size})"
            ));
        }
        Ok(PartitionSize(size))
    }

    /// The raw size.
    pub fn get(self) -> usize {
        self.0
    }

    /// Number of partitions needed to cover a dimension of length `dim`.
    pub fn partitions_for(self, dim: usize) -> usize {
        dim.div_ceil(self.0)
    }

    /// Bits needed to store the integer sum of one partition's codes
    /// (Summation Elimination, §5.3): `b + ⌈log2 Π⌉`.
    pub fn sum_bits(self, bits: QuantBits) -> u32 {
        bits.bits() + (self.0 as f64).log2().ceil() as u32
    }

    /// Bytes used to store one partition sum, honouring the paper's alignment rule
    /// (§6): sums needing ≤ 8 bits are stored in one byte, anything larger in an INT16.
    pub fn sum_storage_bytes(self, bits: QuantBits) -> usize {
        if self.sum_bits(bits) <= 8 {
            1
        } else {
            2
        }
    }
}

impl Default for PartitionSize {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Full HACK configuration for the attention pipeline (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HackConfig {
    /// Precision of the K and V codes kept in (and transferred to) the KV cache.
    pub kv_bits: QuantBits,
    /// Precision of the Q codes (discarded after use, so higher precision is free).
    pub q_bits: QuantBits,
    /// Precision of the attention-probability codes P'.
    pub p_bits: QuantBits,
    /// Partition size Π along the contracted dimension.
    pub partition: PartitionSize,
    /// Rounding mode for all quantization steps.
    pub rounding: RoundingMode,
    /// Summation Elimination: store per-partition code sums instead of recomputing
    /// them every decode iteration (§5.3). Disabled only by the HACK/SE ablation.
    pub summation_elimination: bool,
    /// Requantization Elimination: keep the trailing (partial) block of V in FP16
    /// instead of requantizing it every time a token is appended (§5.3). Disabled only
    /// by the HACK/RQE ablation.
    pub requant_elimination: bool,
}

impl HackConfig {
    /// The paper's default configuration: INT2 K/V, INT8 Q/P, Π = 64, stochastic
    /// rounding, both optimizations enabled.
    pub fn paper_default() -> Self {
        Self {
            kv_bits: QuantBits::Int2,
            q_bits: QuantBits::Int8,
            p_bits: QuantBits::Int8,
            partition: PartitionSize::DEFAULT,
            rounding: RoundingMode::Stochastic,
            summation_elimination: true,
            requant_elimination: true,
        }
    }

    /// Same as [`Self::paper_default`] but with a custom partition size (Table 8).
    pub fn with_partition(partition: usize) -> Self {
        Self {
            partition: PartitionSize::new(partition)
                .expect("partition size must be a positive multiple of 16"),
            ..Self::paper_default()
        }
    }

    /// HACK/SE ablation: Summation Elimination disabled (§7.4).
    pub fn without_summation_elimination() -> Self {
        Self {
            summation_elimination: false,
            ..Self::paper_default()
        }
    }

    /// HACK/RQE ablation: Requantization Elimination disabled (§7.4).
    pub fn without_requant_elimination() -> Self {
        Self {
            requant_elimination: false,
            ..Self::paper_default()
        }
    }
}

impl Default for HackConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_levels_and_codes() {
        assert_eq!(QuantBits::Int2.bits(), 2);
        assert_eq!(QuantBits::Int2.levels(), 4);
        assert_eq!(QuantBits::Int2.max_code(), 3);
        assert_eq!(QuantBits::Int4.levels(), 16);
        assert_eq!(QuantBits::Int8.levels(), 256);
        assert_eq!(QuantBits::Int8.max_code(), 255);
    }

    #[test]
    fn packing_arithmetic() {
        assert_eq!(QuantBits::Int2.codes_per_byte(), 4);
        assert_eq!(QuantBits::Int4.codes_per_byte(), 2);
        assert_eq!(QuantBits::Int8.codes_per_byte(), 1);
        assert_eq!(QuantBits::Int2.packed_bytes(7), 2);
        assert_eq!(QuantBits::Int2.packed_bytes(8), 2);
        assert_eq!(QuantBits::Int2.packed_bytes(9), 3);
        assert_eq!(QuantBits::Int8.packed_bytes(5), 5);
    }

    #[test]
    fn partition_size_validation() {
        assert!(PartitionSize::new(0).is_err());
        assert!(PartitionSize::new(17).is_err());
        assert!(PartitionSize::new(48).is_ok());
        assert_eq!(PartitionSize::new(64).unwrap().get(), 64);
    }

    #[test]
    fn partitions_for_dimension() {
        let p = PartitionSize::new(64).unwrap();
        assert_eq!(p.partitions_for(64), 1);
        assert_eq!(p.partitions_for(65), 2);
        assert_eq!(p.partitions_for(128), 2);
        assert_eq!(p.partitions_for(1), 1);
    }

    #[test]
    fn sum_bits_match_paper_examples() {
        // §5.3: Π = 64 with 2-bit quantization needs at most 8 bits for a sum.
        let p64 = PartitionSize::new(64).unwrap();
        assert_eq!(p64.sum_bits(QuantBits::Int2), 8);
        assert_eq!(p64.sum_storage_bytes(QuantBits::Int2), 1);
        // §6: Π = 128 with 2-bit quantization needs 9 bits, stored as INT16.
        let p128 = PartitionSize::new(128).unwrap();
        assert_eq!(p128.sum_bits(QuantBits::Int2), 9);
        assert_eq!(p128.sum_storage_bytes(QuantBits::Int2), 2);
    }

    #[test]
    fn default_config_matches_paper() {
        let c = HackConfig::paper_default();
        assert_eq!(c.kv_bits, QuantBits::Int2);
        assert_eq!(c.q_bits, QuantBits::Int8);
        assert_eq!(c.p_bits, QuantBits::Int8);
        assert_eq!(c.partition.get(), 64);
        assert_eq!(c.rounding, RoundingMode::Stochastic);
        assert!(c.summation_elimination);
        assert!(c.requant_elimination);
    }

    #[test]
    fn ablation_configs_flip_only_one_switch() {
        let se = HackConfig::without_summation_elimination();
        assert!(!se.summation_elimination);
        assert!(se.requant_elimination);
        let rqe = HackConfig::without_requant_elimination();
        assert!(rqe.summation_elimination);
        assert!(!rqe.requant_elimination);
    }

    #[test]
    fn with_partition_overrides_size() {
        assert_eq!(HackConfig::with_partition(32).partition.get(), 32);
        assert_eq!(HackConfig::with_partition(128).partition.get(), 128);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn with_partition_rejects_invalid() {
        HackConfig::with_partition(20);
    }
}
