//! # hack-quant
//!
//! The paper's core contribution: **homomorphic quantization for matrix
//! multiplication** (HACK §5.2–§5.3).
//!
//! Given a matrix product `C = A·B`, the method
//!
//! 1. quantizes `A` and `B` with asymmetric, partitioned, `b`-bit *stochastic*
//!    quantization (each partition of `Π` consecutive elements along the contracted
//!    dimension gets its own `min`/`scale`),
//! 2. multiplies the small integer codes directly (`C' = A'·B'`, executable on INT8
//!    hardware), and
//! 3. recovers an approximation of `C` from `C'` with a cheap affine correction
//!    (Eq. 4) — **without ever dequantizing** `A` or `B`.
//!
//! The crate provides:
//!
//! * [`params`] — quantization precisions, partition sizes, rounding modes and the
//!   paper's default configuration (2-bit K/V, 8-bit Q/P, Π = 64).
//! * [`stochastic`] — scalar asymmetric quantization with stochastic rounding.
//! * [`qmatrix`] — [`QuantizedTensor`]: partitioned quantized storage of a set of
//!   vectors along the contracted dimension, with per-partition metadata, per-partition
//!   code sums (Summation Elimination) and packed-bit size accounting.
//! * [`homomorphic`] — the homomorphic GEMM (Eq. 4), its no-SE variant, and the
//!   dequantize-then-multiply comparator used by KV-quantization baselines.
//! * [`packing`] — dense bit-packing of codes (2/4/8-bit) used for wire transfer and
//!   for byte-exact memory accounting.
//! * [`cost`] — the paper's operation-count and byte-count formulas (§5.2, §5.3, §6),
//!   used by the cluster cost model and the ablation benches.

pub mod cost;
pub mod homomorphic;
pub mod packing;
pub mod params;
pub mod qmatrix;
pub mod stochastic;

pub use homomorphic::{dequant_matmul, homomorphic_matmul, homomorphic_matmul_no_se};
pub use params::{HackConfig, PartitionSize, QuantBits, RoundingMode};
pub use qmatrix::{PartitionLayout, QuantizedTensor};
