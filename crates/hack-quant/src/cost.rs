//! Operation-count and byte-count formulas from §5.2, §5.3 and §6 of the paper.
//!
//! These formulas drive two things:
//!
//! * the analytical cost model in `hack-model`/`hack-cluster`, which converts operation
//!   and byte counts into simulated GPU time, and
//! * the ablation benches, which verify that the measured CPU kernels scale the way the
//!   formulas predict.

use crate::params::{PartitionSize, QuantBits};

/// Operation counts recorded by [`crate::homomorphic::homomorphic_matmul_counted`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HomomorphicOpCounts {
    /// Rows of the left operand.
    pub m: usize,
    /// Rows of the (transposed) right operand.
    pub n: usize,
    /// Contracted dimension.
    pub z: usize,
    /// Integer multiply-accumulate operations in the code GEMM (`M·N·Z`).
    pub int_mac_ops: usize,
    /// Floating-point operations spent on the affine approximation.
    pub approx_ops: usize,
    /// Operations spent recomputing partition sums (zero with Summation Elimination).
    pub sum_recompute_ops: usize,
}

impl HomomorphicOpCounts {
    /// Total operations.
    pub fn total(&self) -> usize {
        self.int_mac_ops + self.approx_ops + self.sum_recompute_ops
    }
}

/// Cost of the integer code GEMM `A'·B'` for an `M×Z · Z×N` product: `2·M·N·Z`
/// (one multiply + one add per element triple). Same formula as an FP16 GEMM; the
/// speedup comes from the cheaper INT8 datapath, not from fewer operations.
pub fn int_matmul_ops(m: usize, n: usize, z: usize) -> usize {
    2 * m * n * z
}

/// Cost of the full approximation step of Eq. 4 (no Summation Elimination):
/// `9·M·N + M·Z + N·Z` (§5.2).
pub fn approx_ops(m: usize, n: usize, z: usize) -> usize {
    9 * m * n + m * z + n * z
}

/// Cost of the approximation step with Summation Elimination: the `N·Z` term (the sum
/// over the stored operand's codes) is eliminated because the sums are kept alongside
/// the quantized data (§5.3).
pub fn approx_ops_with_se(m: usize, n: usize, z: usize) -> usize {
    9 * m * n + m * z
}

/// Per-decode-iteration approximation cost of the two attention products with SE:
/// `10·(d_h + L_KV)` (§5.3). Derived from [`approx_ops_with_se`] with
/// `(M, Z, N) = (1, d_h, L_KV)` for `Q·Kᵀ` and `(1, L_KV, d_h)` for `P·V`.
pub fn decode_approx_ops_with_se(d_h: usize, l_kv: usize) -> usize {
    approx_ops_with_se(1, l_kv, d_h) + approx_ops_with_se(1, d_h, l_kv)
}

/// Per-decode-iteration approximation cost without SE:
/// `10·(d_h + L_KV) + 2·d_h·L_KV` (§5.3).
pub fn decode_approx_ops_without_se(d_h: usize, l_kv: usize) -> usize {
    approx_ops(1, l_kv, d_h) + approx_ops(1, d_h, l_kv)
}

/// Cost of dequantizing the KV data of one head for one decode iteration:
/// `4·d_h·L_KV` (§5.3 — `2·d_h·L_KV` for K plus the same for V, one multiply and one
/// add per element).
pub fn kv_dequant_ops(d_h: usize, l_kv: usize) -> usize {
    4 * d_h * l_kv
}

/// Cost of quantizing `elements` values (subtract, scale, round ≈ 3 ops each).
pub fn quantize_ops(elements: usize) -> usize {
    3 * elements
}

/// Cost of requantizing the last block of V without RQE in one decode iteration:
/// the whole partial block (up to `Π·d_h` elements) is dequantized and requantized
/// (≈ 5 ops per element: dequant 2 + quant 3).
pub fn requant_last_block_ops(tokens_in_last_block: usize, d_h: usize) -> usize {
    5 * tokens_in_last_block * d_h
}

/// Bytes of an FP16 tensor with `elements` entries.
pub fn fp16_bytes(elements: usize) -> usize {
    2 * elements
}

/// Storage bytes of a quantized tensor with `vectors` vectors of `length` elements:
/// packed codes + per-partition FP16 `min`/`scale` + (optionally) per-partition sums.
pub fn quantized_tensor_bytes(
    vectors: usize,
    length: usize,
    bits: QuantBits,
    partition: usize,
    include_sums: bool,
) -> usize {
    if vectors == 0 || length == 0 {
        return 0;
    }
    let n_parts = length.div_ceil(partition);
    let codes = vectors * bits.packed_bytes(length);
    let meta = vectors * n_parts * 4;
    let sums = if include_sums {
        vectors * n_parts * PartitionSize(partition).sum_storage_bytes(bits)
    } else {
        0
    };
    codes + meta + sums
}

/// Storage bytes of one attention head's quantized KV data for `tokens` tokens:
/// K is partitioned along the head dimension (one set of partitions per token), V is
/// partitioned along the sequence dimension (one set of partitions per channel).
pub fn quantized_kv_head_bytes(
    tokens: usize,
    head_dim: usize,
    bits: QuantBits,
    partition: usize,
    include_sums: bool,
) -> usize {
    let k = quantized_tensor_bytes(tokens, head_dim, bits, partition, include_sums);
    let v = quantized_tensor_bytes(head_dim, tokens, bits, partition, include_sums);
    k + v
}

/// Storage bytes of one attention head's FP16 KV data for `tokens` tokens.
pub fn fp16_kv_head_bytes(tokens: usize, head_dim: usize) -> usize {
    2 * fp16_bytes(tokens * head_dim)
}

/// Compression ratio achieved by a quantized KV layout versus FP16
/// (`1 - quantized/fp16`, e.g. `0.86` for "86% compression").
pub fn kv_compression_ratio(
    tokens: usize,
    head_dim: usize,
    bits: QuantBits,
    partition: usize,
    include_sums: bool,
) -> f64 {
    let q = quantized_kv_head_bytes(tokens, head_dim, bits, partition, include_sums) as f64;
    let f = fp16_kv_head_bytes(tokens, head_dim) as f64;
    if f == 0.0 {
        0.0
    } else {
        1.0 - q / f
    }
}

/// Bytes of the FP16 tail buffer used by Requantization Elimination: the last
/// (partial) block of V, at most `Π` tokens of `head_dim` channels.
pub fn rqe_tail_bytes(tokens_in_last_block: usize, head_dim: usize) -> usize {
    fp16_bytes(tokens_in_last_block * head_dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_cost_formula() {
        assert_eq!(approx_ops(1, 100, 128), 900 + 128 + 12_800);
        assert_eq!(approx_ops_with_se(1, 100, 128), 900 + 128);
    }

    #[test]
    fn decode_costs_match_paper_expressions() {
        let d_h = 128;
        for l_kv in [10usize, 100, 1000, 10_000] {
            assert_eq!(decode_approx_ops_with_se(d_h, l_kv), 10 * (d_h + l_kv));
            assert_eq!(
                decode_approx_ops_without_se(d_h, l_kv),
                10 * (d_h + l_kv) + 2 * d_h * l_kv
            );
            assert_eq!(kv_dequant_ops(d_h, l_kv), 4 * d_h * l_kv);
        }
    }

    #[test]
    fn approximation_cheaper_than_dequantization_beyond_threshold() {
        // §5.3: 4·d_h·L_KV > 10·(d_h + L_KV) once L_KV > 2.5 (with d_h = 128), and the
        // gap exceeds 10x once L_KV > 30.
        let d_h = 128;
        assert!(kv_dequant_ops(d_h, 3) > decode_approx_ops_with_se(d_h, 3));
        assert!(kv_dequant_ops(d_h, 40) > 10 * decode_approx_ops_with_se(d_h, 40));
        // At L_KV = 2 the inequality does not yet hold strictly in the >10x sense.
        assert!(kv_dequant_ops(d_h, 2) < 10 * decode_approx_ops_with_se(d_h, 2));
    }

    #[test]
    fn int_matmul_cost() {
        assert_eq!(int_matmul_ops(1, 100, 128), 25_600);
        assert_eq!(int_matmul_ops(0, 5, 5), 0);
    }

    #[test]
    fn quantized_tensor_bytes_formula() {
        // 16 vectors of 128 elements, 2-bit, Π=64: codes 16*32=512, meta 16*2*4=128,
        // sums 16*2*1=32.
        let with_sums = quantized_tensor_bytes(16, 128, QuantBits::Int2, 64, true);
        assert_eq!(with_sums, 512 + 128 + 32);
        let without = quantized_tensor_bytes(16, 128, QuantBits::Int2, 64, false);
        assert_eq!(without, 512 + 128);
        assert_eq!(quantized_tensor_bytes(0, 128, QuantBits::Int2, 64, true), 0);
        assert_eq!(quantized_tensor_bytes(16, 0, QuantBits::Int2, 64, true), 0);
    }

    #[test]
    fn kv_head_bytes_and_compression() {
        let tokens = 4096;
        let d_h = 128;
        let fp16 = fp16_kv_head_bytes(tokens, d_h);
        assert_eq!(fp16, 2 * 2 * tokens * d_h);
        let ratio = kv_compression_ratio(tokens, d_h, QuantBits::Int2, 64, true);
        // The paper quotes ~85-86% KV compression for 2-bit quantization with
        // per-partition metadata.
        assert!(ratio > 0.82 && ratio < 0.88, "compression ratio {ratio}");
        // Including sums costs a little extra memory (the ~5% of quantized size noted
        // in §6), so the ratio without sums must be higher.
        let ratio_no_sums = kv_compression_ratio(tokens, d_h, QuantBits::Int2, 64, false);
        assert!(ratio_no_sums > ratio);
    }

    #[test]
    fn sum_storage_share_is_small() {
        // §6: INT16 sum values account for ~5% of the quantized KV data (Π=128 case).
        let tokens = 4096;
        let d_h = 128;
        let with_sums = quantized_kv_head_bytes(tokens, d_h, QuantBits::Int2, 128, true);
        let without = quantized_kv_head_bytes(tokens, d_h, QuantBits::Int2, 128, false);
        let share = (with_sums - without) as f64 / without as f64;
        assert!(share > 0.02 && share < 0.08, "sum share {share}");
    }

    #[test]
    fn rqe_tail_is_tiny_fraction_of_long_sequence() {
        let d_h = 128;
        let partition = 64;
        let tail = rqe_tail_bytes(partition - 1, d_h);
        let full = fp16_kv_head_bytes(16_000, d_h);
        assert!((tail as f64) / (full as f64) < 0.01);
    }

    #[test]
    fn requant_cost_scales_with_block_fill() {
        assert_eq!(requant_last_block_ops(0, 128), 0);
        assert!(requant_last_block_ops(63, 128) > requant_last_block_ops(1, 128));
    }

    #[test]
    fn op_counts_total() {
        let c = HomomorphicOpCounts {
            m: 1,
            n: 2,
            z: 3,
            int_mac_ops: 10,
            approx_ops: 20,
            sum_recompute_ops: 5,
        };
        assert_eq!(c.total(), 35);
    }
}
