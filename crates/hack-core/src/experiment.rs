//! Result tables: the common output format of the per-figure/table harness binaries.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// One labelled row of numeric values.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Row {
    /// Row label (e.g. a method or dataset name).
    pub label: String,
    /// Values, one per column.
    pub values: Vec<f64>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Self {
            label: label.into(),
            values,
        }
    }
}

/// A named table of results that prints like the paper's figures/tables and serialises
/// to JSON for downstream processing.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExperimentTable {
    /// Identifier of the experiment (e.g. "fig9", "table5").
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers (not counting the row-label column).
    pub columns: Vec<String>,
    /// Rows.
    pub rows: Vec<Row>,
    /// Unit of the values (e.g. "s", "%", "ratio").
    pub unit: String,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        columns: Vec<String>,
        unit: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            columns,
            rows: Vec::new(),
            unit: unit.into(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, row: Row) {
        assert_eq!(
            row.values.len(),
            self.columns.len(),
            "row '{}' has {} values for {} columns",
            row.label,
            row.values.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Looks up a value by row label and column name.
    pub fn value(&self, row_label: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|r| r.label == row_label)
            .map(|r| r.values[col])
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== {} [{}] (values in {}) ==",
            self.title, self.id, self.unit
        );
        let label_width = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once("method".len()))
            .max()
            .unwrap_or(8)
            + 2;
        let col_width = self
            .columns
            .iter()
            .map(|c| c.len())
            .max()
            .unwrap_or(8)
            .max(10)
            + 2;
        let _ = write!(out, "{:<label_width$}", "");
        for c in &self.columns {
            let _ = write!(out, "{c:>col_width$}");
        }
        let _ = writeln!(out);
        for r in &self.rows {
            let _ = write!(out, "{:<label_width$}", r.label);
            for v in &r.values {
                let formatted = if v.abs() >= 1000.0 {
                    format!("{v:.0}")
                } else if v.abs() >= 1.0 {
                    format!("{v:.2}")
                } else {
                    format!("{v:.4}")
                };
                let _ = write!(out, "{formatted:>col_width$}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Serialises the table to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("experiment tables always serialise")
    }

    /// Writes the JSON representation under `dir/<id>.json`, creating the directory.
    pub fn save_json(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentTable {
        let mut t = ExperimentTable::new(
            "fig9",
            "Average JCT across requests",
            vec!["IMDb".into(), "Cocktail".into()],
            "s",
        );
        t.push_row(Row::new("Baseline", vec![10.0, 40.0]));
        t.push_row(Row::new("HACK", vec![6.0, 15.5]));
        t
    }

    #[test]
    fn lookup_by_label_and_column() {
        let t = sample();
        assert_eq!(t.value("HACK", "Cocktail"), Some(15.5));
        assert_eq!(t.value("HACK", "arXiv"), None);
        assert_eq!(t.value("Nope", "IMDb"), None);
    }

    #[test]
    fn render_contains_headers_and_values() {
        let r = sample().render();
        assert!(r.contains("Average JCT"));
        assert!(r.contains("Cocktail"));
        assert!(r.contains("Baseline"));
        assert!(r.contains("15.5"));
    }

    #[test]
    fn json_round_trips_structurally() {
        let t = sample();
        let json = t.to_json();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["id"], "fig9");
        assert_eq!(value["rows"][1]["label"], "HACK");
        assert_eq!(value["rows"][1]["values"][1], 15.5);
    }

    #[test]
    fn save_json_writes_file() {
        let dir = std::env::temp_dir().join("hack_experiment_table_test");
        let path = sample().save_json(&dir).unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    #[should_panic(expected = "values for")]
    fn mismatched_row_width_panics() {
        let mut t = sample();
        t.push_row(Row::new("bad", vec![1.0]));
    }
}
