//! Heterogeneous-fleet JCT experiments: mixed-GPU prefill fleets vs uniform
//! ones under replica-aware dispatch policies.
//!
//! A [`HeteroFleetExperiment`] fixes the workload (model × dataset × load) and
//! compares two prefill fleets of equal instance count over the paper's
//! decode side: a *uniform* A10G fleet and a *mixed* fleet that swaps half the
//! instances for L4s (faster prefill compute, same 40 Gbps NIC — the ROADMAP's
//! "Heterogeneous GPUs" scenario). [`HeteroFleetExperiment::grid`] sweeps
//! every shipped [`DispatchPolicyKind`] on the mixed fleet and reports average
//! JCT plus per-group utilization — the `hetero_fleet` experiment grid of the
//! bench harness.

use crate::experiment::{ExperimentTable, Row};
use crate::method::Method;
use hack_cluster::{
    CacheConfig, ClusterConfig, DispatchPolicyKind, FaultPlan, GroupSet, GroupStats, PolicyConfig,
    ReplicaGroup, SimulationConfig, SimulationResult, Simulator, TelemetryConfig,
};
use hack_metrics::jct::JctStats;
use hack_model::gpu::GpuKind;
use hack_model::spec::ModelKind;
use hack_workload::dataset::Dataset;
use hack_workload::trace::TraceConfig;
use serde::Serialize;

/// One heterogeneous-fleet experiment: the workload shared by every fleet and
/// dispatch policy under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HeteroFleetExperiment {
    /// Model being served.
    pub model: ModelKind,
    /// Dataset.
    pub dataset: Dataset,
    /// Number of requests simulated.
    pub num_requests: usize,
    /// Request rate (fixed, so every fleet/policy sees the identical trace).
    pub rps: f64,
    /// Instances per prefill sub-fleet: the uniform fleet has `2 * instances`
    /// A10G instances, the mixed fleet `instances` A10G + `instances` L4.
    pub instances_per_side: usize,
    /// Trace seed.
    pub seed: u64,
}

impl HeteroFleetExperiment {
    /// The default comparison: Llama-3.1 70B on Cocktail, eight prefill
    /// instances (uniform: 8 × A10G = 4 replicas; mixed: 4 × A10G + 4 × L4 =
    /// 2 + 2 replicas), driven near the uniform fleet's capacity so dispatch
    /// decisions matter.
    pub fn paper_mixed() -> Self {
        Self {
            model: ModelKind::Llama31_70B,
            dataset: Dataset::Cocktail,
            num_requests: 80,
            rps: 0.25,
            instances_per_side: 4,
            seed: 42,
        }
    }

    /// The uniform fleet: `2 * instances_per_side` A10G instances, one group.
    pub fn uniform_cluster(&self) -> ClusterConfig {
        let mut cluster = ClusterConfig::paper_default(self.model, GpuKind::A10G);
        cluster.fleet.prefill = GroupSet::single(ReplicaGroup::paper_sized(
            self.model,
            GpuKind::A10G,
            2 * self.instances_per_side,
        ));
        cluster
    }

    /// The mixed fleet: `instances_per_side` A10G instances plus the same
    /// number of L4 instances, two groups over the same decode side.
    pub fn mixed_cluster(&self) -> ClusterConfig {
        let mut cluster = ClusterConfig::paper_default(self.model, GpuKind::A10G);
        cluster.fleet.prefill = GroupSet::new(&[
            ReplicaGroup::paper_sized(self.model, GpuKind::A10G, self.instances_per_side),
            ReplicaGroup::paper_sized(self.model, GpuKind::L4, self.instances_per_side),
        ]);
        cluster
    }

    /// The simulation configuration of one (cluster, method, dispatch) triple.
    pub fn simulation_config(
        &self,
        cluster: ClusterConfig,
        method: Method,
        dispatch: DispatchPolicyKind,
    ) -> SimulationConfig {
        SimulationConfig {
            cluster,
            trace: TraceConfig {
                dataset: self.dataset,
                rps: self.rps,
                num_requests: self.num_requests,
                max_context: self.model.spec().max_context,
                seed: self.seed,
            },
            profile: method.profile(),
            policy: PolicyConfig::dispatched(dispatch),
            faults: FaultPlan::none(),
            telemetry: TelemetryConfig::Off,
            cache: CacheConfig::Off,
        }
    }

    /// Runs one (cluster, method, dispatch) triple.
    pub fn run(
        &self,
        cluster: ClusterConfig,
        method: Method,
        dispatch: DispatchPolicyKind,
    ) -> HeteroFleetOutcome {
        let result = Simulator::new(self.simulation_config(cluster, method, dispatch)).run();
        HeteroFleetOutcome::from_result(dispatch, result)
    }

    /// The `hetero_fleet` grid: the uniform fleet under default dispatch, then
    /// the mixed fleet under every shipped dispatch policy. One row per
    /// (fleet, policy) with average/p95 JCT and per-prefill-group utilization
    /// (`NaN` where the fleet has no second group).
    pub fn grid(&self, method: Method) -> ExperimentTable {
        let mut table = ExperimentTable::new(
            "hetero_fleet",
            format!(
                "Mixed A10G+L4 vs uniform A10G prefill fleet ({}, {} requests)",
                method.name(),
                self.num_requests
            ),
            vec![
                "avg_jct_s".to_string(),
                "p95_jct_s".to_string(),
                "g0_utilization".to_string(),
                "g1_utilization".to_string(),
            ],
            "mixed",
        );
        let mut push = |label: String, outcome: &HeteroFleetOutcome| {
            let util = |g: usize| {
                outcome
                    .prefill_groups
                    .get(g)
                    .map_or(f64::NAN, |s| s.utilization)
            };
            table.push_row(Row::new(
                label,
                vec![outcome.average_jct, outcome.stats.p95, util(0), util(1)],
            ));
        };
        let uniform = self.run(
            self.uniform_cluster(),
            method,
            DispatchPolicyKind::LeastLoaded,
        );
        push("uniform/least-loaded".to_string(), &uniform);
        for dispatch in DispatchPolicyKind::all() {
            let outcome = self.run(self.mixed_cluster(), method, dispatch);
            push(format!("mixed/{}", dispatch.name()), &outcome);
        }
        table
    }
}

/// Aggregate outcome of one (fleet, method, dispatch policy) run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HeteroFleetOutcome {
    /// The dispatch policy evaluated.
    pub dispatch: DispatchPolicyKind,
    /// Average JCT across requests (seconds).
    pub average_jct: f64,
    /// Full JCT statistics.
    pub stats: JctStats,
    /// Per-prefill-group usage, in group order.
    pub prefill_groups: Vec<GroupStats>,
    /// Per-decode-group usage, in group order.
    pub decode_groups: Vec<GroupStats>,
    /// Requests completed (sanity check: equals the trace length).
    pub completed_requests: usize,
}

impl HeteroFleetOutcome {
    /// Aggregates a finished simulation result (also used by the bench
    /// harness, which times the raw runs itself).
    pub fn from_result(dispatch: DispatchPolicyKind, result: SimulationResult) -> Self {
        Self {
            dispatch,
            average_jct: result.average_jct(),
            stats: result.jct_stats(),
            prefill_groups: result.prefill_groups.clone(),
            decode_groups: result.decode_groups.clone(),
            completed_requests: result.records.len(),
        }
    }

    /// JCT reduction of this outcome versus another (`1 - self/other`).
    pub fn jct_reduction_vs(&self, other: &HeteroFleetOutcome) -> f64 {
        if other.average_jct <= 0.0 {
            return 0.0;
        }
        1.0 - self.average_jct / other.average_jct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HeteroFleetExperiment {
        HeteroFleetExperiment {
            num_requests: 40,
            ..HeteroFleetExperiment::paper_mixed()
        }
    }

    #[test]
    fn fleets_have_equal_instance_counts_and_expected_groups() {
        let e = small();
        let uniform = e.uniform_cluster();
        let mixed = e.mixed_cluster();
        assert_eq!(uniform.fleet.prefill.len(), 1);
        assert_eq!(mixed.fleet.prefill.len(), 2);
        // 8 A10G instances = 4 replicas; 4 + 4 instances = 2 + 2 replicas.
        assert_eq!(uniform.prefill_replicas(), 4);
        assert_eq!(mixed.prefill_replicas(), 4);
        assert_eq!(mixed.fleet.prefill.get(0).gpu, GpuKind::A10G);
        assert_eq!(mixed.fleet.prefill.get(1).gpu, GpuKind::L4);
        // Both share the paper's decode side.
        assert_eq!(uniform.fleet.decode, mixed.fleet.decode);
    }

    #[test]
    fn grid_reports_every_fleet_policy_row() {
        let table = small().grid(Method::hack());
        assert_eq!(table.rows.len(), 1 + DispatchPolicyKind::all().len());
        assert_eq!(table.rows[0].label, "uniform/least-loaded");
        let uniform_g1 = table
            .value("uniform/least-loaded", "g1_utilization")
            .unwrap();
        assert!(uniform_g1.is_nan(), "the uniform fleet has no second group");
        for dispatch in DispatchPolicyKind::all() {
            let label = format!("mixed/{}", dispatch.name());
            let jct = table.value(&label, "avg_jct_s").unwrap();
            assert!(jct > 0.0, "{label}");
            let g0 = table.value(&label, "g0_utilization").unwrap();
            let g1 = table.value(&label, "g1_utilization").unwrap();
            assert!(g0 > 0.0 && g0 <= 1.0, "{label}: g0 {g0}");
            if dispatch == DispatchPolicyKind::GroupAffinity {
                // A single-tenant trace pins everything to its preferred
                // group (tenant 0 -> group 0); the L4 group idles.
                assert_eq!(g1, 0.0, "{label}: g1 {g1}");
            } else {
                assert!(g1 > 0.0 && g1 <= 1.0, "{label}: g1 {g1}");
            }
        }
    }

    #[test]
    fn fastest_eligible_exploits_the_fast_group() {
        let e = small();
        let least = e.run(
            e.mixed_cluster(),
            Method::hack(),
            DispatchPolicyKind::LeastLoaded,
        );
        let fastest = e.run(
            e.mixed_cluster(),
            Method::hack(),
            DispatchPolicyKind::FastestEligible,
        );
        assert_eq!(least.completed_requests, e.num_requests);
        assert_eq!(fastest.completed_requests, e.num_requests);
        // Fastest-eligible shifts load toward the faster L4 group (group 1).
        assert!(
            fastest.prefill_groups[1].completed >= least.prefill_groups[1].completed,
            "fastest-eligible must not shift load away from the fast group: {} vs {}",
            fastest.prefill_groups[1].completed,
            least.prefill_groups[1].completed
        );
        // And must not be worse end-to-end on this contended mixed fleet.
        assert!(
            fastest.average_jct <= least.average_jct * 1.0 + 1e-9,
            "fastest-eligible {} vs least-loaded {}",
            fastest.average_jct,
            least.average_jct
        );
    }
}
