//! Multi-tenant JCT experiments: several workload classes sharing one
//! disaggregated cluster under a pluggable frontend policy.
//!
//! A [`TenantMixExperiment`] describes the shared cluster plus one
//! [`TenantWorkload`] per tenant (dataset, rate, SLO target, scheduling
//! weight, seed). [`TenantMixExperiment::run`] evaluates one (method,
//! scheduling policy) pair on the merged trace and returns per-tenant JCT
//! statistics, the Jain fairness index and SLO attainment;
//! [`TenantMixExperiment::grid`] sweeps every shipped scheduling policy into
//! one result table — the `tenant_mix` experiment grid of the bench harness.

use crate::experiment::{ExperimentTable, Row};
use crate::method::Method;
use hack_cluster::{
    AdmissionPolicyKind, CacheConfig, FaultPlan, PolicyConfig, SchedulingPolicyKind,
    SimulationConfig, SimulationResult, Simulator, TelemetryConfig, TenantClass, TenantClasses,
};
use hack_metrics::jct::JctStats;
use hack_metrics::tenant::TenantSlo;
use hack_model::gpu::GpuKind;
use hack_model::spec::ModelKind;
use hack_workload::dataset::Dataset;
use hack_workload::tenant::{MultiTenantTrace, TenantSpec};
use hack_workload::trace::{TenantId, TraceConfig};
use serde::Serialize;
use std::sync::Arc;

/// One tenant's workload and service class in a mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TenantWorkload {
    /// Dataset the tenant draws request lengths from.
    pub dataset: Dataset,
    /// The tenant's arrival rate (requests per second).
    pub rps: f64,
    /// Requests the tenant contributes to the trace.
    pub num_requests: usize,
    /// Scheduling weight (weighted-round-robin share, token-bucket rate).
    pub weight: f64,
    /// Target JCT in seconds (EDF deadline offset and SLO threshold).
    pub slo_jct: f64,
    /// Seed of the tenant's trace stream.
    pub seed: u64,
}

/// A multi-tenant experiment: the shared cluster and the tenant mix. Tenant
/// `i` in the list is [`TenantId`]`(i)`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantMixExperiment {
    /// Model being served.
    pub model: ModelKind,
    /// Prefill GPU family.
    pub prefill_gpu: GpuKind,
    /// The tenants sharing the cluster, in tenant-id order.
    pub tenants: Vec<TenantWorkload>,
    /// Admission policy evaluated alongside the scheduling sweep.
    pub admission: AdmissionPolicyKind,
}

impl TenantMixExperiment {
    /// The default contention scenario: an *interactive* tenant (IMDb: short
    /// prompts, tight SLO) sharing the paper-default cluster with a *batch*
    /// tenant (Cocktail: long prompts, loose SLO) driven past the cluster's
    /// single-tenant capacity (~0.39 rps), so the scheduling policy decides
    /// who absorbs the overload queueing.
    pub fn interactive_vs_batch() -> Self {
        Self {
            model: ModelKind::Llama31_70B,
            prefill_gpu: GpuKind::A10G,
            tenants: vec![
                TenantWorkload {
                    dataset: Dataset::Imdb,
                    rps: 0.1,
                    num_requests: 25,
                    weight: 1.0,
                    slo_jct: 120.0,
                    seed: 11,
                },
                TenantWorkload {
                    dataset: Dataset::Cocktail,
                    rps: 0.8,
                    num_requests: 120,
                    weight: 1.0,
                    slo_jct: 3_000.0,
                    seed: 12,
                },
            ],
            admission: AdmissionPolicyKind::AdmitAll,
        }
    }

    /// The per-tenant service classes of this mix.
    pub fn classes(&self) -> TenantClasses {
        let classes: Vec<TenantClass> = self
            .tenants
            .iter()
            .map(|t| TenantClass {
                weight: t.weight,
                slo_jct: t.slo_jct,
            })
            .collect();
        TenantClasses::new(&classes)
    }

    /// The merged multi-tenant trace builder.
    pub fn trace(&self) -> MultiTenantTrace {
        let specs: Vec<TenantSpec> = self
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| TenantSpec {
                tenant: TenantId(i as u32),
                trace: TraceConfig {
                    dataset: t.dataset,
                    rps: t.rps,
                    num_requests: t.num_requests,
                    max_context: self.model.spec().max_context,
                    seed: t.seed,
                },
            })
            .collect();
        MultiTenantTrace::new(specs)
    }

    /// The simulation configuration of one (method, scheduling) pair. The
    /// aggregate trace parameters describe the *merged* stream; the requests
    /// themselves come from [`Self::trace`] via [`Simulator::with_requests`].
    pub fn simulation_config(
        &self,
        method: Method,
        scheduling: SchedulingPolicyKind,
    ) -> SimulationConfig {
        let mut cluster = hack_cluster::ClusterConfig::paper_default(self.model, self.prefill_gpu);
        cluster.pipelining = false;
        SimulationConfig {
            cluster,
            trace: TraceConfig {
                // Descriptive aggregate view of the merged stream (the rate is
                // the sum of the tenants'); the engine seed combines the
                // per-tenant stream seeds.
                dataset: self.tenants[0].dataset,
                rps: self.tenants.iter().map(|t| t.rps).sum(),
                num_requests: self.tenants.iter().map(|t| t.num_requests).sum(),
                max_context: self.model.spec().max_context,
                seed: self
                    .tenants
                    .iter()
                    .fold(0u64, |acc, t| acc.wrapping_mul(31).wrapping_add(t.seed)),
            },
            profile: method.profile(),
            policy: PolicyConfig {
                tenants: self.classes(),
                dispatch: hack_cluster::DispatchPolicyKind::LeastLoaded,
                admission: self.admission,
                scheduling,
                retry: hack_cluster::RetryPolicy::default(),
                scaling: hack_cluster::ScalingPolicyKind::Off,
            },
            faults: FaultPlan::none(),
            telemetry: TelemetryConfig::Off,
            cache: CacheConfig::Off,
        }
    }

    /// Runs one (method, scheduling) pair on the merged trace.
    pub fn run(&self, method: Method, scheduling: SchedulingPolicyKind) -> TenantMixOutcome {
        let requests = Arc::new(self.trace().generate());
        let config = self.simulation_config(method, scheduling);
        let result = Simulator::with_requests(config, requests).run();
        TenantMixOutcome::from_result_with_classes(scheduling, &self.classes(), result)
    }

    /// Sweeps every shipped scheduling policy (the `tenant_mix` grid): one row
    /// per policy with the fairness index, per-tenant mean JCTs and SLO
    /// attainment.
    pub fn grid(&self, method: Method) -> ExperimentTable {
        let mut columns = vec!["jain_fairness".to_string()];
        for i in 0..self.tenants.len() {
            columns.push(format!("t{i}_mean_jct_s"));
        }
        for i in 0..self.tenants.len() {
            columns.push(format!("t{i}_slo_attainment"));
        }
        let mut table = ExperimentTable::new(
            "tenant_mix",
            format!(
                "Multi-tenant scheduling sweep ({} tenants, {})",
                self.tenants.len(),
                method.name()
            ),
            columns,
            "mixed",
        );
        for scheduling in SchedulingPolicyKind::all() {
            let outcome = self.run(method, scheduling);
            let mut values = vec![outcome.jain_fairness];
            for i in 0..self.tenants.len() {
                values.push(
                    outcome
                        .tenant_stats(TenantId(i as u32))
                        .map_or(f64::NAN, |s| s.mean),
                );
            }
            for i in 0..self.tenants.len() {
                values.push(
                    outcome
                        .slo
                        .iter()
                        .find(|s| s.tenant == TenantId(i as u32))
                        .map_or(f64::NAN, TenantSlo::attainment),
                );
            }
            table.push_row(Row::new(scheduling.name(), values));
        }
        table
    }
}

/// One tenant's JCT statistics inside a [`TenantMixOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TenantStats {
    /// The tenant.
    pub tenant: TenantId,
    /// Its JCT statistics.
    pub stats: JctStats,
}

/// Aggregate outcome of one (tenant mix, method, scheduling policy) run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantMixOutcome {
    /// The scheduling policy evaluated.
    pub scheduling: SchedulingPolicyKind,
    /// Global average JCT across all tenants (seconds).
    pub average_jct: f64,
    /// Per-tenant JCT statistics, ascending by tenant.
    pub per_tenant: Vec<TenantStats>,
    /// Jain fairness index over the tenants' normalized service rates.
    pub jain_fairness: f64,
    /// Per-tenant SLO attainment.
    pub slo: Vec<TenantSlo>,
    /// Requests turned away by the admission policy.
    pub rejected_requests: usize,
    /// Admission rejections per tenant (index = tenant id; empty when nothing
    /// was rejected).
    pub rejected_by_tenant: Vec<usize>,
    /// Requests completed.
    pub completed_requests: usize,
}

impl TenantMixOutcome {
    /// Aggregates a finished simulation result into the per-tenant outcome
    /// (also used by the bench harness, which times the raw runs itself).
    pub fn from_result_with_classes(
        scheduling: SchedulingPolicyKind,
        classes: &TenantClasses,
        result: SimulationResult,
    ) -> Self {
        Self {
            scheduling,
            average_jct: result.average_jct(),
            per_tenant: result
                .per_tenant_stats()
                .into_iter()
                .map(|(tenant, stats)| TenantStats { tenant, stats })
                .collect(),
            jain_fairness: result.jain_fairness(),
            slo: result.slo_summary(classes),
            rejected_requests: result.rejected_requests,
            rejected_by_tenant: result.rejected_by_tenant.clone(),
            completed_requests: result.records.len(),
        }
    }

    /// The [`JctStats`] of one tenant, if it completed any request.
    pub fn tenant_stats(&self, tenant: TenantId) -> Option<&JctStats> {
        self.per_tenant
            .iter()
            .find(|t| t.tenant == tenant)
            .map(|t| &t.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_mix() -> TenantMixExperiment {
        let mut mix = TenantMixExperiment::interactive_vs_batch();
        mix.tenants[0].num_requests = 10;
        mix.tenants[1].num_requests = 40;
        mix
    }

    #[test]
    fn mix_runs_every_policy_and_completes_all_requests() {
        let mix = small_mix();
        for scheduling in SchedulingPolicyKind::all() {
            let outcome = mix.run(Method::hack(), scheduling);
            assert_eq!(outcome.completed_requests, 50, "{}", scheduling.name());
            assert_eq!(outcome.rejected_requests, 0);
            assert_eq!(outcome.per_tenant.len(), 2);
            assert!(outcome.jain_fairness > 0.0 && outcome.jain_fairness <= 1.0 + 1e-12);
            assert!(outcome.tenant_stats(TenantId(0)).is_some());
            assert!(outcome.tenant_stats(TenantId(2)).is_none());
        }
    }

    #[test]
    fn grid_has_one_row_per_policy() {
        let table = small_mix().grid(Method::Baseline);
        assert_eq!(table.rows.len(), SchedulingPolicyKind::all().len());
        assert_eq!(table.columns.len(), 1 + 2 * 2);
        let fcfs_jain = table.value("fcfs", "jain_fairness").unwrap();
        let wrr_jain = table.value("wrr", "jain_fairness").unwrap();
        assert!(fcfs_jain > 0.0 && wrr_jain > 0.0);
    }

    #[test]
    fn token_bucket_admission_rejects_overload_deterministically() {
        let mut mix = small_mix();
        mix.admission = AdmissionPolicyKind::TokenBucket {
            rate_per_weight: 0.05,
            burst: 2.0,
        };
        let a = mix.run(Method::Baseline, SchedulingPolicyKind::Fcfs);
        let b = mix.run(Method::Baseline, SchedulingPolicyKind::Fcfs);
        assert!(a.rejected_requests > 0, "overload must trip the bucket");
        assert_eq!(a.rejected_requests + a.completed_requests, 50);
        assert_eq!(
            a.rejected_by_tenant.iter().sum::<usize>(),
            a.rejected_requests,
            "per-tenant rejections must account for every rejection"
        );
        assert!(
            a.rejected_by_tenant.len() <= mix.tenants.len(),
            "trailing rejection-free tenants are trimmed"
        );
        assert_eq!(a, b, "admission must be deterministic");
    }
}
