//! Autoscaling experiments: cost-vs-SLO Pareto grids over scaling policies.
//!
//! An [`AutoscaleExperiment`] fixes the fleet (the paper cluster, whose
//! configured decode count is the *capacity* the autoscaler works inside) and
//! a non-stationary workload — a diurnal sine or an on/off bursty square wave,
//! produced by deterministically time-warping one Poisson trace — then sweeps
//! every [`ScalingPolicyKind`] over it. Each run yields the two axes the
//! elastic-fleet trade-off is judged on: GPU dollars billed (racked uptime ×
//! the per-group `$`/GPU-hour price) and SLO attainment (fraction of offered
//! requests finishing within the JCT target). The sweep marks the Pareto
//! frontier per trace shape; a scaling policy earns its keep when it dominates
//! the static fleet (`Off`) — spending less without giving up attainment.

use crate::availability::percentile;
use crate::experiment::{ExperimentTable, Row};
use crate::method::Method;
use hack_cluster::{
    CacheConfig, ClusterConfig, FaultPlan, PolicyConfig, ScalingPolicyKind, SimulationConfig,
    SimulationResult, Simulator, TelemetryConfig,
};
use hack_model::gpu::GpuKind;
use hack_model::spec::ModelKind;
use hack_workload::dataset::Dataset;
use hack_workload::trace::{Request, TraceConfig, TraceGenerator};
use serde::Serialize;
use std::sync::Arc;

/// The non-stationary arrival shapes the sweep exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TraceShape {
    /// Sinusoidal rate: one period of peak-then-trough around the base rate.
    Diurnal,
    /// Square wave: short bursts above the base rate, quiet in between.
    Bursty,
}

impl TraceShape {
    /// Stable lowercase name (row labels, JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            TraceShape::Diurnal => "diurnal",
            TraceShape::Bursty => "bursty",
        }
    }

    /// Both shapes, sweep order.
    pub fn all() -> [TraceShape; 2] {
        [TraceShape::Diurnal, TraceShape::Bursty]
    }
}

/// One autoscaling experiment: the paper fleet under a time-warped trace,
/// swept over every scaling policy.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AutoscaleExperiment {
    /// Model being served.
    pub model: ModelKind,
    /// Dataset providing the length distributions.
    pub dataset: Dataset,
    /// Number of requests per trace.
    pub num_requests: usize,
    /// Base request rate the shapes modulate around (requests/second).
    pub base_rps: f64,
    /// Trace seed (one Poisson draw feeds every shape and policy).
    pub trace_seed: u64,
    /// Modulation depth in `(0, 1)`: the diurnal rate swings between
    /// `base * (1 - amplitude)` and `base * (1 + amplitude)`; bursts run at
    /// `base * (1 + amplitude)` against a quiet floor.
    pub amplitude: f64,
    /// Diurnal period / bursty cycle length (seconds).
    pub period_s: f64,
    /// Fraction of each bursty cycle spent bursting.
    pub burst_duty: f64,
    /// JCT target the attainment axis is measured against (seconds).
    pub slo_jct_s: f64,
    /// Sustainable per-decode-replica request rate handed to the predictive
    /// policy (its capacity-planning constant).
    pub per_replica_rps: f64,
}

impl AutoscaleExperiment {
    /// The default sweep: the paper fleet on arXiv prompts, one diurnal
    /// period deep enough that a static fleet idles through the trough.
    pub fn paper_sweep() -> Self {
        Self {
            model: ModelKind::Llama31_70B,
            dataset: Dataset::Arxiv,
            num_requests: 60,
            base_rps: 0.5,
            trace_seed: 11,
            amplitude: 0.8,
            period_s: 240.0,
            burst_duty: 0.25,
            slo_jct_s: 120.0,
            per_replica_rps: 0.25,
        }
    }

    /// Instantaneous rate multiplier of `shape` at simulated time `t`.
    fn rate_multiplier(&self, shape: TraceShape, t: f64) -> f64 {
        match shape {
            TraceShape::Diurnal => {
                1.0 + self.amplitude * (2.0 * std::f64::consts::PI * t / self.period_s).sin()
            }
            TraceShape::Bursty => {
                let phase = (t / self.period_s).fract();
                if phase < self.burst_duty {
                    1.0 + self.amplitude
                } else {
                    // The quiet floor matches the diurnal trough, so both
                    // shapes expose the same scale-down opportunity.
                    1.0 - self.amplitude
                }
            }
        }
    }

    /// The shaped trace: one base Poisson draw (identical across shapes and
    /// policies), its inter-arrival gaps stretched by the reciprocal of the
    /// shape's instantaneous rate multiplier. Deterministic in the seed.
    pub fn trace(&self, shape: TraceShape) -> Vec<Request> {
        assert!(
            self.amplitude > 0.0 && self.amplitude < 1.0,
            "amplitude must stay in (0, 1) so the rate never hits zero"
        );
        let base = TraceGenerator::new(self.trace_config()).generate();
        let mut now = 0.0f64;
        let mut prev = 0.0f64;
        base.into_iter()
            .map(|mut r| {
                let gap = r.arrival - prev;
                prev = r.arrival;
                now += gap / self.rate_multiplier(shape, now);
                r.arrival = now;
                r
            })
            .collect()
    }

    fn trace_config(&self) -> TraceConfig {
        TraceConfig {
            dataset: self.dataset,
            rps: self.base_rps,
            num_requests: self.num_requests,
            max_context: self.model.spec().max_context,
            seed: self.trace_seed,
        }
    }

    /// The simulation configuration of one `(shape, policy)` cell. The trace
    /// itself is injected via [`Simulator::with_requests`]; the embedded
    /// [`TraceConfig`] is the descriptive base-rate view.
    pub fn simulation_config(
        &self,
        scaling: ScalingPolicyKind,
        method: Method,
    ) -> SimulationConfig {
        SimulationConfig {
            cluster: ClusterConfig::paper_default(self.model, GpuKind::A10G),
            trace: self.trace_config(),
            profile: method.profile(),
            policy: PolicyConfig::autoscaled(scaling),
            faults: FaultPlan::none(),
            telemetry: TelemetryConfig::Off,
            cache: CacheConfig::Off,
        }
    }

    /// Runs one cell of the grid.
    pub fn run_cell(
        &self,
        shape: TraceShape,
        scaling: ScalingPolicyKind,
        method: Method,
    ) -> SimulationResult {
        let requests = Arc::new(self.trace(shape));
        Simulator::with_requests(self.simulation_config(scaling, method), requests).run()
    }

    /// Runs the full sweep: every policy on every shape, Pareto-marked per
    /// shape. Deterministic in the experiment.
    pub fn sweep(&self, method: Method) -> Vec<AutoscaleOutcome> {
        let mut outcomes: Vec<AutoscaleOutcome> = Vec::new();
        for shape in TraceShape::all() {
            let requests = Arc::new(self.trace(shape));
            let mut cell: Vec<AutoscaleOutcome> = ScalingPolicyKind::all(self.per_replica_rps)
                .into_iter()
                .map(|scaling| {
                    let result = Simulator::with_requests(
                        self.simulation_config(scaling, method),
                        requests.clone(),
                    )
                    .run();
                    AutoscaleOutcome::from_result(shape, scaling, self, &result)
                })
                .collect();
            mark_pareto(&mut cell);
            outcomes.extend(cell);
        }
        outcomes
    }

    /// The `autoscale` grid: one row per `(shape, policy)` cell, labelled
    /// `<shape>/<policy>`, with the cost/SLO axes and the Pareto flag.
    pub fn grid(&self, method: Method) -> ExperimentTable {
        let mut table = ExperimentTable::new(
            "autoscale",
            format!(
                "Autoscaling cost-vs-SLO Pareto grid ({}, {} requests, slo {:.0} s)",
                method.name(),
                self.num_requests,
                self.slo_jct_s
            ),
            vec![
                "slo_attainment".to_string(),
                "mean_jct_s".to_string(),
                "p99_jct_s".to_string(),
                "gpu_dollars".to_string(),
                "dollars_per_1k_tok".to_string(),
                "scale_ups".to_string(),
                "scale_downs".to_string(),
                "pareto".to_string(),
            ],
            "per (shape, policy) run",
        );
        for o in self.sweep(method) {
            table.push_row(Row::new(
                format!("{}/{}", o.shape.name(), o.policy.name()),
                vec![
                    o.slo_attainment,
                    o.mean_jct_s,
                    o.p99_jct_s,
                    o.gpu_dollars,
                    o.dollars_per_1k_tokens,
                    o.scale_ups as f64,
                    o.scale_downs as f64,
                    if o.pareto { 1.0 } else { 0.0 },
                ],
            ));
        }
        table
    }
}

/// One `(shape, policy)` cell of the autoscaling grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AutoscaleOutcome {
    /// Trace shape of the cell.
    pub shape: TraceShape,
    /// Scaling policy of the cell.
    pub policy: ScalingPolicyKind,
    /// Requests completed (of the offered trace).
    pub completed: usize,
    /// Fraction of *offered* requests finishing within the JCT target —
    /// incomplete requests count against it.
    pub slo_attainment: f64,
    /// Mean JCT of the completed requests (seconds).
    pub mean_jct_s: f64,
    /// p99 JCT of the completed requests (seconds, nearest-rank).
    pub p99_jct_s: f64,
    /// Total GPU dollars the run billed (both fleet sides).
    pub gpu_dollars: f64,
    /// GPU dollars per thousand generated tokens.
    pub dollars_per_1k_tokens: f64,
    /// Scale-up orders placed.
    pub scale_ups: usize,
    /// Scale-downs completed.
    pub scale_downs: usize,
    /// Makespan of the run (seconds).
    pub makespan_s: f64,
    /// On the shape's cost-vs-attainment Pareto frontier (no other policy of
    /// the same shape is at least as good on both axes and better on one).
    pub pareto: bool,
}

impl AutoscaleOutcome {
    /// Builds the cell summary from one run (`pareto` starts `true` until the
    /// sweep's per-shape dominance pass says otherwise).
    pub fn from_result(
        shape: TraceShape,
        policy: ScalingPolicyKind,
        experiment: &AutoscaleExperiment,
        result: &SimulationResult,
    ) -> Self {
        let offered = experiment.num_requests.max(1);
        let attained = result
            .records
            .iter()
            .filter(|r| r.jct() <= experiment.slo_jct_s)
            .count();
        let mut jcts: Vec<f64> = result.records.iter().map(|r| r.jct()).collect();
        jcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self {
            shape,
            policy,
            completed: result.records.len(),
            slo_attainment: attained as f64 / offered as f64,
            mean_jct_s: result.average_jct(),
            p99_jct_s: percentile(&jcts, 0.99),
            gpu_dollars: result.gpu_dollars,
            dollars_per_1k_tokens: result.dollars_per_1k_tokens,
            scale_ups: result.scale_ups,
            scale_downs: result.scale_downs,
            makespan_s: result.makespan,
            pareto: true,
        }
    }
}

/// Marks the Pareto frontier of one shape's cells: a cell is dominated when
/// another spends no more and attains no less, strictly better on at least
/// one axis.
fn mark_pareto(cell: &mut [AutoscaleOutcome]) {
    for i in 0..cell.len() {
        let dominated = cell.iter().enumerate().any(|(j, other)| {
            j != i
                && other.gpu_dollars <= cell[i].gpu_dollars
                && other.slo_attainment >= cell[i].slo_attainment
                && (other.gpu_dollars < cell[i].gpu_dollars
                    || other.slo_attainment > cell[i].slo_attainment)
        });
        cell[i].pareto = !dominated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AutoscaleExperiment {
        AutoscaleExperiment {
            num_requests: 40,
            ..AutoscaleExperiment::paper_sweep()
        }
    }

    #[test]
    fn shaped_traces_are_deterministic_ordered_and_share_lengths() {
        let e = small();
        for shape in TraceShape::all() {
            let a = e.trace(shape);
            let b = e.trace(shape);
            assert_eq!(a, b, "{}: same seed, same trace", shape.name());
            assert_eq!(a.len(), e.num_requests);
            for w in a.windows(2) {
                assert!(w[1].arrival > w[0].arrival, "arrivals stay ordered");
            }
        }
        // The warp only moves arrival times: both shapes carry the identical
        // length draws of the one base trace.
        let diurnal = e.trace(TraceShape::Diurnal);
        let bursty = e.trace(TraceShape::Bursty);
        for (d, b) in diurnal.iter().zip(&bursty) {
            assert_eq!((d.input_len, d.output_len), (b.input_len, b.output_len));
        }
    }

    #[test]
    fn sweep_covers_every_cell_and_completes_the_trace() {
        let e = small();
        let outcomes = e.sweep(Method::hack());
        assert_eq!(outcomes.len(), 2 * ScalingPolicyKind::all(1.0).len());
        for o in &outcomes {
            assert_eq!(
                o.completed,
                e.num_requests,
                "{}/{}: every request completes without faults",
                o.shape.name(),
                o.policy.name()
            );
            assert!(o.gpu_dollars > 0.0, "every run bills something");
            assert!(o.slo_attainment >= 0.0 && o.slo_attainment <= 1.0);
        }
        // The static fleet never scales; some elastic policy does.
        let off = outcomes.iter().find(|o| o.policy.name() == "off").unwrap();
        assert_eq!((off.scale_ups, off.scale_downs), (0, 0));
        assert!(
            outcomes.iter().any(|o| o.scale_downs > 0),
            "the diurnal trough must trigger at least one scale-down"
        );
    }

    #[test]
    fn target_utilization_dominates_the_static_fleet_on_the_diurnal_trace() {
        let e = AutoscaleExperiment::paper_sweep();
        let outcomes = e.sweep(Method::hack());
        let diurnal = |name: &str| {
            outcomes
                .iter()
                .find(|o| o.shape == TraceShape::Diurnal && o.policy.name() == name)
                .copied()
                .unwrap()
        };
        let off = diurnal("off");
        let target = diurnal("target-util");
        assert!(
            target.gpu_dollars < off.gpu_dollars,
            "target-util must bill less than the static fleet: {} vs {}",
            target.gpu_dollars,
            off.gpu_dollars
        );
        assert!(
            target.slo_attainment >= off.slo_attainment,
            "without giving up SLO attainment: {} vs {}",
            target.slo_attainment,
            off.slo_attainment
        );
        assert!(target.pareto, "dominating policies sit on the frontier");
        assert!(!off.pareto, "the dominated static fleet does not");
    }

    #[test]
    fn grid_reports_one_row_per_cell_with_pareto_flags() {
        let e = small();
        let table = e.grid(Method::hack());
        assert_eq!(table.rows.len(), 2 * ScalingPolicyKind::all(1.0).len());
        assert!(table.value("diurnal/off", "gpu_dollars").unwrap() > 0.0);
        let pareto: Vec<f64> = table
            .rows
            .iter()
            .map(|r| table.value(&r.label, "pareto").unwrap())
            .collect();
        assert!(pareto.contains(&1.0), "every shape has a frontier");
    }
}
