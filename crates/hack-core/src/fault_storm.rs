//! Fault-storm experiments: fault plans × fabric topologies on one workload.
//!
//! A [`FaultStormExperiment`] fixes the workload (model × dataset × load) and
//! sweeps a scenario grid over the robustness axes of the cluster simulator:
//! the flat fabric versus the topology-aware link graph, and — on the link
//! graph — one representative fault per domain kind (decode replica, prefill
//! replica, NIC, ToR switch, spine). Every scenario reports the resilience
//! sensors of [`SimulationResult`]: blast radius, retries, goodput while
//! degraded, and recovery-drain time. The `flat/no-fault` row doubles as the
//! equivalence anchor: it runs the exact pre-topology configuration, so the
//! bench harness can pin it against the legacy baseline.

use crate::experiment::{ExperimentTable, Row};
use crate::method::Method;
use hack_cluster::{
    CacheConfig, ClusterConfig, FaultDomain, FaultEvent, FaultPlan, LinkGraphSpec, PolicyConfig,
    SimulationConfig, SimulationResult, Simulator, TelemetryConfig, TopologySpec,
};
use hack_model::gpu::GpuKind;
use hack_model::spec::ModelKind;
use hack_workload::dataset::Dataset;
use hack_workload::trace::TraceConfig;
use serde::Serialize;

/// One fault-storm experiment: the workload shared by every scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultStormExperiment {
    /// Model being served.
    pub model: ModelKind,
    /// Dataset.
    pub dataset: Dataset,
    /// Number of requests simulated.
    pub num_requests: usize,
    /// Request rate (fixed, so every scenario sees the identical trace).
    pub rps: f64,
    /// Fault instant shared by the single-fault scenarios (seconds).
    pub fault_at: f64,
    /// Recovery instant shared by the single-fault scenarios (seconds).
    pub recover_at: f64,
    /// Trace seed.
    pub seed: u64,
}

/// One entry of the scenario grid: a label, the fabric topology, and the
/// fault plan to inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultScenario {
    /// Row label, `fabric/fault` shaped (e.g. `graph/tor`).
    pub label: &'static str,
    /// Fabric topology the scenario runs under.
    pub topology: TopologySpec,
    /// Faults injected into the run.
    pub faults: FaultPlan,
}

impl FaultStormExperiment {
    /// The default storm: the paper fleet on arXiv prompts, driven long
    /// enough that a fault at `fault_at = 30 s` lands mid-run and heals with
    /// work left to do.
    pub fn paper_storm() -> Self {
        Self {
            model: ModelKind::Llama31_70B,
            dataset: Dataset::Arxiv,
            num_requests: 60,
            rps: 0.4,
            fault_at: 30.0,
            recover_at: 90.0,
            seed: 11,
        }
    }

    /// The scenario grid: the flat fabric and the link graph fault-free
    /// (the interleaved A/B pair pinning fabric overhead), then one
    /// transient fault per domain kind on the link graph.
    pub fn scenarios(&self) -> Vec<FaultScenario> {
        let graph = TopologySpec::LinkGraph(LinkGraphSpec::paper_default());
        let single = |domain| {
            let mut plan = FaultPlan::none();
            plan.push(FaultEvent::transient(
                domain,
                self.fault_at,
                self.recover_at,
            ));
            plan
        };
        vec![
            FaultScenario {
                label: "flat/no-fault",
                topology: TopologySpec::Flat,
                faults: FaultPlan::none(),
            },
            FaultScenario {
                label: "graph/no-fault",
                topology: graph,
                faults: FaultPlan::none(),
            },
            FaultScenario {
                label: "graph/decode-replica",
                topology: graph,
                faults: single(FaultDomain::DecodeReplica(0)),
            },
            FaultScenario {
                label: "graph/prefill-replica",
                topology: graph,
                faults: single(FaultDomain::PrefillReplica(0)),
            },
            FaultScenario {
                label: "graph/nic",
                topology: graph,
                faults: single(FaultDomain::DecodeNic(0)),
            },
            FaultScenario {
                label: "graph/tor",
                topology: graph,
                faults: single(FaultDomain::DecodeTor(0)),
            },
            FaultScenario {
                label: "graph/spine",
                topology: graph,
                faults: single(FaultDomain::Spine(0)),
            },
        ]
    }

    /// The simulation configuration of one (scenario, method) pair.
    pub fn simulation_config(&self, scenario: &FaultScenario, method: Method) -> SimulationConfig {
        let mut cluster = ClusterConfig::paper_default(self.model, GpuKind::A10G);
        cluster.topology = scenario.topology;
        SimulationConfig {
            cluster,
            trace: TraceConfig {
                dataset: self.dataset,
                rps: self.rps,
                num_requests: self.num_requests,
                max_context: self.model.spec().max_context,
                seed: self.seed,
            },
            profile: method.profile(),
            policy: PolicyConfig::default(),
            faults: scenario.faults,
            telemetry: TelemetryConfig::Off,
            cache: CacheConfig::Off,
        }
    }

    /// Runs one scenario.
    pub fn run(&self, scenario: &FaultScenario, method: Method) -> FaultStormOutcome {
        let result = Simulator::new(self.simulation_config(scenario, method)).run();
        FaultStormOutcome::from_result(scenario.label, result)
    }

    /// The `fault_storm` grid: one row per scenario with the resilience
    /// sensors. `flat/no-fault` is the baseline row.
    pub fn grid(&self, method: Method) -> ExperimentTable {
        let mut table = ExperimentTable::new(
            "fault_storm",
            format!(
                "Fault plans x fabric topologies ({}, {} requests)",
                method.name(),
                self.num_requests
            ),
            vec![
                "avg_jct_s".to_string(),
                "completed".to_string(),
                "aborted".to_string(),
                "retries".to_string(),
                "blast_radius".to_string(),
                "degraded_goodput".to_string(),
                "recovery_drain_s".to_string(),
            ],
            "flat/no-fault",
        );
        for scenario in self.scenarios() {
            let o = self.run(&scenario, method);
            table.push_row(Row::new(
                scenario.label.to_string(),
                vec![
                    o.average_jct,
                    o.completed as f64,
                    o.aborted as f64,
                    o.transfer_retries as f64,
                    o.blast_radius as f64,
                    o.degraded_goodput,
                    o.recovery_drain_secs,
                ],
            ));
        }
        table
    }
}

/// Aggregate outcome of one fault-storm scenario.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultStormOutcome {
    /// Scenario label (`fabric/fault`).
    pub label: String,
    /// Average JCT across completed requests (seconds).
    pub average_jct: f64,
    /// Requests that completed.
    pub completed: usize,
    /// Requests aborted without completing (includes abandoned ones).
    pub aborted: usize,
    /// Requests that exhausted every retry and re-admission.
    pub abandoned: usize,
    /// Transfer retry attempts across the run.
    pub transfer_retries: usize,
    /// Largest per-fault count of replicas failed by one fault event.
    pub blast_radius: usize,
    /// Completions per second inside the merged fault windows.
    pub degraded_goodput: f64,
    /// Seconds the run spent inside fault windows.
    pub degraded_secs: f64,
    /// Largest per-fault memory-wait drain time after recovery (seconds).
    pub recovery_drain_secs: f64,
}

impl FaultStormOutcome {
    /// Aggregates a finished simulation result (also used by the bench
    /// harness, which times the raw runs itself).
    pub fn from_result(label: &str, result: SimulationResult) -> Self {
        Self {
            label: label.to_string(),
            average_jct: result.average_jct(),
            completed: result.records.len(),
            aborted: result.aborted_requests,
            abandoned: result.abandoned_requests,
            transfer_retries: result.transfer_retries,
            blast_radius: result
                .faults
                .iter()
                .map(|f| f.replicas_affected)
                .max()
                .unwrap_or(0),
            degraded_goodput: result.degraded_goodput,
            degraded_secs: result.degraded_secs,
            recovery_drain_secs: result
                .faults
                .iter()
                .map(|f| f.recovery_drain_secs)
                .fold(0.0, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FaultStormExperiment {
        FaultStormExperiment {
            num_requests: 30,
            ..FaultStormExperiment::paper_storm()
        }
    }

    #[test]
    fn grid_reports_every_scenario_with_conserved_requests() {
        let e = small();
        let table = e.grid(Method::Baseline);
        assert_eq!(table.rows.len(), e.scenarios().len());
        assert_eq!(table.rows[0].label, "flat/no-fault");
        for scenario in e.scenarios() {
            let completed = table.value(scenario.label, "completed").unwrap();
            let aborted = table.value(scenario.label, "aborted").unwrap();
            assert!(
                completed + aborted <= e.num_requests as f64 + 1e-9,
                "{}: {completed} + {aborted}",
                scenario.label
            );
            assert!(completed > 0.0, "{}", scenario.label);
        }
    }

    #[test]
    fn flat_no_fault_row_is_the_pre_topology_simulation() {
        // The anchor row must run the exact legacy configuration: default
        // topology, empty fault plan — bit-identical to a plain run.
        let e = small();
        let flat = &e.scenarios()[0];
        assert_eq!(flat.topology, TopologySpec::Flat);
        assert!(flat.faults.is_empty());
        let via_grid = Simulator::new(e.simulation_config(flat, Method::Baseline)).run();
        let mut legacy = e.simulation_config(flat, Method::Baseline);
        legacy.cluster = ClusterConfig::paper_default(e.model, GpuKind::A10G);
        let plain = Simulator::new(legacy).run();
        assert_eq!(via_grid, plain);
    }

    #[test]
    fn tor_scenario_has_the_widest_blast_radius() {
        let e = small();
        let table = e.grid(Method::Baseline);
        let blast = |label: &str| table.value(label, "blast_radius").unwrap();
        assert_eq!(blast("graph/tor"), 2.0, "2 decode replicas per ToR");
        assert_eq!(blast("graph/decode-replica"), 1.0);
        assert_eq!(blast("graph/nic"), 1.0);
        assert_eq!(blast("graph/spine"), 0.0, "the spine fails links only");
        assert!(blast("graph/tor") > blast("graph/decode-replica"));
    }
}
