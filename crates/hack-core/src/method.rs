//! The evaluated methods and their mappings to cost profiles, numerical backends and
//! cache layouts.

use hack_baselines::{CacheGenLike, Fp8Format, KvCompressor, KvQuantLike, MinifloatCast};
use hack_kvcache::CacheLayout;
use hack_model::cost::KvMethodProfile;
use hack_model::reference::AttentionBackend;
use hack_quant::params::QuantBits;
use hack_quant::HackConfig;
use serde::Serialize;

/// Every KV-handling method compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Method {
    /// Disaggregated LLM inference baseline: FP16 KV, no compression.
    Baseline,
    /// CacheGen-like bitstream compression, dequantize-before-compute.
    CacheGen,
    /// KVQuant-like 2-bit quantization, dequantize-before-compute.
    KvQuant,
    /// FP8 cast baseline (§3).
    Fp8,
    /// FP6 cast baseline (§3).
    Fp6,
    /// FP4 cast baseline (§3).
    Fp4,
    /// HACK with a given quantization partition size Π (the paper's default is 64).
    Hack {
        /// Partition size Π ∈ {32, 64, 128}.
        partition: usize,
    },
    /// HACK without Summation Elimination (ablation, §7.4).
    HackNoSe,
    /// HACK without Requantization Elimination (ablation, §7.4).
    HackNoRqe,
}

impl Method {
    /// The four methods of the main end-to-end comparison (Figs. 9–12).
    pub fn main_comparison() -> [Method; 4] {
        [
            Method::Baseline,
            Method::CacheGen,
            Method::KvQuant,
            Method::hack(),
        ]
    }

    /// HACK with the default Π = 64.
    pub fn hack() -> Method {
        Method::Hack { partition: 64 }
    }

    /// Display name (matches the labels used in the paper).
    pub fn name(&self) -> String {
        match self {
            Method::Baseline => "Baseline".to_string(),
            Method::CacheGen => "CacheGen".to_string(),
            Method::KvQuant => "KVQuant".to_string(),
            Method::Fp8 => "FP8".to_string(),
            Method::Fp6 => "FP6".to_string(),
            Method::Fp4 => "FP4".to_string(),
            Method::Hack { partition: 64 } => "HACK".to_string(),
            Method::Hack { partition } => format!("HACK (Pi={partition})"),
            Method::HackNoSe => "HACK/SE".to_string(),
            Method::HackNoRqe => "HACK/RQE".to_string(),
        }
    }

    /// Cost-model profile of this method (drives the cluster simulator).
    pub fn profile(&self) -> KvMethodProfile {
        match self {
            Method::Baseline => KvMethodProfile::baseline(),
            Method::CacheGen => KvMethodProfile::cachegen(),
            Method::KvQuant => KvMethodProfile::kvquant(),
            Method::Fp8 => KvMethodProfile::fp8(),
            Method::Fp6 => KvMethodProfile::fp6(),
            Method::Fp4 => KvMethodProfile::fp4(),
            Method::Hack { partition } => KvMethodProfile::hack_with_partition(*partition),
            Method::HackNoSe => KvMethodProfile::hack_no_se(),
            Method::HackNoRqe => KvMethodProfile::hack_no_rqe(),
        }
    }

    /// The numerical attention backend of this method, used by the reference
    /// transformer for fidelity/accuracy experiments.
    pub fn attention_backend(&self) -> AttentionBackend {
        match self {
            Method::Baseline => AttentionBackend::Fp16,
            // Both quantization baselines store 2-bit KV and compute in FP16 after
            // dequantization; numerically they share a backend.
            Method::CacheGen | Method::KvQuant => AttentionBackend::DequantQuant {
                bits: QuantBits::Int2,
                partition: 64,
            },
            // The minifloat baselines convert to FP16 before compute; their numerical
            // behaviour is close to FP16 with a coarser grid — modelled as 4-bit
            // dequantize-then-compute for FP4 and as FP16 for FP8/FP6 (whose error is
            // negligible at attention scale).
            Method::Fp8 | Method::Fp6 => AttentionBackend::Fp16,
            Method::Fp4 => AttentionBackend::DequantQuant {
                bits: QuantBits::Int4,
                partition: 64,
            },
            Method::Hack { partition } => {
                AttentionBackend::Hack(HackConfig::with_partition(*partition))
            }
            Method::HackNoSe => AttentionBackend::Hack(HackConfig::without_summation_elimination()),
            Method::HackNoRqe => AttentionBackend::Hack(HackConfig::without_requant_elimination()),
        }
    }

    /// KV cache layout of this method (drives byte-exact memory accounting).
    pub fn cache_layout(&self) -> CacheLayout {
        match self {
            Method::Baseline => CacheLayout::Fp16,
            Method::CacheGen | Method::KvQuant => CacheLayout::quantized_baseline(),
            Method::Fp8 => CacheLayout::Minifloat { bits: 8 },
            Method::Fp6 => CacheLayout::Minifloat { bits: 6 },
            Method::Fp4 => CacheLayout::Minifloat { bits: 4 },
            Method::Hack { partition } => CacheLayout::Quantized {
                bits: QuantBits::Int2,
                partition: *partition,
                store_sums: true,
                fp16_tail: true,
            },
            Method::HackNoSe => CacheLayout::Quantized {
                bits: QuantBits::Int2,
                partition: 64,
                store_sums: false,
                fp16_tail: true,
            },
            Method::HackNoRqe => CacheLayout::Quantized {
                bits: QuantBits::Int2,
                partition: 64,
                store_sums: true,
                fp16_tail: false,
            },
        }
    }

    /// A wire-level compressor implementing this method's KV encoding, when one exists
    /// (used by the transport demo and the compression-rate experiments).
    pub fn compressor(&self) -> Option<Box<dyn KvCompressor>> {
        match self {
            Method::Baseline => Some(Box::new(hack_baselines::Fp16Identity)),
            Method::CacheGen => Some(Box::new(CacheGenLike::default())),
            Method::KvQuant => Some(Box::new(KvQuantLike::default())),
            Method::Fp8 => Some(Box::new(MinifloatCast::fp8(Fp8Format::E4M3))),
            Method::Fp6 => Some(Box::new(MinifloatCast::fp6())),
            Method::Fp4 => Some(Box::new(MinifloatCast::fp4())),
            // HACK's quantized representation is produced by the attention kernels
            // themselves (it is not a standalone codec).
            Method::Hack { .. } | Method::HackNoSe | Method::HackNoRqe => None,
        }
    }

    /// Whether this method computes attention directly on compressed KV data.
    pub fn computes_on_compressed(&self) -> bool {
        matches!(
            self,
            Method::Hack { .. } | Method::HackNoSe | Method::HackNoRqe
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(Method::Baseline.name(), "Baseline");
        assert_eq!(Method::hack().name(), "HACK");
        assert_eq!(Method::Hack { partition: 32 }.name(), "HACK (Pi=32)");
        assert_eq!(Method::HackNoSe.name(), "HACK/SE");
        assert_eq!(Method::HackNoRqe.name(), "HACK/RQE");
    }

    #[test]
    fn main_comparison_has_four_methods() {
        let methods = Method::main_comparison();
        assert_eq!(methods.len(), 4);
        assert_eq!(methods[0], Method::Baseline);
        assert_eq!(methods[3], Method::hack());
    }

    #[test]
    fn profiles_are_consistent_with_semantics() {
        assert!(!Method::Baseline.profile().quantizes);
        assert!(Method::CacheGen.profile().dequant_per_iter);
        assert!(Method::hack().profile().int8_attention);
        assert!(!Method::HackNoSe.profile().summation_elimination);
        assert!(!Method::HackNoRqe.profile().requant_elimination);
        assert_eq!(Method::Hack { partition: 32 }.profile().partition, 32);
    }

    #[test]
    fn only_hack_computes_on_compressed() {
        for m in Method::main_comparison() {
            assert_eq!(m.computes_on_compressed(), matches!(m, Method::Hack { .. }));
        }
    }

    #[test]
    fn compressors_exist_for_codec_methods() {
        assert!(Method::CacheGen.compressor().is_some());
        assert!(Method::KvQuant.compressor().is_some());
        assert!(Method::Fp4.compressor().is_some());
        assert!(Method::hack().compressor().is_none());
    }

    #[test]
    fn cache_layouts_compress_as_expected() {
        use hack_kvcache::KvShape;
        let shape = KvShape {
            layers: 80,
            kv_heads: 8,
            head_dim: 128,
        };
        let tokens = 16_384;
        let fp16 = Method::Baseline.cache_layout().kv_bytes(&shape, tokens);
        let hack = Method::hack().cache_layout().kv_bytes(&shape, tokens);
        let fp8 = Method::Fp8.cache_layout().kv_bytes(&shape, tokens);
        assert!(hack * 5 < fp16);
        assert_eq!(fp8 * 2, fp16);
    }

    #[test]
    fn backends_are_wired_to_the_right_kernels() {
        assert!(matches!(
            Method::hack().attention_backend(),
            AttentionBackend::Hack(_)
        ));
        assert!(matches!(
            Method::KvQuant.attention_backend(),
            AttentionBackend::DequantQuant { .. }
        ));
        assert!(matches!(
            Method::Baseline.attention_backend(),
            AttentionBackend::Fp16
        ));
    }
}
