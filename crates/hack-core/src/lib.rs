//! # hack-core
//!
//! The user-facing API of the HACK reproduction. It ties the substrates together:
//!
//! * [`method`] — the [`Method`] enum: every system compared in the paper (baseline,
//!   CacheGen-like, KVQuant-like, FP8/6/4, HACK and its ablations/partition variants),
//!   with mappings to the cost-model profile, the numerical attention backend and the
//!   KV cache layout.
//! * [`jct_runner`] — end-to-end JCT experiments on the cluster simulator: given a
//!   model, prefill GPU, dataset and method, produce the average JCT, its stage
//!   decomposition and the peak decode-memory usage (Figs. 1–4, 9–14, Table 5).
//! * [`fidelity`] — numerical-fidelity experiments on the reference transformer and on
//!   raw attention tensors: the accuracy proxy behind Tables 6–8.
//! * [`experiment`] — output helpers: result tables that print like the paper's
//!   figures/tables and serialise to JSON for the bench harness.
//!
//! ## Quick start
//!
//! ```
//! use hack_core::prelude::*;
//!
//! // Homomorphic-quantized attention on one head.
//! let mut rng = DetRng::new(7);
//! let q = Matrix::random_normal(64, 64, 0.0, 1.0, &mut rng);
//! let k = Matrix::random_normal(64, 64, 0.0, 1.0, &mut rng);
//! let v = Matrix::random_normal(64, 64, 0.0, 1.0, &mut rng);
//! let out = hack_prefill_attention(&q, &k, &v, HackConfig::paper_default(), &mut rng);
//! assert_eq!(out.output.shape(), (64, 64));
//! ```

pub mod autoscale;
pub mod availability;
pub mod experiment;
pub mod fault_storm;
pub mod fidelity;
pub mod hetero_fleet;
pub mod jct_runner;
pub mod method;
pub mod session_cache;
pub mod tenant_mix;

pub use autoscale::{AutoscaleExperiment, AutoscaleOutcome, TraceShape};
pub use availability::{nines_of, AvailabilityExperiment, AvailabilityPoint};
pub use experiment::{ExperimentTable, Row};
pub use fault_storm::{FaultScenario, FaultStormExperiment, FaultStormOutcome};
pub use fidelity::{FidelityReport, FidelitySetup};
pub use hetero_fleet::{HeteroFleetExperiment, HeteroFleetOutcome};
pub use jct_runner::{JctExperiment, JctOutcome};
pub use method::Method;
pub use session_cache::{SessionCacheExperiment, SessionCacheOutcome, SessionMix};
pub use tenant_mix::{TenantMixExperiment, TenantMixOutcome, TenantWorkload};

/// Convenience re-exports for examples and downstream users.
pub mod prelude {
    pub use crate::autoscale::{AutoscaleExperiment, AutoscaleOutcome, TraceShape};
    pub use crate::availability::{nines_of, AvailabilityExperiment, AvailabilityPoint};
    pub use crate::experiment::{ExperimentTable, Row};
    pub use crate::fault_storm::{FaultScenario, FaultStormExperiment, FaultStormOutcome};
    pub use crate::fidelity::{FidelityReport, FidelitySetup};
    pub use crate::hetero_fleet::{HeteroFleetExperiment, HeteroFleetOutcome};
    pub use crate::jct_runner::{JctExperiment, JctOutcome};
    pub use crate::method::Method;
    pub use crate::session_cache::{SessionCacheExperiment, SessionCacheOutcome, SessionMix};
    pub use crate::tenant_mix::{TenantMixExperiment, TenantMixOutcome, TenantWorkload};
    pub use hack_attention::baseline::{baseline_attention, AttentionMask};
    pub use hack_attention::prefill::hack_prefill_attention;
    pub use hack_attention::state::HackKvState;
    pub use hack_cluster::{
        AdmissionPolicyKind, AvailabilityModel, CacheConfig, CacheSettings, ClusterConfig,
        ConfigError, DispatchPolicyKind, FailureSpec, FaultDomain, FaultEvent, FaultPlan,
        FaultRecord, FleetShape, FleetSpec, GroupSet, GroupStats, LinkGraphSpec, MtbfSpec,
        PolicyConfig, ReplicaGroup, RetryPolicy, ScalingPolicyKind, SchedulingPolicyKind,
        SimulationConfig, Simulator, TelemetryConfig, TelemetrySettings, TenantClass,
        TenantClasses, TopologySpec, SCALE_TICK_SECS,
    };
    pub use hack_metrics::telemetry::Telemetry;
    pub use hack_model::gpu::GpuKind;
    pub use hack_model::spec::ModelKind;
    pub use hack_quant::{HackConfig, QuantizedTensor};
    pub use hack_tensor::{DetRng, Matrix};
    pub use hack_workload::dataset::Dataset;
    pub use hack_workload::session::{SessionKind, SessionSpec, SessionTrace};
    pub use hack_workload::tenant::{MultiTenantTrace, TenantSpec};
    pub use hack_workload::trace::TenantId;
    pub use hack_workload::trace::TraceConfig;
}
