//! Session-cache experiments: session-structured workloads (multi-turn chat,
//! agentic fan-out) over the per-replica KV prefix cache.
//!
//! A [`SessionCacheExperiment`] describes a cluster plus a family of session
//! workloads. [`SessionCacheExperiment::run`] evaluates one (mix, cache,
//! dispatch) cell and returns JCT statistics together with the cache sensors
//! (hit rate, bytes saved, prefill seconds avoided);
//! [`SessionCacheExperiment::grid`] sweeps the chat/agentic/mixed workloads
//! against cache off/on and the least-loaded vs session-affinity dispatchers
//! into one result table — the `session_cache` section of the bench harness.

use crate::experiment::{ExperimentTable, Row};
use crate::method::Method;
use hack_cluster::{
    CacheConfig, DispatchPolicyKind, FaultPlan, PolicyConfig, SimulationConfig, SimulationResult,
    Simulator, TelemetryConfig,
};
use hack_model::gpu::GpuKind;
use hack_model::spec::ModelKind;
use hack_workload::dataset::Dataset;
use hack_workload::session::{SessionKind, SessionSpec, SessionTrace};
use hack_workload::trace::{TenantId, TraceConfig};
use serde::Serialize;
use std::sync::Arc;

/// Which session shapes a cell of the sweep runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SessionMix {
    /// Linear multi-turn chat sessions only.
    Chat,
    /// Agentic fan-out sessions only.
    Agentic,
    /// Both streams merged into one arrival process.
    Mixed,
}

impl SessionMix {
    /// Every mix, in grid order.
    pub fn all() -> [SessionMix; 3] {
        [SessionMix::Chat, SessionMix::Agentic, SessionMix::Mixed]
    }

    /// Short label used in row names.
    pub fn name(self) -> &'static str {
        match self {
            SessionMix::Chat => "chat",
            SessionMix::Agentic => "agentic",
            SessionMix::Mixed => "mixed",
        }
    }
}

/// A session-cache experiment: the cluster, the session workload family and
/// the sweep axes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SessionCacheExperiment {
    /// Model being served.
    pub model: ModelKind,
    /// Prefill GPU family (decode side follows the paper default).
    pub prefill_gpu: GpuKind,
    /// Sessions per stream.
    pub sessions: usize,
    /// Session-root arrivals per second per stream.
    pub rps: f64,
    /// Dataset providing the length distributions.
    pub dataset: Dataset,
    /// Turns per chat session.
    pub chat_turns: usize,
    /// Mean think time between chat turns, seconds.
    pub think_mean_s: f64,
    /// Parallel tool calls per agentic session.
    pub agent_tools: usize,
    /// Mean parent-to-dependent issue delay for agentic sessions, seconds.
    pub tool_delay_s: f64,
    /// Capacity fraction of the armed cache cells.
    pub capacity_fraction: f64,
    /// Seed of the workload streams.
    pub seed: u64,
}

impl SessionCacheExperiment {
    /// The default scenario: conversational sessions long enough that shared
    /// prefixes dominate prompt tokens, at a rate the paper-default cluster
    /// serves without collapse.
    pub fn paper_default() -> Self {
        Self {
            model: ModelKind::Llama31_70B,
            prefill_gpu: GpuKind::A10G,
            sessions: 8,
            rps: 0.04,
            dataset: Dataset::Cocktail,
            chat_turns: 4,
            think_mean_s: 25.0,
            agent_tools: 3,
            tool_delay_s: 5.0,
            capacity_fraction: CacheConfig::on()
                .settings()
                .expect("on() carries settings")
                .capacity_fraction,
            seed: 17,
        }
    }

    fn chat_spec(&self, tenant: u32, seed_salt: u64) -> SessionSpec {
        SessionSpec {
            tenant: TenantId(tenant),
            kind: SessionKind::Chat {
                turns: self.chat_turns,
                think_mean_s: self.think_mean_s,
            },
            sessions: self.sessions,
            rps: self.rps,
            dataset: self.dataset,
            max_context: self.model.spec().max_context,
            seed: self.seed.wrapping_add(seed_salt),
        }
    }

    fn agentic_spec(&self, tenant: u32, seed_salt: u64) -> SessionSpec {
        SessionSpec {
            tenant: TenantId(tenant),
            kind: SessionKind::Agentic {
                tools: self.agent_tools,
                tool_delay_s: self.tool_delay_s,
            },
            sessions: self.sessions,
            rps: self.rps,
            dataset: self.dataset,
            max_context: self.model.spec().max_context,
            seed: self.seed.wrapping_add(seed_salt),
        }
    }

    /// The session trace of one mix.
    pub fn trace(&self, mix: SessionMix) -> SessionTrace {
        SessionTrace::new(match mix {
            SessionMix::Chat => vec![self.chat_spec(0, 0)],
            SessionMix::Agentic => vec![self.agentic_spec(0, 1)],
            SessionMix::Mixed => vec![self.chat_spec(0, 0), self.agentic_spec(1, 1)],
        })
    }

    /// The simulation configuration of one (mix, cache, dispatch) cell.
    pub fn simulation_config(
        &self,
        method: Method,
        mix: SessionMix,
        cache: CacheConfig,
        dispatch: DispatchPolicyKind,
        num_requests: usize,
    ) -> SimulationConfig {
        SimulationConfig {
            cluster: hack_cluster::ClusterConfig::paper_default(self.model, self.prefill_gpu),
            trace: TraceConfig {
                // Descriptive aggregate view of the merged session stream; the
                // requests themselves come from [`Self::trace`].
                dataset: self.dataset,
                rps: self.rps * if mix == SessionMix::Mixed { 2.0 } else { 1.0 },
                num_requests,
                max_context: self.model.spec().max_context,
                seed: self.seed,
            },
            profile: method.profile(),
            policy: PolicyConfig {
                dispatch,
                ..PolicyConfig::default()
            },
            faults: FaultPlan::none(),
            telemetry: TelemetryConfig::Off,
            cache,
        }
    }

    /// Runs one (mix, cache, dispatch) cell.
    pub fn run(
        &self,
        method: Method,
        mix: SessionMix,
        cache: CacheConfig,
        dispatch: DispatchPolicyKind,
    ) -> SessionCacheOutcome {
        let requests = Arc::new(self.trace(mix).generate());
        let config = self.simulation_config(method, mix, cache, dispatch, requests.len());
        let result = Simulator::with_requests(config, requests).run();
        SessionCacheOutcome::from_result(mix, cache.is_on(), dispatch, result)
    }

    /// The (cache, dispatch) columns of the sweep: cache off under the default
    /// dispatcher, then the armed cache under least-loaded and
    /// session-affinity dispatch.
    pub fn cells(&self) -> [(CacheConfig, DispatchPolicyKind); 3] {
        let on = CacheConfig::with_capacity_fraction(self.capacity_fraction);
        [
            (CacheConfig::Off, DispatchPolicyKind::LeastLoaded),
            (on, DispatchPolicyKind::LeastLoaded),
            (on, DispatchPolicyKind::SessionAffinity),
        ]
    }

    /// Sweeps mixes × cache × dispatch (the `session_cache` grid): one row per
    /// cell, labelled `mix/cache/dispatch`.
    pub fn grid(&self, method: Method) -> ExperimentTable {
        let columns = [
            "mean_jct_s",
            "p99_jct_s",
            "hit_rate",
            "prefill_s_saved",
            "bytes_saved_mb",
            "makespan_s",
        ]
        .map(String::from)
        .to_vec();
        let mut table = ExperimentTable::new(
            "session_cache",
            format!(
                "Session prefix-cache sweep ({} sessions/stream, {})",
                self.sessions,
                method.name()
            ),
            columns,
            "mixed",
        );
        for mix in SessionMix::all() {
            for (cache, dispatch) in self.cells() {
                let outcome = self.run(method, mix, cache, dispatch);
                table.push_row(Row::new(outcome.label(), outcome.values()));
            }
        }
        table
    }
}

/// Aggregate outcome of one (mix, cache, dispatch) run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SessionCacheOutcome {
    /// The session mix evaluated.
    pub mix: SessionMix,
    /// Whether the prefix cache was armed.
    pub cache_on: bool,
    /// The dispatch policy evaluated.
    pub dispatch: DispatchPolicyKind,
    /// Mean JCT across all requests (seconds).
    pub mean_jct: f64,
    /// 99th-percentile JCT (seconds).
    pub p99_jct: f64,
    /// Simulated makespan (seconds).
    pub makespan: f64,
    /// Prefix-cache hits over hits plus misses (0 when the cache is off).
    pub hit_rate: f64,
    /// Prefix lookups that hit.
    pub prefix_hits: usize,
    /// Prefix lookups that missed.
    pub prefix_misses: usize,
    /// Resident prefixes dropped by eviction or invalidation.
    pub prefix_evictions: usize,
    /// Quantized KV bytes whose prefill and transfer the cache avoided.
    pub bytes_saved: f64,
    /// Prefill compute-seconds the cache avoided.
    pub prefill_seconds_saved: f64,
    /// Requests completed.
    pub completed_requests: usize,
}

impl SessionCacheOutcome {
    /// Aggregates a finished simulation result into the outcome (also used by
    /// the bench harness, which times the raw runs itself).
    pub fn from_result(
        mix: SessionMix,
        cache_on: bool,
        dispatch: DispatchPolicyKind,
        result: SimulationResult,
    ) -> Self {
        let stats = result.jct_stats();
        Self {
            mix,
            cache_on,
            dispatch,
            mean_jct: result.average_jct(),
            p99_jct: stats.p99,
            makespan: result.makespan,
            hit_rate: result.prefix_hit_rate,
            prefix_hits: result.prefix_hits,
            prefix_misses: result.prefix_misses,
            prefix_evictions: result.prefix_evictions,
            bytes_saved: result.prefix_bytes_saved,
            prefill_seconds_saved: result.prefill_seconds_saved,
            completed_requests: result.records.len(),
        }
    }

    /// Row label of this cell: `mix/cache/dispatch`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.mix.name(),
            if self.cache_on { "on" } else { "off" },
            self.dispatch.name()
        )
    }

    /// Row values, matching [`SessionCacheExperiment::grid`]'s columns.
    pub fn values(&self) -> Vec<f64> {
        vec![
            self.mean_jct,
            self.p99_jct,
            self.hit_rate,
            self.prefill_seconds_saved,
            self.bytes_saved / 1e6,
            self.makespan,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SessionCacheExperiment {
        SessionCacheExperiment {
            sessions: 4,
            ..SessionCacheExperiment::paper_default()
        }
    }

    #[test]
    fn every_cell_runs_and_conserves_requests() {
        let exp = small();
        for mix in SessionMix::all() {
            let total = exp.trace(mix).num_requests();
            for (cache, dispatch) in exp.cells() {
                let outcome = exp.run(Method::hack(), mix, cache, dispatch);
                assert_eq!(outcome.completed_requests, total, "{}", outcome.label());
                if !outcome.cache_on {
                    assert_eq!(outcome.prefix_hits + outcome.prefix_misses, 0);
                    assert_eq!(outcome.hit_rate, 0.0);
                    assert_eq!(outcome.bytes_saved, 0.0);
                }
            }
        }
    }

    #[test]
    fn chat_mix_cache_on_beats_cache_off_with_majority_hits() {
        // The acceptance scenario: conversational sessions hit the cache on
        // most follow-ups and the saved prefill shows up in mean JCT.
        let exp = SessionCacheExperiment::paper_default();
        let off = exp.run(
            Method::hack(),
            SessionMix::Chat,
            CacheConfig::Off,
            DispatchPolicyKind::LeastLoaded,
        );
        let on = exp.run(
            Method::hack(),
            SessionMix::Chat,
            CacheConfig::on(),
            DispatchPolicyKind::SessionAffinity,
        );
        assert!(on.hit_rate >= 0.5, "hit rate {}", on.hit_rate);
        assert!(on.prefill_seconds_saved > 0.0);
        assert!(
            on.mean_jct < off.mean_jct,
            "cache on {} must beat off {}",
            on.mean_jct,
            off.mean_jct
        );
    }

    #[test]
    fn grid_is_deterministic_and_fully_populated() {
        let exp = small();
        let a = exp.grid(Method::Baseline);
        assert_eq!(a.rows.len(), SessionMix::all().len() * exp.cells().len());
        assert_eq!(a, exp.grid(Method::Baseline));
        // Cache-off and armed rows exist for every mix, and the armed chat
        // row records a nonzero hit rate.
        let hit = a
            .value("chat/on/session-affinity", "hit_rate")
            .expect("armed chat row");
        assert!(hit > 0.0);
        assert_eq!(a.value("chat/off/least-loaded", "hit_rate"), Some(0.0));
    }
}
