//! End-to-end JCT experiments on the cluster simulator.
//!
//! One [`JctExperiment`] describes a row of the paper's evaluation matrix (model ×
//! prefill GPU × dataset × load); [`JctExperiment::run`] evaluates one method on it and
//! returns the aggregate numbers the figures plot.

use crate::method::Method;
use hack_cluster::{ClusterConfig, FailureSpec, SimulationConfig, Simulator};
use hack_metrics::jct::{JctStats, StageRatios};
use hack_model::gpu::GpuKind;
use hack_model::spec::ModelKind;
use hack_workload::dataset::Dataset;
use hack_workload::trace::TraceConfig;
use serde::Serialize;

/// One experiment configuration (the workload/cluster side; the method is supplied to
/// [`JctExperiment::run`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct JctExperiment {
    /// Model being served.
    pub model: ModelKind,
    /// Prefill GPU family.
    pub prefill_gpu: GpuKind,
    /// Dataset.
    pub dataset: Dataset,
    /// Number of requests simulated.
    pub num_requests: usize,
    /// Request rate; `None` selects ~90% of the baseline's estimated maximum capacity
    /// (§7.1: "The RPS was set to the maximum processing capacity").
    pub rps: Option<f64>,
    /// Whether KV transfer is pipelined with prefill.
    pub pipelining: bool,
    /// Override for the number of prefill replicas (`None` keeps the paper's fleet).
    pub prefill_replicas: Option<usize>,
    /// Override for the number of decode replicas.
    pub decode_replicas: Option<usize>,
    /// Optional fault injection: a decode replica fails (and possibly recovers)
    /// mid-run.
    pub failure: Option<FailureSpec>,
    /// Trace seed.
    pub seed: u64,
}

impl JctExperiment {
    /// The paper's default setting: Llama-3.1 70B, A10G prefill, Cocktail.
    pub fn paper_default() -> Self {
        Self::new(ModelKind::Llama31_70B, GpuKind::A10G, Dataset::Cocktail)
    }

    /// Creates an experiment with default load (≈ max capacity) and 100 requests.
    pub fn new(model: ModelKind, prefill_gpu: GpuKind, dataset: Dataset) -> Self {
        Self {
            model,
            prefill_gpu,
            dataset,
            num_requests: 100,
            rps: None,
            pipelining: false,
            prefill_replicas: None,
            decode_replicas: None,
            failure: None,
            seed: 42,
        }
    }

    /// The scalability configuration of §7.6 / Fig. 14: `p` prefill replicas against a
    /// half-instance decode side, at RPS = 0.02·p.
    pub fn scalability(p: usize) -> Self {
        Self {
            rps: Some(0.02 * p as f64),
            prefill_replicas: Some(p),
            decode_replicas: Some(1),
            num_requests: 80,
            ..Self::paper_default()
        }
    }

    /// Builds the cluster configuration for this experiment.
    pub fn cluster_config(&self) -> ClusterConfig {
        let mut cluster = match self.prefill_replicas {
            Some(p) if self.decode_replicas == Some(1) => ClusterConfig::scalability(p),
            _ => ClusterConfig::paper_default(self.model, self.prefill_gpu),
        };
        if let Some(p) = self.prefill_replicas {
            cluster.prefill_replicas = p;
        }
        if let Some(d) = self.decode_replicas {
            cluster.decode_replicas = d;
        }
        cluster.pipelining = self.pipelining;
        cluster
    }

    /// The request rate used by this experiment.
    pub fn effective_rps(&self) -> f64 {
        if let Some(rps) = self.rps {
            return rps;
        }
        let cluster = self.cluster_config();
        let input = self.dataset.input_stats().avg;
        let output = self.dataset.output_stats().avg;
        // The paper drives every method at the same load, set by the capacity of the
        // deployment; use 90% of the baseline's estimated maximum.
        0.9 * cluster.estimate_max_rps(&Method::Baseline.profile(), input, output)
    }

    fn trace_config(&self) -> TraceConfig {
        TraceConfig {
            dataset: self.dataset,
            rps: self.effective_rps(),
            num_requests: self.num_requests,
            max_context: self.model.spec().max_context,
            seed: self.seed,
        }
    }

    /// Runs one method on this experiment.
    pub fn run(&self, method: Method) -> JctOutcome {
        let config = SimulationConfig {
            cluster: self.cluster_config(),
            trace: self.trace_config(),
            profile: method.profile(),
            failure: self.failure,
        };
        let result = Simulator::new(config).run();
        JctOutcome {
            method,
            method_name: method.name(),
            average_jct: result.average_jct(),
            stats: result.jct_stats(),
            ratios: result.average_ratios(),
            peak_decode_memory_fraction: result.peak_decode_memory_fraction,
            swapped_requests: result.swapped_requests,
            requeued_requests: result.requeued_requests,
            completed_requests: result.records.len(),
        }
    }

    /// Runs several methods on the same experiment (same trace, same load).
    pub fn run_all(&self, methods: &[Method]) -> Vec<JctOutcome> {
        methods.iter().map(|m| self.run(*m)).collect()
    }
}

/// Aggregate outcome of one (experiment, method) pair.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JctOutcome {
    /// The evaluated method.
    pub method: Method,
    /// Its display name.
    pub method_name: String,
    /// Average JCT across requests (seconds) — the paper's headline metric.
    pub average_jct: f64,
    /// Full JCT statistics (mean, p50, p95, max, mean stage breakdown).
    pub stats: JctStats,
    /// Average per-stage time ratios.
    pub ratios: StageRatios,
    /// Peak decode-instance GPU memory usage fraction (Table 5).
    pub peak_decode_memory_fraction: f64,
    /// Requests that had to wait for decode memory.
    pub swapped_requests: usize,
    /// Request re-queues caused by injected decode-replica failures.
    pub requeued_requests: usize,
    /// Requests completed (sanity check: equals the trace length).
    pub completed_requests: usize,
}

impl JctOutcome {
    /// JCT reduction of this method versus another outcome (`1 - self/other`).
    pub fn jct_reduction_vs(&self, other: &JctOutcome) -> f64 {
        if other.average_jct <= 0.0 {
            return 0.0;
        }
        1.0 - self.average_jct / other.average_jct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(dataset: Dataset) -> JctExperiment {
        JctExperiment {
            num_requests: 30,
            ..JctExperiment::new(ModelKind::Llama31_70B, GpuKind::A10G, dataset)
        }
    }

    #[test]
    fn default_rps_is_positive_and_moderate() {
        let e = small(Dataset::Cocktail);
        let rps = e.effective_rps();
        assert!(rps > 0.0 && rps < 5.0, "rps {rps}");
    }

    #[test]
    fn fig9_ordering_holds_on_cocktail() {
        let e = small(Dataset::Cocktail);
        let outcomes = e.run_all(&Method::main_comparison());
        assert_eq!(outcomes.len(), 4);
        for o in &outcomes {
            assert_eq!(o.completed_requests, 30, "{}", o.method_name);
        }
        let base = &outcomes[0];
        let cachegen = &outcomes[1];
        let kvquant = &outcomes[2];
        let hack = &outcomes[3];
        assert!(hack.average_jct < cachegen.average_jct);
        assert!(hack.average_jct < kvquant.average_jct);
        assert!(hack.average_jct < base.average_jct);
        assert!(
            hack.jct_reduction_vs(base) > 0.1,
            "reduction {}",
            hack.jct_reduction_vs(base)
        );
    }

    #[test]
    fn table5_memory_ordering_holds() {
        let e = small(Dataset::Cocktail);
        let base = e.run(Method::Baseline);
        let kvq = e.run(Method::KvQuant);
        let hack = e.run(Method::hack());
        assert!(base.peak_decode_memory_fraction > kvq.peak_decode_memory_fraction);
        assert!(hack.peak_decode_memory_fraction >= kvq.peak_decode_memory_fraction - 1e-9);
    }

    #[test]
    fn scalability_experiment_builds_single_decode_replica() {
        let e = JctExperiment::scalability(4);
        let cluster = e.cluster_config();
        assert_eq!(cluster.prefill_replicas, 4);
        assert_eq!(cluster.decode_replicas, 1);
        assert!((e.effective_rps() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn hack_ablations_are_not_faster_than_hack() {
        let e = small(Dataset::Arxiv);
        let hack = e.run(Method::hack());
        let no_se = e.run(Method::HackNoSe);
        let no_rqe = e.run(Method::HackNoRqe);
        assert!(no_se.average_jct >= hack.average_jct);
        assert!(no_rqe.average_jct >= hack.average_jct);
    }
}
