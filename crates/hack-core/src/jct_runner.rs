//! End-to-end JCT experiments on the cluster simulator.
//!
//! One [`JctExperiment`] describes a row of the paper's evaluation matrix (model ×
//! prefill GPU × dataset × load); [`JctExperiment::run`] evaluates one method on it and
//! returns the aggregate numbers the figures plot.

use crate::method::Method;
use hack_cluster::{
    CacheConfig, ClusterConfig, CostMode, FailureSpec, FaultPlan, PolicyConfig, SimulationConfig,
    Simulator, TelemetryConfig,
};
use hack_metrics::jct::{JctStats, StageRatios};
use hack_model::gpu::GpuKind;
use hack_model::spec::ModelKind;
use hack_workload::dataset::Dataset;
use hack_workload::trace::{TraceConfig, TraceTemplate};
use serde::Serialize;
use std::sync::Arc;

/// One experiment configuration (the workload/cluster side; the method is supplied to
/// [`JctExperiment::run`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct JctExperiment {
    /// Model being served.
    pub model: ModelKind,
    /// Prefill GPU family.
    pub prefill_gpu: GpuKind,
    /// Dataset.
    pub dataset: Dataset,
    /// Number of requests simulated.
    pub num_requests: usize,
    /// Request rate; `None` selects ~90% of the baseline's estimated maximum capacity
    /// (§7.1: "The RPS was set to the maximum processing capacity").
    pub rps: Option<f64>,
    /// Whether KV transfer is pipelined with prefill.
    pub pipelining: bool,
    /// Override for the number of prefill replicas (`None` keeps the paper's fleet).
    pub prefill_replicas: Option<usize>,
    /// Override for the number of decode replicas.
    pub decode_replicas: Option<usize>,
    /// Optional fault injection: a decode replica fails (and possibly recovers)
    /// mid-run.
    pub failure: Option<FailureSpec>,
    /// Trace seed.
    pub seed: u64,
}

impl JctExperiment {
    /// The paper's default setting: Llama-3.1 70B, A10G prefill, Cocktail.
    pub fn paper_default() -> Self {
        Self::new(ModelKind::Llama31_70B, GpuKind::A10G, Dataset::Cocktail)
    }

    /// Creates an experiment with default load (≈ max capacity) and 100 requests.
    pub fn new(model: ModelKind, prefill_gpu: GpuKind, dataset: Dataset) -> Self {
        Self {
            model,
            prefill_gpu,
            dataset,
            num_requests: 100,
            rps: None,
            pipelining: false,
            prefill_replicas: None,
            decode_replicas: None,
            failure: None,
            seed: 42,
        }
    }

    /// The scalability configuration of §7.6 / Fig. 14: `p` prefill replicas against a
    /// half-instance decode side, at RPS = 0.02·p.
    pub fn scalability(p: usize) -> Self {
        Self {
            rps: Some(0.02 * p as f64),
            prefill_replicas: Some(p),
            decode_replicas: Some(1),
            num_requests: 80,
            ..Self::paper_default()
        }
    }

    /// Builds the cluster configuration for this experiment.
    pub fn cluster_config(&self) -> ClusterConfig {
        let mut cluster = match self.prefill_replicas {
            Some(p) if self.decode_replicas == Some(1) => ClusterConfig::scalability(p),
            _ => ClusterConfig::paper_default(self.model, self.prefill_gpu),
        };
        if let Some(p) = self.prefill_replicas {
            cluster.set_prefill_replicas(p);
        }
        if let Some(d) = self.decode_replicas {
            cluster.set_decode_replicas(d);
        }
        cluster.pipelining = self.pipelining;
        cluster
    }

    /// The request rate used by this experiment.
    ///
    /// With `rps: None` this falls back to the **analytic** capacity estimate
    /// (fast, used by unit tests and as the bisection's starting bracket); the
    /// figure binaries instead resolve the load by *measurement* — see
    /// [`JctExperiment::with_measured_load`].
    pub fn effective_rps(&self) -> f64 {
        if let Some(rps) = self.rps {
            return rps;
        }
        // The paper drives every method at the same load, set by the capacity of the
        // deployment; use 90% of the baseline's estimated maximum.
        0.9 * self.analytic_max_rps()
    }

    /// The analytic capacity estimate of this experiment's cluster for the
    /// baseline method (the bisection's starting bracket and the fast default
    /// behind [`Self::effective_rps`]).
    fn analytic_max_rps(&self) -> f64 {
        let cluster = self.cluster_config();
        let input = self.dataset.input_stats().avg;
        let output = self.dataset.output_stats().avg;
        cluster.estimate_max_rps(&Method::Baseline.profile(), input, output)
    }

    /// The bounded probe experiment the capacity bisection runs at each rate.
    fn probe_experiment(&self, rps: f64, num_requests: usize) -> JctExperiment {
        JctExperiment {
            rps: Some(rps),
            num_requests,
            ..*self
        }
    }

    /// The shared accept/reject structure of the capacity measurement:
    /// `probe_jct(rps)` is the measured average baseline JCT at a rate; a rate
    /// is sustainable while that stays within [`Self::SATURATION_FACTOR`] of
    /// the unloaded JCT. Grow a bracket from the analytic seed, then bisect.
    fn bisect_max_rps(&self, mut probe_jct: impl FnMut(f64) -> f64) -> f64 {
        let analytic = self.analytic_max_rps();
        // Unloaded reference: a rate so low queueing is negligible.
        let unloaded_jct = probe_jct(analytic * 0.05);
        let mut stable = move |rps: f64| probe_jct(rps) <= unloaded_jct * Self::SATURATION_FACTOR;

        // Grow a bracket [lo stable, hi unstable] from the analytic seed.
        let mut lo = analytic * 0.05;
        let mut hi = analytic.max(lo * 2.0);
        let mut bracketed = !stable(hi);
        let mut growth = 0;
        while !bracketed && growth < 8 {
            lo = hi;
            hi *= 2.0;
            growth += 1;
            bracketed = !stable(hi);
        }
        if !bracketed {
            // Never saturated within 256x of the estimate; report the highest
            // rate that probed stable.
            return lo;
        }
        for _ in 0..12 {
            let mid = 0.5 * (lo + hi);
            if stable(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Measures the cluster's maximum sustainable request rate by bisection over
    /// actual simulator runs (§7.1: "the RPS was set to the maximum processing
    /// capacity").
    ///
    /// A rate is deemed sustainable when the measured average baseline JCT stays
    /// within [`Self::SATURATION_FACTOR`] of the unloaded JCT — past saturation,
    /// queueing makes the JCT blow up and the probe fails immediately. The
    /// analytic [`hack_cluster::ClusterConfig::estimate_max_rps`] only seeds the
    /// initial bracket; every accept/reject decision is a measured simulator run,
    /// so model errors in the analytic estimate cannot skew the operating point.
    ///
    /// The ~20 probe runs of a bisection share one [`TraceTemplate`] (sampled
    /// once; each probe only rescales arrival times, bit-identical to a fresh
    /// trace at that rate) and, through the process-wide cost-table cache, one
    /// set of decode cost tables — so each probe re-runs only the event loop.
    /// [`Self::measured_max_rps_reference`] keeps the uncached per-probe path;
    /// both return bit-identical results (pinned by test).
    ///
    /// Deterministic: probes reuse this experiment's trace seed.
    pub fn measured_max_rps(&self) -> f64 {
        let n = self.num_requests.clamp(20, 40);
        let template = TraceTemplate::new(self.probe_experiment(1.0, n).trace_config());
        self.bisect_max_rps(|rps| {
            let config = self
                .probe_experiment(rps, n)
                .simulation_config(Method::Baseline);
            let requests = Arc::new(template.instantiate(rps));
            Simulator::with_requests(config, requests)
                .run()
                .average_jct()
        })
    }

    /// The pre-cache capacity measurement: every probe synthesises its trace
    /// from scratch and evaluates costs through the reference summation loops
    /// ([`CostMode::Reference`]). Kept as the benchmark "before" and as the
    /// oracle [`Self::measured_max_rps`] must reproduce bit-identically.
    pub fn measured_max_rps_reference(&self) -> f64 {
        let n = self.num_requests.clamp(20, 40);
        self.bisect_max_rps(|rps| {
            let config = self
                .probe_experiment(rps, n)
                .simulation_config(Method::Baseline);
            Simulator::new(config)
                .run_with_costs(CostMode::Reference)
                .average_jct()
        })
    }

    /// JCT inflation over the unloaded baseline beyond which a probed rate is
    /// considered saturated (see [`Self::measured_max_rps`]).
    pub const SATURATION_FACTOR: f64 = 1.3;

    /// Resolves a `rps: None` load by measurement: 90% of
    /// [`Self::measured_max_rps`], mirroring the analytic default's headroom.
    /// Experiments with an explicit rate are returned unchanged.
    pub fn with_measured_load(self) -> Self {
        if self.rps.is_some() {
            return self;
        }
        Self {
            rps: Some(0.9 * self.measured_max_rps()),
            ..self
        }
    }

    fn trace_config(&self) -> TraceConfig {
        TraceConfig {
            dataset: self.dataset,
            rps: self.effective_rps(),
            num_requests: self.num_requests,
            max_context: self.model.spec().max_context,
            seed: self.seed,
        }
    }

    /// Builds the full simulation configuration for one method (also used by the
    /// bench harness to drive the [`Simulator`] directly, e.g. with an explicit
    /// engine mode).
    pub fn simulation_config(&self, method: Method) -> SimulationConfig {
        SimulationConfig {
            cluster: self.cluster_config(),
            trace: self.trace_config(),
            profile: method.profile(),
            policy: PolicyConfig::default(),
            faults: self.failure.map(FaultPlan::from).unwrap_or_default(),
            telemetry: TelemetryConfig::Off,
            cache: CacheConfig::Off,
        }
    }

    /// Runs one method on this experiment.
    pub fn run(&self, method: Method) -> JctOutcome {
        let result = Simulator::new(self.simulation_config(method)).run();
        JctOutcome {
            method,
            method_name: method.name(),
            average_jct: result.average_jct(),
            stats: result.jct_stats(),
            ratios: result.average_ratios(),
            peak_decode_memory_fraction: result.peak_decode_memory_fraction,
            swapped_requests: result.swapped_requests,
            requeued_requests: result.requeued_requests,
            completed_requests: result.records.len(),
        }
    }

    /// Runs several methods on the same experiment (same trace, same load).
    pub fn run_all(&self, methods: &[Method]) -> Vec<JctOutcome> {
        methods.iter().map(|m| self.run(*m)).collect()
    }
}

/// Aggregate outcome of one (experiment, method) pair.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JctOutcome {
    /// The evaluated method.
    pub method: Method,
    /// Its display name.
    pub method_name: String,
    /// Average JCT across requests (seconds) — the paper's headline metric.
    pub average_jct: f64,
    /// Full JCT statistics (mean, p50, p95, max, mean stage breakdown).
    pub stats: JctStats,
    /// Average per-stage time ratios.
    pub ratios: StageRatios,
    /// Peak decode-instance GPU memory usage fraction (Table 5).
    pub peak_decode_memory_fraction: f64,
    /// Requests that had to wait for decode memory.
    pub swapped_requests: usize,
    /// Request re-queues caused by injected decode-replica failures.
    pub requeued_requests: usize,
    /// Requests completed (sanity check: equals the trace length).
    pub completed_requests: usize,
}

impl JctOutcome {
    /// JCT reduction of this method versus another outcome (`1 - self/other`).
    pub fn jct_reduction_vs(&self, other: &JctOutcome) -> f64 {
        if other.average_jct <= 0.0 {
            return 0.0;
        }
        1.0 - self.average_jct / other.average_jct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(dataset: Dataset) -> JctExperiment {
        JctExperiment {
            num_requests: 30,
            ..JctExperiment::new(ModelKind::Llama31_70B, GpuKind::A10G, dataset)
        }
    }

    #[test]
    fn default_rps_is_positive_and_moderate() {
        let e = small(Dataset::Cocktail);
        let rps = e.effective_rps();
        assert!(rps > 0.0 && rps < 5.0, "rps {rps}");
    }

    #[test]
    fn measured_capacity_is_deterministic_and_tracks_the_analytic_estimate() {
        let e = small(Dataset::Cocktail);
        let measured = e.measured_max_rps();
        assert!(measured > 0.0, "measured capacity must be positive");
        // The analytic model and the measured saturation point describe the same
        // cluster; they must agree to well within an order of magnitude.
        let analytic = e.effective_rps() / 0.9;
        assert!(
            measured > 0.2 * analytic && measured < 5.0 * analytic,
            "measured {measured} vs analytic {analytic}"
        );
        assert_eq!(
            measured,
            e.measured_max_rps(),
            "bisection must be deterministic"
        );
    }

    #[test]
    fn cached_bisection_is_bit_identical_to_the_reference_path() {
        // The cached capacity measurement (shared trace template + cost
        // tables) must make exactly the same accept/reject decisions as the
        // uncached reference path, hence return the identical rate.
        for dataset in [Dataset::Imdb, Dataset::Cocktail] {
            let e = small(dataset);
            assert_eq!(
                e.measured_max_rps(),
                e.measured_max_rps_reference(),
                "{}: cached and reference bisection disagree",
                dataset.name()
            );
        }
    }

    #[test]
    fn every_method_profile_matches_reference_at_dataset_contexts() {
        // Table-vs-loop equivalence of decode durations for every Method's
        // cost profile, at each dataset's maximum context.
        use hack_model::cost_table::DecodeCostTable;
        use hack_model::parallelism::Parallelism;
        use hack_model::ReplicaCostModel;

        let spec = ModelKind::Llama31_70B.spec();
        let decode_model = ReplicaCostModel::new(
            spec,
            GpuKind::A100.spec(),
            Parallelism::table3(ModelKind::Llama31_70B, GpuKind::A100),
        );
        let batch = decode_model.params.decode_batch;
        let methods = [
            Method::Baseline,
            Method::CacheGen,
            Method::KvQuant,
            Method::Fp8,
            Method::Fp6,
            Method::Fp4,
            Method::Hack { partition: 32 },
            Method::hack(),
            Method::Hack { partition: 128 },
            Method::HackNoSe,
            Method::HackNoRqe,
        ];
        for dataset in Dataset::all() {
            let input = dataset.input_stats().max;
            let output = dataset.output_stats().max;
            for method in methods {
                let profile = method.profile();
                let table = DecodeCostTable::build(&decode_model, &profile, batch, input + output);
                let (td, tq) = table.decode_durations(input, output);
                let (rd, rq) =
                    decode_model.decode_durations_reference(&profile, batch, input, output);
                let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(f64::MIN_POSITIVE);
                assert!(
                    close(td, rd) && close(tq, rq),
                    "{} on {}: table ({td}, {tq}) vs reference ({rd}, {rq})",
                    method.name(),
                    dataset.name()
                );
            }
        }
    }

    #[test]
    fn with_measured_load_fills_only_unset_rates() {
        let e = small(Dataset::Imdb);
        let resolved = e.with_measured_load();
        assert!(resolved.rps.is_some());
        // The measured operating point must actually be sustainable: the probe
        // at the resolved rate stays below the saturation threshold.
        let jct = resolved.run(Method::Baseline).average_jct;
        let unloaded = JctExperiment {
            rps: Some(resolved.rps.unwrap() * 0.05),
            ..e
        }
        .run(Method::Baseline)
        .average_jct;
        assert!(
            jct <= unloaded * 2.0,
            "resolved load saturates the cluster: {jct} vs unloaded {unloaded}"
        );

        let pinned = JctExperiment {
            rps: Some(0.123),
            ..e
        };
        assert_eq!(pinned.with_measured_load().rps, Some(0.123));
    }

    #[test]
    fn fig9_ordering_holds_on_cocktail() {
        let e = small(Dataset::Cocktail);
        let outcomes = e.run_all(&Method::main_comparison());
        assert_eq!(outcomes.len(), 4);
        for o in &outcomes {
            assert_eq!(o.completed_requests, 30, "{}", o.method_name);
        }
        let base = &outcomes[0];
        let cachegen = &outcomes[1];
        let kvquant = &outcomes[2];
        let hack = &outcomes[3];
        assert!(hack.average_jct < cachegen.average_jct);
        assert!(hack.average_jct < kvquant.average_jct);
        assert!(hack.average_jct < base.average_jct);
        assert!(
            hack.jct_reduction_vs(base) > 0.1,
            "reduction {}",
            hack.jct_reduction_vs(base)
        );
    }

    #[test]
    fn table5_memory_ordering_holds() {
        let e = small(Dataset::Cocktail);
        let base = e.run(Method::Baseline);
        let kvq = e.run(Method::KvQuant);
        let hack = e.run(Method::hack());
        assert!(base.peak_decode_memory_fraction > kvq.peak_decode_memory_fraction);
        assert!(hack.peak_decode_memory_fraction >= kvq.peak_decode_memory_fraction - 1e-9);
    }

    #[test]
    fn scalability_experiment_builds_single_decode_replica() {
        let e = JctExperiment::scalability(4);
        let cluster = e.cluster_config();
        assert_eq!(cluster.prefill_replicas(), 4);
        assert_eq!(cluster.decode_replicas(), 1);
        assert!((e.effective_rps() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn hack_ablations_are_not_faster_than_hack() {
        let e = small(Dataset::Arxiv);
        let hack = e.run(Method::hack());
        let no_se = e.run(Method::HackNoSe);
        let no_rqe = e.run(Method::HackNoRqe);
        assert!(no_se.average_jct >= hack.average_jct);
        assert!(no_rqe.average_jct >= hack.average_jct);
    }
}
