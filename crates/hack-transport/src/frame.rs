//! Length-prefixed, checksummed framing.
//!
//! Wire layout: `[u32 little-endian payload length][u32 little-endian CRC32][payload]`.
//! The CRC protects against silent truncation/corruption when the demo is run across
//! real machines.

use bytes::{Buf, BufMut, BytesMut};
use std::io::{self, Read, Write};

/// Maximum accepted frame size (1 GiB) — guards against a corrupt length prefix
/// allocating unbounded memory.
pub const MAX_FRAME_BYTES: usize = 1 << 30;

/// CRC32 (IEEE 802.3, reflected) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Writes one frame to a writer.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= MAX_FRAME_BYTES, "frame too large");
    let mut header = BytesMut::with_capacity(8);
    header.put_u32_le(payload.len() as u32);
    header.put_u32_le(crc32(payload));
    writer.write_all(&header)?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one frame from a reader, verifying length and checksum.
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 8];
    reader.read_exact(&mut header)?;
    let mut buf = &header[..];
    let len = buf.get_u32_le() as usize;
    let expected_crc = buf.get_u32_le();
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    let actual_crc = crc32(&payload);
    if actual_crc != expected_crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame checksum mismatch: expected {expected_crc:#010x}, got {actual_crc:#010x}"
            ),
        ));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trip() {
        let payload = b"quantized kv bytes".to_vec();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        assert_eq!(buf.len(), 8 + payload.len());
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), payload);
    }

    #[test]
    fn multiple_frames_in_sequence() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"second frame").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"first");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"second frame");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
    }

    #[test]
    fn corrupted_payload_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload under test").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let mut cursor = Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut cursor = Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"whole frame").unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
