//! Blocking TCP transport: a decode-side server that collects KV transfer messages and
//! a prefill-side client that ships them.

use crate::frame::{read_frame, write_frame};
use crate::wire::KvTransferMessage;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Decode-side server: accepts connections, reads framed [`KvTransferMessage`]s and
/// hands them to the consumer through a channel.
pub struct DecodeServer {
    addr: SocketAddr,
    receiver: Receiver<KvTransferMessage>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl DecodeServer {
    /// Binds to `127.0.0.1:0` (an ephemeral port) and starts accepting in the
    /// background.
    pub fn start() -> io::Result<Self> {
        Self::bind("127.0.0.1:0")
    }

    /// Binds to an explicit address and starts accepting in the background.
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let (tx, rx) = unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_clone = shutdown.clone();
        let handle = std::thread::spawn(move || accept_loop(listener, tx, shutdown_clone));
        Ok(Self {
            addr,
            receiver: rx,
            shutdown,
            accept_thread: Mutex::new(Some(handle)),
        })
    }

    /// Address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocking receive of the next message (returns `None` once all senders are done
    /// and the server is shut down).
    pub fn recv(&self) -> Option<KvTransferMessage> {
        self.receiver.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<KvTransferMessage> {
        self.receiver.try_recv().ok()
    }

    /// Receives exactly `n` messages (blocking).
    pub fn recv_n(&self, n: usize) -> Vec<KvTransferMessage> {
        (0..n).filter_map(|_| self.recv()).collect()
    }

    /// Stops the accept loop. In-flight connections finish their current message.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the listener so `accept` returns.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DecodeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, tx: Sender<KvTransferMessage>, shutdown: Arc<AtomicBool>) {
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let tx = tx.clone();
                std::thread::spawn(move || {
                    // One connection may carry many messages; stop at EOF or error.
                    while let Ok(payload) = read_frame(&mut stream) {
                        let msg = KvTransferMessage::decode(&payload);
                        if tx.send(msg).is_err() {
                            return;
                        }
                    }
                });
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Prefill-side client: a persistent connection to the decode server.
pub struct PrefillClient {
    stream: TcpStream,
}

impl PrefillClient {
    /// Connects to a decode server.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends one KV transfer message (blocking until fully written).
    pub fn send(&mut self, msg: &KvTransferMessage) -> io::Result<usize> {
        let payload = msg.encode();
        write_frame(&mut self.stream, &payload)?;
        Ok(payload.len() + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_attention::state::HackKvState;
    use hack_quant::HackConfig;
    use hack_tensor::{DetRng, Matrix};

    fn message(request_id: u64, tokens: usize, seed: u64) -> KvTransferMessage {
        let mut rng = DetRng::new(seed);
        let d = 32;
        let k = Matrix::random_normal(tokens, d, 0.0, 1.0, &mut rng);
        let v = Matrix::random_normal(tokens, d, 0.0, 1.0, &mut rng);
        let state = HackKvState::from_prefill(&k, &v, HackConfig::paper_default(), &mut rng);
        KvTransferMessage {
            request_id,
            layer: 0,
            head: 0,
            first_token: 7,
            k: state.k_quant().clone(),
            v: state.v_quant().clone(),
            v_tail: state.v_tail().clone(),
        }
    }

    #[test]
    fn single_message_round_trip_over_tcp() {
        let server = DecodeServer::start().unwrap();
        let mut client = PrefillClient::connect(server.addr()).unwrap();
        let msg = message(1, 100, 1);
        let sent_bytes = client.send(&msg).unwrap();
        assert!(sent_bytes > 0);
        let received = server.recv().expect("message should arrive");
        assert_eq!(received, msg);
        server.shutdown();
    }

    #[test]
    fn many_messages_from_multiple_clients() {
        let server = DecodeServer::start().unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4u64)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut client = PrefillClient::connect(addr).unwrap();
                    for i in 0..5u64 {
                        client
                            .send(&message(c * 100 + i, 64 + i as usize, c + i))
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let received = server.recv_n(20);
        assert_eq!(received.len(), 20);
        let mut ids: Vec<u64> = received.iter().map(|m| m.request_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20, "all messages must be distinct");
        server.shutdown();
    }

    #[test]
    fn persistent_connection_carries_multiple_messages() {
        let server = DecodeServer::start().unwrap();
        let mut client = PrefillClient::connect(server.addr()).unwrap();
        for i in 0..3 {
            client.send(&message(i, 70, i)).unwrap();
        }
        let received = server.recv_n(3);
        assert_eq!(received.len(), 3);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let server = DecodeServer::start().unwrap();
        server.shutdown();
        server.shutdown();
    }
}
