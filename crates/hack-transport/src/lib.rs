//! # hack-transport
//!
//! A small, real transfer substrate for quantized KV data: the paper moves K'/V' (plus
//! quantization metadata and the first generated token) from the prefill instance to
//! the decode instance with NCCL (§6); this crate provides the equivalent for the
//! reproduction's CPU-only environment — a length-prefixed, checksummed wire format and
//! a blocking TCP client/server pair — so the end-to-end "prefill node → network →
//! decode node" path can be exercised for real (see `examples/disaggregated_demo.rs`).
//!
//! * [`frame`] — `[u32 length][u32 crc32][payload]` framing with incremental reads.
//! * [`wire`] — binary serialization of [`wire::KvTransferMessage`]: quantized K and V
//!   tensors (packed codes + FP16 metadata + partition sums), the FP16 tail of V, and
//!   the first output token.
//! * [`tcp`] — a blocking decode-side server that accepts one message per connection
//!   and a prefill-side client that ships messages to it.

pub mod frame;
pub mod tcp;
pub mod wire;

pub use frame::{read_frame, write_frame};
pub use tcp::{DecodeServer, PrefillClient};
pub use wire::KvTransferMessage;
