//! Binary wire format of a prefill→decode KV transfer (step 7 of Fig. 5).
//!
//! A message carries, for one request and one attention head (heads are shipped
//! independently so they can be streamed as they are produced):
//!
//! * the 2-bit packed K codes with their FP16 `min`/`scale` metadata and partition sums,
//! * the 2-bit packed V codes with metadata and sums,
//! * the FP16 tail of V (the last partial block kept unquantized by RQE), and
//! * the first output token produced by prefill.

use bytes::{Buf, BufMut, BytesMut};
use hack_quant::packing::{pack_codes, unpack_codes};
use hack_quant::params::QuantBits;
use hack_quant::stochastic::PartitionMeta;
use hack_quant::QuantizedTensor;
use hack_tensor::half::{f16_bits_to_f32, f32_to_f16_bits};
use hack_tensor::Matrix;

/// One head's KV transfer payload.
#[derive(Debug, Clone, PartialEq)]
pub struct KvTransferMessage {
    /// Request identifier.
    pub request_id: u64,
    /// Attention head index (within `layer`).
    pub head: u32,
    /// Layer index.
    pub layer: u32,
    /// First output token produced by the prefill stage.
    pub first_token: u32,
    /// Quantized K (tokens × head_dim layout).
    pub k: QuantizedTensor,
    /// Quantized V (head_dim × quantized-tokens layout).
    pub v: QuantizedTensor,
    /// FP16 tail of V (tail-tokens × head_dim), empty when RQE is disabled.
    pub v_tail: Matrix,
}

fn bits_to_u8(bits: QuantBits) -> u8 {
    bits.bits() as u8
}

fn u8_to_bits(b: u8) -> QuantBits {
    match b {
        2 => QuantBits::Int2,
        4 => QuantBits::Int4,
        8 => QuantBits::Int8,
        other => panic!("unsupported code width {other} on the wire"),
    }
}

fn put_tensor(buf: &mut BytesMut, t: &QuantizedTensor) {
    buf.put_u32_le(t.rows() as u32);
    buf.put_u32_le(t.cols() as u32);
    buf.put_u8(bits_to_u8(t.bits()));
    buf.put_u32_le(t.partition() as u32);
    // Codes, packed row by row so each row is byte-aligned.
    for r in 0..t.rows() {
        buf.put_slice(&pack_codes(t.codes_row(r), t.bits()));
    }
    // Metadata as FP16 pairs.
    for meta in t.metas() {
        buf.put_u16_le(f32_to_f16_bits(meta.min));
        buf.put_u16_le(f32_to_f16_bits(meta.scale));
    }
    // Partition sums as i32 (the receiver re-derives narrower storage if it wants).
    for &s in t.sums() {
        buf.put_i32_le(s);
    }
}

fn get_tensor(buf: &mut &[u8]) -> QuantizedTensor {
    let rows = buf.get_u32_le() as usize;
    let cols = buf.get_u32_le() as usize;
    let bits = u8_to_bits(buf.get_u8());
    let partition = buf.get_u32_le() as usize;
    let row_bytes = bits.packed_bytes(cols);
    let mut codes = Vec::with_capacity(rows * cols);
    for _ in 0..rows {
        let packed = &buf[..row_bytes];
        codes.extend(unpack_codes(packed, bits, cols));
        buf.advance(row_bytes);
    }
    let n_parts = if cols == 0 {
        0
    } else {
        cols.div_ceil(partition)
    };
    let mut metas = Vec::with_capacity(rows * n_parts);
    for _ in 0..rows * n_parts {
        let min = f16_bits_to_f32(buf.get_u16_le());
        let scale = f16_bits_to_f32(buf.get_u16_le());
        metas.push(PartitionMeta { min, scale });
    }
    let mut sums = Vec::with_capacity(rows * n_parts);
    for _ in 0..rows * n_parts {
        sums.push(buf.get_i32_le());
    }
    QuantizedTensor::from_parts(rows, cols, bits, partition, codes, metas, sums)
}

impl KvTransferMessage {
    /// Serialises the message into bytes (to be wrapped in a frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u64_le(self.request_id);
        buf.put_u32_le(self.layer);
        buf.put_u32_le(self.head);
        buf.put_u32_le(self.first_token);
        put_tensor(&mut buf, &self.k);
        put_tensor(&mut buf, &self.v);
        buf.put_u32_le(self.v_tail.rows() as u32);
        buf.put_u32_le(self.v_tail.cols() as u32);
        for &v in self.v_tail.as_slice() {
            buf.put_u16_le(f32_to_f16_bits(v));
        }
        buf.to_vec()
    }

    /// Deserialises a message previously produced by [`Self::encode`].
    ///
    /// # Panics
    /// Panics if the buffer is malformed (the framing layer already guarantees
    /// integrity via its CRC, so malformed here means a protocol bug).
    pub fn decode(bytes: &[u8]) -> Self {
        let mut buf = bytes;
        let request_id = buf.get_u64_le();
        let layer = buf.get_u32_le();
        let head = buf.get_u32_le();
        let first_token = buf.get_u32_le();
        let k = get_tensor(&mut buf);
        let v = get_tensor(&mut buf);
        let tail_rows = buf.get_u32_le() as usize;
        let tail_cols = buf.get_u32_le() as usize;
        let mut tail = Vec::with_capacity(tail_rows * tail_cols);
        for _ in 0..tail_rows * tail_cols {
            tail.push(f16_bits_to_f32(buf.get_u16_le()));
        }
        Self {
            request_id,
            layer,
            head,
            first_token,
            k,
            v,
            v_tail: Matrix::from_vec(tail_rows, tail_cols, tail),
        }
    }

    /// Size of the encoded message in bytes.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_attention::state::HackKvState;
    use hack_quant::HackConfig;
    use hack_tensor::DetRng;

    fn sample_message(tokens: usize, head_dim: usize, seed: u64) -> KvTransferMessage {
        let mut rng = DetRng::new(seed);
        let k = Matrix::random_normal(tokens, head_dim, 0.0, 1.0, &mut rng);
        let v = Matrix::random_normal(tokens, head_dim, 0.0, 1.0, &mut rng);
        let state = HackKvState::from_prefill(&k, &v, HackConfig::paper_default(), &mut rng);
        KvTransferMessage {
            request_id: 42,
            layer: 3,
            head: 5,
            first_token: 1234,
            k: state.k_quant().clone(),
            v: state.v_quant().clone(),
            v_tail: state.v_tail().clone(),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let msg = sample_message(200, 64, 1);
        let bytes = msg.encode();
        let back = KvTransferMessage::decode(&bytes);
        assert_eq!(back, msg);
    }

    #[test]
    fn round_trip_with_empty_tail() {
        // 128 tokens with Π=64: no FP16 tail.
        let msg = sample_message(128, 64, 2);
        assert_eq!(msg.v_tail.rows(), 0);
        let back = KvTransferMessage::decode(&msg.encode());
        assert_eq!(back, msg);
    }

    #[test]
    fn encoded_size_is_far_below_fp16() {
        let tokens = 2048;
        let head_dim = 128;
        let msg = sample_message(tokens, head_dim, 3);
        let fp16 = 2 * 2 * tokens * head_dim;
        let ratio = msg.encoded_len() as f64 / fp16 as f64;
        // Codes are 2-bit; metadata, sums (i32 on the wire) and the FP16 tail add a
        // little on top. The whole message must stay well under a quarter of FP16.
        assert!(ratio < 0.25, "wire size ratio {ratio}");
    }

    #[test]
    fn header_fields_survive() {
        let msg = sample_message(70, 32, 4);
        let back = KvTransferMessage::decode(&msg.encode());
        assert_eq!(back.request_id, 42);
        assert_eq!(back.layer, 3);
        assert_eq!(back.head, 5);
        assert_eq!(back.first_token, 1234);
    }

    #[test]
    #[should_panic(expected = "unsupported code width")]
    fn bogus_bit_width_panics() {
        let msg = sample_message(64, 32, 5);
        let mut bytes = msg.encode();
        // The bits byte of K sits right after the 20-byte header + rows/cols (8 bytes).
        bytes[28] = 7;
        KvTransferMessage::decode(&bytes);
    }
}
