//! FlashAttention-2-style tiled attention.
//!
//! The paper integrates HACK into a Triton implementation of FlashAttention-2 (§6).
//! This module provides the CPU analogue of that backend: the KV sequence is processed
//! in tiles with an online softmax, so the full `L_Q × L_KV` score matrix is never
//! materialised. It produces the same result as [`crate::baseline::baseline_attention`]
//! up to floating-point rounding and serves as the memory-efficient substrate the HACK
//! prefill kernel is fused into.

use crate::baseline::AttentionMask;
use hack_tensor::matmul::matmul_transposed_b;
use hack_tensor::softmax::OnlineSoftmax;
use hack_tensor::Matrix;

/// Tiled single-head attention with online softmax.
///
/// * `q`: `L_Q × d_h`, `k`/`v`: `L_KV × d_h`, `block` is the KV tile length.
pub fn flash_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    mask: AttentionMask,
    block: usize,
) -> Matrix {
    assert_eq!(q.cols(), k.cols(), "Q and K must share the head dimension");
    assert_eq!(
        k.rows(),
        v.rows(),
        "K and V must have the same number of tokens"
    );
    assert!(
        k.rows() >= q.rows(),
        "KV sequence shorter than query sequence"
    );
    assert!(block > 0, "block size must be positive");

    let l_q = q.rows();
    let l_kv = k.rows();
    let d_h = q.cols();
    let d_v = v.cols();
    let scale = 1.0 / (d_h as f32).sqrt();
    let offset = l_kv - l_q;

    let mut online = OnlineSoftmax::new(l_q, d_v);
    let mut start = 0;
    while start < l_kv {
        let end = (start + block).min(l_kv);
        let k_tile = k.row_block(start, end);
        let v_tile = v.row_block(start, end);
        let mut scores = matmul_transposed_b(q, &k_tile).scale(scale);
        if mask == AttentionMask::Causal {
            for r in 0..l_q {
                // `limit` is the last visible absolute KV index for query r;
                // everything after it in this tile is masked — fill the row's
                // suffix in one slice write instead of branching per element.
                let limit = r + offset;
                let masked_from = (limit + 1).clamp(start, end) - start;
                for s in &mut scores.row_mut(r)[masked_from..] {
                    *s = f32::NEG_INFINITY;
                }
            }
        }
        online.update(&scores, &v_tile);
        start = end;
    }
    online.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::baseline_attention;
    use hack_tensor::{relative_frobenius_error, DetRng};

    fn random_qkv(l_q: usize, l_kv: usize, d_h: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = DetRng::new(seed);
        let q = Matrix::random_normal(l_q, d_h, 0.0, 1.0, &mut rng);
        let k = Matrix::random_normal(l_kv, d_h, 0.0, 1.0, &mut rng);
        let v = Matrix::random_normal(l_kv, d_h, 0.0, 1.0, &mut rng);
        (q, k, v)
    }

    #[test]
    fn matches_baseline_unmasked() {
        let (q, k, v) = random_qkv(6, 40, 32, 1);
        let expect = baseline_attention(&q, &k, &v, AttentionMask::None);
        for block in [1, 7, 16, 64] {
            let got = flash_attention(&q, &k, &v, AttentionMask::None, block);
            let err = relative_frobenius_error(&expect, &got);
            assert!(err < 1e-4, "block={block} err={err}");
        }
    }

    #[test]
    fn matches_baseline_causal() {
        let (q, k, v) = random_qkv(16, 16, 32, 2);
        let expect = baseline_attention(&q, &k, &v, AttentionMask::Causal);
        for block in [3, 8, 16] {
            let got = flash_attention(&q, &k, &v, AttentionMask::Causal, block);
            let err = relative_frobenius_error(&expect, &got);
            assert!(err < 1e-4, "block={block} err={err}");
        }
    }

    #[test]
    fn matches_baseline_causal_with_kv_offset() {
        // Decode-like: queries appended after a cached prefix.
        let (q, k, v) = random_qkv(4, 50, 16, 3);
        let expect = baseline_attention(&q, &k, &v, AttentionMask::Causal);
        let got = flash_attention(&q, &k, &v, AttentionMask::Causal, 13);
        assert!(relative_frobenius_error(&expect, &got) < 1e-4);
    }

    #[test]
    fn single_query_decode_step() {
        let (q, k, v) = random_qkv(1, 200, 64, 4);
        let expect = baseline_attention(&q, &k, &v, AttentionMask::Causal);
        let got = flash_attention(&q, &k, &v, AttentionMask::Causal, 32);
        assert!(relative_frobenius_error(&expect, &got) < 1e-4);
    }

    #[test]
    fn block_larger_than_sequence() {
        let (q, k, v) = random_qkv(2, 5, 8, 5);
        let expect = baseline_attention(&q, &k, &v, AttentionMask::None);
        let got = flash_attention(&q, &k, &v, AttentionMask::None, 1000);
        assert!(relative_frobenius_error(&expect, &got) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_panics() {
        let (q, k, v) = random_qkv(1, 2, 4, 6);
        flash_attention(&q, &k, &v, AttentionMask::None, 0);
    }
}
