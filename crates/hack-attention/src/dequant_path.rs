//! Dequantize-then-compute attention: the numerical path of the KV-quantization
//! baselines (CacheGen, KVQuant).
//!
//! K and V are stored 2-bit quantized (so transfer and cache sizes match HACK's), but
//! before every attention computation they are dequantized back to FP16 and the
//! attention runs in floating point (§2.2). The paper charges these methods the
//! dequantization time; this module provides the matching numerical behaviour for the
//! fidelity experiments.

use crate::baseline::{fp16_attention, AttentionMask};
use hack_quant::params::{QuantBits, RoundingMode};
use hack_quant::QuantizedTensor;
use hack_tensor::{DetRng, Matrix};

/// Runs single-head attention with `k`/`v` squeezed through `bits`-bit partitioned
/// quantization (and dequantized before compute), modelling CacheGen / KVQuant.
///
/// `q` stays in FP16: these baselines only quantize the KV cache.
pub fn dequant_quantized_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    bits: QuantBits,
    partition: usize,
    mask: AttentionMask,
    rng: &mut DetRng,
) -> Matrix {
    let qk = QuantizedTensor::quantize_rows(k, bits, partition, RoundingMode::Stochastic, rng);
    // V is quantized along the sequence dimension, matching the layout used by HACK and
    // by per-token baselines.
    let qv = QuantizedTensor::quantize_cols(v, bits, partition, RoundingMode::Stochastic, rng);
    let k_deq = qk.dequantize().to_f16_precision();
    let v_deq = qv.dequantize_transposed().to_f16_precision();
    fp16_attention(q, &k_deq, &v_deq, mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::baseline_attention;
    use hack_tensor::{cosine_similarity, relative_frobenius_error};

    fn random_qkv(l_q: usize, l_kv: usize, d_h: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = DetRng::new(seed);
        let q = Matrix::random_normal(l_q, d_h, 0.0, 1.0, &mut rng);
        let k = Matrix::random_normal(l_kv, d_h, 0.0, 1.0, &mut rng);
        let v = Matrix::random_normal(l_kv, d_h, 0.0, 1.0, &mut rng);
        (q, k, v)
    }

    #[test]
    fn int8_dequant_attention_is_close_to_baseline() {
        let (q, k, v) = random_qkv(4, 96, 64, 1);
        let mut rng = DetRng::new(10);
        let expect = baseline_attention(&q, &k, &v, AttentionMask::Causal);
        let got = dequant_quantized_attention(
            &q,
            &k,
            &v,
            QuantBits::Int8,
            64,
            AttentionMask::Causal,
            &mut rng,
        );
        assert!(relative_frobenius_error(&expect, &got) < 0.02);
    }

    #[test]
    fn int2_dequant_attention_preserves_direction() {
        // i.i.d. Gaussian KV is the worst case for 2-bit quantization (no per-partition
        // structure to exploit); the direction must still be broadly preserved.
        let (q, k, v) = random_qkv(4, 128, 64, 2);
        let mut rng = DetRng::new(11);
        let expect = baseline_attention(&q, &k, &v, AttentionMask::Causal);
        let got = dequant_quantized_attention(
            &q,
            &k,
            &v,
            QuantBits::Int2,
            64,
            AttentionMask::Causal,
            &mut rng,
        );
        assert!(
            cosine_similarity(&expect, &got) > 0.5,
            "cos {}",
            cosine_similarity(&expect, &got)
        );
    }

    #[test]
    fn smaller_partition_is_at_least_as_accurate() {
        let (q, k, v) = random_qkv(2, 256, 64, 3);
        let expect = baseline_attention(&q, &k, &v, AttentionMask::Causal);
        let mut rng_a = DetRng::new(12);
        let mut rng_b = DetRng::new(12);
        let fine = dequant_quantized_attention(
            &q,
            &k,
            &v,
            QuantBits::Int2,
            32,
            AttentionMask::Causal,
            &mut rng_a,
        );
        let coarse = dequant_quantized_attention(
            &q,
            &k,
            &v,
            QuantBits::Int2,
            128,
            AttentionMask::Causal,
            &mut rng_b,
        );
        let e_fine = relative_frobenius_error(&expect, &fine);
        let e_coarse = relative_frobenius_error(&expect, &coarse);
        assert!(
            e_fine <= e_coarse * 1.05,
            "fine {e_fine} should not be (meaningfully) worse than coarse {e_coarse}"
        );
    }

    #[test]
    fn output_shape_is_preserved() {
        let (q, k, v) = random_qkv(1, 40, 32, 4);
        let mut rng = DetRng::new(13);
        let got = dequant_quantized_attention(
            &q,
            &k,
            &v,
            QuantBits::Int2,
            64,
            AttentionMask::Causal,
            &mut rng,
        );
        assert_eq!(got.shape(), (1, 32));
        assert!(got.all_finite());
    }
}
