//! # hack-attention
//!
//! Attention kernels for the HACK reproduction (§5.3, §6 of the paper).
//!
//! Four execution paths are provided, mirroring the systems compared in the paper:
//!
//! | Path | Module | Models |
//! |---|---|---|
//! | FP32/FP16 dense attention | [`baseline`] | the disaggregated-inference baseline |
//! | Tiled online-softmax attention | [`flash`] | the FlashAttention-2 backend HACK integrates with |
//! | Dequantize-then-compute attention | [`dequant_path`] | CacheGen / KVQuant: 2-bit KV storage, FP16 compute |
//! | Homomorphic-quantized attention | [`prefill`], [`state`] | HACK's `attn_prefill` / `attn_decode` kernels |
//!
//! The HACK decode path keeps its per-head KV state in [`state::HackKvState`]: 2-bit
//! quantized K (partitioned along the head dimension), 2-bit quantized V (partitioned
//! along the sequence dimension), per-partition code sums (Summation Elimination) and
//! an FP16 tail buffer holding the last, partial block of V (Requantization
//! Elimination). Both optimizations can be disabled through
//! [`hack_quant::HackConfig`] for the ablation study (§7.4).

pub mod baseline;
pub mod dequant_path;
pub mod flash;
pub mod prefill;
pub mod state;

pub use baseline::{baseline_attention, fp16_attention, AttentionMask};
pub use dequant_path::dequant_quantized_attention;
pub use flash::flash_attention;
pub use prefill::{hack_prefill_attention, PrefillOutput};
pub use state::{DecodeStepStats, HackKvState};
