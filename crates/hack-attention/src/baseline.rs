//! Dense FP32 / FP16 attention: the reference every other kernel is validated against
//! and the compute path of the disaggregated-inference baseline.

use hack_tensor::matmul::matmul;
use hack_tensor::matmul::matmul_transposed_b;
use hack_tensor::softmax::{causal_softmax_rows, softmax_rows};
use hack_tensor::Matrix;

/// Masking mode of the attention kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttentionMask {
    /// Causal (autoregressive) masking: query `i` may only attend to keys `0..=i+offset`
    /// where `offset = L_KV - L_Q`. This is the mask used in both prefill and decode.
    #[default]
    Causal,
    /// No masking: every query attends to every key.
    None,
}

/// Single-head scaled dot-product attention in FP32 (Eq. 2 of the paper).
///
/// * `q`: `L_Q × d_h`
/// * `k`: `L_KV × d_h`
/// * `v`: `L_KV × d_h`
///
/// Returns the `L_Q × d_h` output.
pub fn baseline_attention(q: &Matrix, k: &Matrix, v: &Matrix, mask: AttentionMask) -> Matrix {
    validate_shapes(q, k, v);
    let d_h = q.cols();
    let scale = 1.0 / (d_h as f32).sqrt();
    let scores = matmul_transposed_b(q, k).scale(scale);
    let probs = match mask {
        AttentionMask::Causal => {
            let offset = k.rows() - q.rows();
            causal_softmax_rows(&scores, offset)
        }
        AttentionMask::None => softmax_rows(&scores),
    };
    matmul(&probs, v)
}

/// Single-head attention with every intermediate tensor rounded to FP16 storage
/// precision, modelling the baseline's FP16 pipeline.
pub fn fp16_attention(q: &Matrix, k: &Matrix, v: &Matrix, mask: AttentionMask) -> Matrix {
    validate_shapes(q, k, v);
    let q16 = q.to_f16_precision();
    let k16 = k.to_f16_precision();
    let v16 = v.to_f16_precision();
    let d_h = q.cols();
    let scale = 1.0 / (d_h as f32).sqrt();
    let scores = matmul_transposed_b(&q16, &k16)
        .scale(scale)
        .to_f16_precision();
    let probs = match mask {
        AttentionMask::Causal => {
            let offset = k.rows() - q.rows();
            causal_softmax_rows(&scores, offset)
        }
        AttentionMask::None => softmax_rows(&scores),
    }
    .to_f16_precision();
    matmul(&probs, &v16).to_f16_precision()
}

fn validate_shapes(q: &Matrix, k: &Matrix, v: &Matrix) {
    assert_eq!(q.cols(), k.cols(), "Q and K must share the head dimension");
    assert_eq!(
        k.rows(),
        v.rows(),
        "K and V must have the same number of tokens"
    );
    assert!(
        k.rows() >= q.rows(),
        "the KV sequence ({}) must be at least as long as the query sequence ({})",
        k.rows(),
        q.rows()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_tensor::{cosine_similarity, relative_frobenius_error, DetRng};

    fn random_qkv(l_q: usize, l_kv: usize, d_h: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = DetRng::new(seed);
        let q = Matrix::random_normal(l_q, d_h, 0.0, 1.0, &mut rng);
        let k = Matrix::random_normal(l_kv, d_h, 0.0, 1.0, &mut rng);
        let v = Matrix::random_normal(l_kv, d_h, 0.0, 1.0, &mut rng);
        (q, k, v)
    }

    #[test]
    fn output_shape_matches_query() {
        let (q, k, v) = random_qkv(5, 12, 16, 1);
        let o = baseline_attention(&q, &k, &v, AttentionMask::Causal);
        assert_eq!(o.shape(), (5, 16));
    }

    #[test]
    fn single_token_attends_to_itself() {
        // With one query and one key, the output must equal the value row exactly.
        let (q, k, v) = random_qkv(1, 1, 8, 2);
        let o = baseline_attention(&q, &k, &v, AttentionMask::Causal);
        for c in 0..8 {
            assert!((o.get(0, c) - v.get(0, c)).abs() < 1e-6);
        }
    }

    #[test]
    fn uniform_scores_average_values() {
        // Zero queries make all scores equal, so (unmasked) attention averages V rows.
        let d_h = 4;
        let q = Matrix::zeros(1, d_h);
        let k = Matrix::from_fn(3, d_h, |r, c| (r * d_h + c) as f32);
        let v = Matrix::from_fn(3, d_h, |r, _| r as f32);
        let o = baseline_attention(&q, &k, &v, AttentionMask::None);
        for c in 0..d_h {
            assert!((o.get(0, c) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn causal_mask_ignores_future_values() {
        // Make future value rows enormous; causal attention must not see them.
        let d_h = 8;
        let mut rng = DetRng::new(3);
        let q = Matrix::random_normal(2, d_h, 0.0, 1.0, &mut rng);
        let k = Matrix::random_normal(4, d_h, 0.0, 1.0, &mut rng);
        let mut v = Matrix::random_normal(4, d_h, 0.0, 1.0, &mut rng);
        // Queries are rows 0..2 mapped to key positions 2..4 (offset 2); row 3 is
        // visible only to query 1.
        for c in 0..d_h {
            v.set(3, c, 1e6);
        }
        let o = baseline_attention(&q, &k, &v, AttentionMask::Causal);
        // Query 0 must not be contaminated by the 1e6 row.
        assert!(o.row(0).iter().all(|&x| x.abs() < 1e3));
        // Query 1 sees it.
        assert!(o.row(1).iter().any(|&x| x.abs() > 1e3));
    }

    #[test]
    fn decode_shape_one_query_row() {
        let (q, k, v) = random_qkv(1, 100, 64, 4);
        let o = baseline_attention(&q, &k, &v, AttentionMask::Causal);
        assert_eq!(o.shape(), (1, 64));
        assert!(o.all_finite());
    }

    #[test]
    fn fp16_close_to_fp32() {
        let (q, k, v) = random_qkv(8, 64, 64, 5);
        let full = baseline_attention(&q, &k, &v, AttentionMask::Causal);
        let half = fp16_attention(&q, &k, &v, AttentionMask::Causal);
        let err = relative_frobenius_error(&full, &half);
        assert!(err < 5e-3, "fp16 error {err}");
        assert!(cosine_similarity(&full, &half) > 0.9999);
    }

    #[test]
    fn output_rows_are_convex_combinations_of_values() {
        // Every output element must lie within the [min, max] of its value column.
        let (q, k, v) = random_qkv(3, 10, 6, 6);
        let o = baseline_attention(&q, &k, &v, AttentionMask::None);
        for c in 0..6 {
            let (mn, mx) = v.col_min_max(c, 0, v.rows());
            for r in 0..3 {
                let x = o.get(r, c);
                assert!(
                    x >= mn - 1e-5 && x <= mx + 1e-5,
                    "({r},{c}) = {x} outside [{mn},{mx}]"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "head dimension")]
    fn mismatched_head_dims_panic() {
        let q = Matrix::zeros(1, 8);
        let k = Matrix::zeros(4, 16);
        let v = Matrix::zeros(4, 16);
        baseline_attention(&q, &k, &v, AttentionMask::Causal);
    }

    #[test]
    #[should_panic(expected = "same number of tokens")]
    fn mismatched_kv_lengths_panic() {
        let q = Matrix::zeros(1, 8);
        let k = Matrix::zeros(4, 8);
        let v = Matrix::zeros(5, 8);
        baseline_attention(&q, &k, &v, AttentionMask::Causal);
    }
}
