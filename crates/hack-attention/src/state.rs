//! Per-head HACK KV state and the `attn_decode` kernel (§5.3, §6).
//!
//! [`HackKvState`] is the decode-side data structure holding, for one attention head:
//!
//! * the 2-bit quantized K codes, partitioned along the **head** dimension — every new
//!   token's K forms fresh partitions, so existing metadata never changes;
//! * the 2-bit quantized V codes, partitioned along the **sequence** dimension —
//!   together with per-partition `min`/`scale` metadata and per-partition code sums
//!   (Summation Elimination);
//! * the FP16 tail buffer holding the last, partial block of V (Requantization
//!   Elimination): new tokens are accumulated here in FP16 and only quantized once a
//!   full partition of Π tokens is available, so older codes are never requantized and
//!   no extra quantization error accumulates (Fig. 8).
//!
//! Both optimizations can be switched off via [`HackConfig`] to reproduce the HACK/SE
//! and HACK/RQE ablations.

use hack_quant::qmatrix::AppendStats;
use hack_quant::{homomorphic::homomorphic_matmul_counted, HackConfig, QuantizedTensor};
use hack_tensor::matmul::matmul;
use hack_tensor::softmax::softmax_slice_inplace;
use hack_tensor::{DetRng, Matrix};

/// Operation statistics of one decode attention step, used by the analytical cost model
/// cross-checks and the ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStepStats {
    /// Integer multiply-accumulates executed on quantized codes.
    pub int_mac_ops: usize,
    /// Floating-point operations spent on the Eq. 4 approximation.
    pub approx_ops: usize,
    /// Operations spent recomputing partition sums (non-zero only without SE).
    pub sum_recompute_ops: usize,
    /// FP16 multiply-accumulates spent on the unquantized V tail (RQE path).
    pub tail_fp_ops: usize,
    /// Elements requantized while appending (non-zero only without RQE).
    pub requantized_elements: usize,
}

/// Decode-side quantized KV state for a single attention head.
#[derive(Debug, Clone)]
pub struct HackKvState {
    cfg: HackConfig,
    head_dim: usize,
    /// Quantized K: `tokens × head_dim`, partitioned along the head dimension.
    k: QuantizedTensor,
    /// Quantized V: `head_dim × quantized_tokens`, partitioned along the sequence
    /// dimension (stores Vᵀ).
    v: QuantizedTensor,
    /// FP16 tail of V: `tail_tokens × head_dim`, token-major, `tail_tokens < Π`.
    v_tail: Matrix,
    /// Cumulative append statistics.
    append_stats: AppendStats,
}

impl HackKvState {
    /// Builds the state from the prefill-stage K and V (`L × d_h` each).
    ///
    /// With Requantization Elimination, only whole partitions of V are quantized; the
    /// remaining `L mod Π` tokens stay in the FP16 tail. Without it, all of V is
    /// quantized immediately (and will be requantized as tokens arrive).
    pub fn from_prefill(k: &Matrix, v: &Matrix, cfg: HackConfig, rng: &mut DetRng) -> Self {
        assert_eq!(k.shape(), v.shape(), "K and V must have identical shapes");
        let (tokens, head_dim) = k.shape();
        let pi = cfg.partition.get();
        let k_q = QuantizedTensor::quantize_rows(k, cfg.kv_bits, pi, cfg.rounding, rng);

        let (v_q, v_tail) = if cfg.requant_elimination {
            let quantized_tokens = (tokens / pi) * pi;
            let head = v.row_block(0, quantized_tokens);
            let tail = v.row_block(quantized_tokens, tokens).to_f16_precision();
            let v_q = if quantized_tokens > 0 {
                QuantizedTensor::quantize_cols(&head, cfg.kv_bits, pi, cfg.rounding, rng)
            } else {
                QuantizedTensor::empty(head_dim, cfg.kv_bits, pi)
            };
            (v_q, tail)
        } else {
            (
                QuantizedTensor::quantize_cols(v, cfg.kv_bits, pi, cfg.rounding, rng),
                Matrix::zeros(0, head_dim),
            )
        };

        Self {
            cfg,
            head_dim,
            k: k_q,
            v: v_q,
            v_tail,
            append_stats: AppendStats::default(),
        }
    }

    /// Creates an empty state (no prefill), e.g. for unit tests.
    pub fn empty(head_dim: usize, cfg: HackConfig) -> Self {
        let pi = cfg.partition.get();
        Self {
            cfg,
            head_dim,
            k: QuantizedTensor::empty(0, cfg.kv_bits, pi).with_cols(head_dim),
            v: QuantizedTensor::empty(head_dim, cfg.kv_bits, pi),
            v_tail: Matrix::zeros(0, head_dim),
            append_stats: AppendStats::default(),
        }
    }

    /// The configuration this state was built with.
    pub fn config(&self) -> HackConfig {
        self.cfg
    }

    /// Head dimension `d_h`.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Total number of tokens represented (quantized + FP16 tail).
    pub fn seq_len(&self) -> usize {
        self.k.rows()
    }

    /// Number of V tokens currently held in quantized form.
    pub fn quantized_tokens(&self) -> usize {
        self.v.cols()
    }

    /// Number of V tokens currently held in the FP16 tail buffer.
    pub fn tail_tokens(&self) -> usize {
        self.v_tail.rows()
    }

    /// Cumulative append statistics (requantized elements are non-zero only when RQE is
    /// disabled).
    pub fn append_stats(&self) -> AppendStats {
        self.append_stats
    }

    /// Read access to the quantized K tensor (used by the transport layer).
    pub fn k_quant(&self) -> &QuantizedTensor {
        &self.k
    }

    /// Read access to the quantized V tensor (used by the transport layer).
    pub fn v_quant(&self) -> &QuantizedTensor {
        &self.v
    }

    /// Read access to the FP16 V tail (used by the transport layer).
    pub fn v_tail(&self) -> &Matrix {
        &self.v_tail
    }

    /// Rebuilds a state from its transported parts.
    pub fn from_parts(
        cfg: HackConfig,
        head_dim: usize,
        k: QuantizedTensor,
        v: QuantizedTensor,
        v_tail: Matrix,
    ) -> Self {
        assert_eq!(k.cols(), head_dim, "K layout must be tokens × head_dim");
        assert_eq!(v.rows(), head_dim, "V layout must be head_dim × tokens");
        assert_eq!(
            v_tail.cols(),
            head_dim,
            "V tail layout must be tokens × head_dim"
        );
        assert_eq!(
            k.rows(),
            v.cols() + v_tail.rows(),
            "token counts of K and V (+tail) must agree"
        );
        Self {
            cfg,
            head_dim,
            k,
            v,
            v_tail,
            append_stats: AppendStats::default(),
        }
    }

    /// Appends one token's K and V vectors (step 9 in Fig. 5).
    ///
    /// Returns the append statistics of this step (requantized elements are non-zero
    /// only when RQE is disabled).
    pub fn append_token(&mut self, k_row: &[f32], v_row: &[f32], rng: &mut DetRng) -> AppendStats {
        assert_eq!(k_row.len(), self.head_dim, "K vector length mismatch");
        assert_eq!(v_row.len(), self.head_dim, "V vector length mismatch");
        let mut stats = AppendStats::default();

        // K: the new token's vector forms its own partitions along the head dimension.
        let k_new = Matrix::from_vec(1, self.head_dim, k_row.to_vec());
        stats = stats.merge(self.k.append_rows(&k_new, self.cfg.rounding, rng));

        if self.cfg.requant_elimination {
            // V: accumulate in the FP16 tail; flush a full partition when it fills up.
            let mut fp16_row = v_row.to_vec();
            hack_tensor::half::round_slice_to_f16(&mut fp16_row);
            self.v_tail.push_row(&fp16_row);
            if self.v_tail.rows() == self.cfg.partition.get() {
                let block = self.v_tail.transpose(); // head_dim × Π
                stats = stats.merge(self.v.append_full_partition(&block, self.cfg.rounding, rng));
                self.v_tail = Matrix::zeros(0, self.head_dim);
            }
        } else {
            // V: append a single column, requantizing the partial last partition.
            let column = Matrix::from_vec(self.head_dim, 1, v_row.to_vec());
            stats = stats.merge(self.v.append_columns(&column, self.cfg.rounding, rng));
        }

        self.append_stats = self.append_stats.merge(stats);
        stats
    }

    /// The `attn_decode` kernel: single-query attention over the quantized KV state.
    ///
    /// The caller must have already appended the current token's K/V (the paper merges
    /// the new token's K'/V' before the attention computation). Returns the `d_h`-long
    /// output vector and the operation statistics of the step.
    pub fn decode_attention(&self, q_row: &[f32], rng: &mut DetRng) -> (Vec<f32>, DecodeStepStats) {
        assert_eq!(q_row.len(), self.head_dim, "query vector length mismatch");
        let l_kv = self.seq_len();
        assert!(l_kv > 0, "decode_attention on an empty KV state");
        let pi = self.cfg.partition.get();
        let mut stats = DecodeStepStats {
            requantized_elements: 0,
            ..Default::default()
        };

        // 1. Quantize Q (INT8) and compute the attention scores homomorphically.
        let q_m = Matrix::from_vec(1, self.head_dim, q_row.to_vec());
        let q_q = QuantizedTensor::quantize_rows(&q_m, self.cfg.q_bits, pi, self.cfg.rounding, rng);
        let (scores, score_counts) =
            homomorphic_matmul_counted(&q_q, &self.k, self.cfg.summation_elimination);
        stats.int_mac_ops += score_counts.int_mac_ops;
        stats.approx_ops += score_counts.approx_ops;
        stats.sum_recompute_ops += score_counts.sum_recompute_ops;

        // 2. Softmax over the scaled scores.
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut p: Vec<f32> = scores.row(0).iter().map(|s| s * scale).collect();
        softmax_slice_inplace(&mut p);

        // 3. P·V: homomorphic product over the quantized tokens plus an FP16 product
        //    over the tail.
        let quantized_tokens = self.quantized_tokens();
        let mut out = vec![0.0f32; self.head_dim];
        if quantized_tokens > 0 {
            let p_main = Matrix::from_vec(1, quantized_tokens, p[..quantized_tokens].to_vec());
            let p_q = QuantizedTensor::quantize_rows(
                &p_main,
                self.cfg.p_bits,
                pi,
                self.cfg.rounding,
                rng,
            );
            let (o_main, pv_counts) =
                homomorphic_matmul_counted(&p_q, &self.v, self.cfg.summation_elimination);
            stats.int_mac_ops += pv_counts.int_mac_ops;
            stats.approx_ops += pv_counts.approx_ops;
            stats.sum_recompute_ops += pv_counts.sum_recompute_ops;
            for (o, m) in out.iter_mut().zip(o_main.row(0)) {
                *o += m;
            }
        }
        let tail_tokens = self.tail_tokens();
        if tail_tokens > 0 {
            let p_tail = Matrix::from_vec(1, tail_tokens, p[quantized_tokens..].to_vec());
            let o_tail = matmul(&p_tail, &self.v_tail);
            stats.tail_fp_ops += 2 * tail_tokens * self.head_dim;
            for (o, t) in out.iter_mut().zip(o_tail.row(0)) {
                *o += t;
            }
        }

        (out, stats)
    }

    /// Convenience wrapper: append the current token's K/V, then run decode attention
    /// with its query (one full decode iteration for this head).
    pub fn decode_step(
        &mut self,
        q_row: &[f32],
        k_row: &[f32],
        v_row: &[f32],
        rng: &mut DetRng,
    ) -> (Vec<f32>, DecodeStepStats) {
        let append = self.append_token(k_row, v_row, rng);
        let (out, mut stats) = self.decode_attention(q_row, rng);
        stats.requantized_elements = append.requantized_elements;
        (out, stats)
    }

    /// Total bytes of this head's KV state: packed quantized codes, metadata, partition
    /// sums (when SE is enabled) and the FP16 tail (when RQE is enabled).
    pub fn kv_bytes(&self) -> usize {
        let sums = self.cfg.summation_elimination;
        self.k.total_bytes(sums) + self.v.total_bytes(sums) + 2 * self.v_tail.len()
    }

    /// Bytes the same KV state would occupy in plain FP16.
    pub fn fp16_bytes(&self) -> usize {
        2 * 2 * self.seq_len() * self.head_dim
    }
}

/// Small extension used by [`HackKvState::empty`]: an empty tensor still needs to know
/// its vector length so that later appends validate correctly.
trait WithCols {
    fn with_cols(self, cols: usize) -> QuantizedTensor;
}

impl WithCols for QuantizedTensor {
    fn with_cols(self, cols: usize) -> QuantizedTensor {
        QuantizedTensor::from_parts(
            0,
            cols,
            self.bits(),
            self.partition(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{baseline_attention, AttentionMask};
    use hack_quant::params::RoundingMode;
    use hack_tensor::cosine_similarity;

    fn structured_kv(tokens: usize, d_h: usize, seed: u64) -> (Matrix, Matrix) {
        // Keys/values with per-channel offsets and modest noise, closer to real KV
        // distributions than i.i.d. Gaussians.
        let mut rng = DetRng::new(seed);
        let k = Matrix::from_fn(tokens, d_h, |t, c| {
            let base = ((c % 7) as f32 - 3.0) * 0.4;
            base + 0.3 * rng.normal_f32(0.0, 1.0) + 0.05 * (t as f32 * 0.01).sin()
        });
        let v = Matrix::from_fn(tokens, d_h, |t, c| {
            let base = ((c % 5) as f32 - 2.0) * 0.5;
            base + 0.3 * rng.normal_f32(0.0, 1.0) + 0.02 * (t as f32 * 0.02).cos()
        });
        (k, v)
    }

    fn cos_vec(a: &[f32], b: &[f32]) -> f32 {
        let am = Matrix::from_vec(1, a.len(), a.to_vec());
        let bm = Matrix::from_vec(1, b.len(), b.to_vec());
        cosine_similarity(&am, &bm)
    }

    #[test]
    fn from_prefill_splits_v_into_quantized_and_tail() {
        let mut rng = DetRng::new(1);
        let (k, v) = structured_kv(150, 64, 2);
        let state = HackKvState::from_prefill(&k, &v, HackConfig::paper_default(), &mut rng);
        assert_eq!(state.seq_len(), 150);
        assert_eq!(state.quantized_tokens(), 128); // 2 full Π=64 partitions
        assert_eq!(state.tail_tokens(), 22);
    }

    #[test]
    fn from_prefill_without_rqe_quantizes_everything() {
        let mut rng = DetRng::new(2);
        let (k, v) = structured_kv(150, 64, 3);
        let state =
            HackKvState::from_prefill(&k, &v, HackConfig::without_requant_elimination(), &mut rng);
        assert_eq!(state.quantized_tokens(), 150);
        assert_eq!(state.tail_tokens(), 0);
    }

    #[test]
    fn append_token_grows_state_and_flushes_tail() {
        let mut rng = DetRng::new(3);
        let (k, v) = structured_kv(60, 32, 4);
        let cfg = HackConfig::paper_default(); // Π = 64
        let mut state = HackKvState::from_prefill(&k, &v, cfg, &mut rng);
        assert_eq!(state.quantized_tokens(), 0);
        assert_eq!(state.tail_tokens(), 60);
        // Append 4 tokens: at 64 the tail flushes into a quantized partition.
        for i in 0..4 {
            let krow = vec![0.1 * i as f32; 32];
            let vrow = vec![0.2 * i as f32; 32];
            let stats = state.append_token(&krow, &vrow, &mut rng);
            assert_eq!(stats.requantized_elements, 0, "RQE must never requantize");
        }
        assert_eq!(state.seq_len(), 64);
        assert_eq!(state.quantized_tokens(), 64);
        assert_eq!(state.tail_tokens(), 0);
        // One more token starts a fresh tail.
        state.append_token(&[0.0; 32], &[0.0; 32], &mut rng);
        assert_eq!(state.tail_tokens(), 1);
        assert_eq!(state.seq_len(), 65);
    }

    #[test]
    fn append_without_rqe_requantizes_last_block() {
        let mut rng = DetRng::new(4);
        let (k, v) = structured_kv(70, 32, 5);
        let mut state =
            HackKvState::from_prefill(&k, &v, HackConfig::without_requant_elimination(), &mut rng);
        let stats = state.append_token(&[0.5; 32], &[0.9; 32], &mut rng);
        // 70 tokens with Π=64 leaves 6 tokens in the partial partition, all of which
        // must be requantized across the 32 channels.
        assert_eq!(stats.requantized_elements, 6 * 32);
        assert_eq!(state.quantized_tokens(), 71);
    }

    #[test]
    fn decode_attention_tracks_baseline() {
        let mut rng = DetRng::new(5);
        let d_h = 64;
        let (k, v) = structured_kv(200, d_h, 6);
        let state = HackKvState::from_prefill(&k, &v, HackConfig::paper_default(), &mut rng);
        let q: Vec<f32> = (0..d_h).map(|i| ((i % 11) as f32 - 5.0) * 0.2).collect();
        let (out, stats) = state.decode_attention(&q, &mut rng);

        let q_m = Matrix::from_vec(1, d_h, q.clone());
        let expect = baseline_attention(&q_m, &k, &v, AttentionMask::Causal);
        let cos = cos_vec(&out, expect.row(0));
        assert!(cos > 0.95, "decode output cosine similarity {cos}");
        assert!(stats.int_mac_ops > 0);
        assert_eq!(
            stats.sum_recompute_ops, 0,
            "SE must avoid sum recomputation"
        );
        assert!(
            stats.tail_fp_ops > 0,
            "tail of 200-64*3=8 tokens should use FP16 path"
        );
    }

    #[test]
    fn se_ablation_recomputes_sums_but_matches_output() {
        let mut rng_a = DetRng::new(7);
        let mut rng_b = DetRng::new(7);
        let d_h = 64;
        let (k, v) = structured_kv(128, d_h, 8);
        let se = HackKvState::from_prefill(&k, &v, HackConfig::paper_default(), &mut rng_a);
        let no_se = HackKvState::from_prefill(
            &k,
            &v,
            HackConfig::without_summation_elimination(),
            &mut rng_b,
        );
        let q = vec![0.3; d_h];
        let mut rng_a2 = DetRng::new(99);
        let mut rng_b2 = DetRng::new(99);
        let (out_se, stats_se) = se.decode_attention(&q, &mut rng_a2);
        let (out_no_se, stats_no_se) = no_se.decode_attention(&q, &mut rng_b2);
        assert_eq!(stats_se.sum_recompute_ops, 0);
        assert!(stats_no_se.sum_recompute_ops > 0);
        // Identical quantized data + identical RNG stream => identical outputs.
        assert_eq!(out_se, out_no_se);
    }

    #[test]
    fn rqe_and_no_rqe_outputs_agree_closely() {
        let d_h = 64;
        let (k, v) = structured_kv(100, d_h, 9);
        let mut rng_a = DetRng::new(10);
        let mut rng_b = DetRng::new(10);
        let rqe = HackKvState::from_prefill(&k, &v, HackConfig::paper_default(), &mut rng_a);
        let no_rqe = HackKvState::from_prefill(
            &k,
            &v,
            HackConfig::without_requant_elimination(),
            &mut rng_b,
        );
        let q: Vec<f32> = (0..d_h).map(|i| (i as f32 * 0.02).sin()).collect();
        let mut rng_a2 = DetRng::new(20);
        let mut rng_b2 = DetRng::new(20);
        let (out_rqe, _) = rqe.decode_attention(&q, &mut rng_a2);
        let (out_no_rqe, _) = no_rqe.decode_attention(&q, &mut rng_b2);
        let cos = cos_vec(&out_rqe, &out_no_rqe);
        assert!(cos > 0.98, "RQE vs no-RQE cosine {cos}");
    }

    #[test]
    fn incremental_decode_matches_full_prefill_state() {
        // Appending tokens one by one must leave the K tensor identical to quantizing
        // the whole K matrix at once (nearest rounding, shared RNG irrelevant).
        let d_h = 32;
        let total = 130;
        let (k, v) = structured_kv(total, d_h, 11);
        let cfg = HackConfig {
            rounding: RoundingMode::Nearest,
            ..HackConfig::paper_default()
        };
        let mut rng = DetRng::new(12);
        let head_k = k.row_block(0, 64);
        let head_v = v.row_block(0, 64);
        let mut state = HackKvState::from_prefill(&head_k, &head_v, cfg, &mut rng);
        for t in 64..total {
            state.append_token(k.row(t), v.row(t), &mut rng);
        }
        assert_eq!(state.seq_len(), total);
        let mut rng2 = DetRng::new(13);
        let full_state = HackKvState::from_prefill(&k, &v, cfg, &mut rng2);
        assert_eq!(state.k_quant().codes(), full_state.k_quant().codes());
        assert_eq!(state.quantized_tokens(), full_state.quantized_tokens());
        assert!(state.k_quant().sums_consistent());
        assert!(state.v_quant().sums_consistent());
    }

    #[test]
    fn decode_step_appends_then_attends() {
        let d_h = 32;
        let (k, v) = structured_kv(80, d_h, 14);
        let mut rng = DetRng::new(15);
        let mut state = HackKvState::from_prefill(&k, &v, HackConfig::paper_default(), &mut rng);
        let q = vec![0.1; d_h];
        let k_new = vec![0.2; d_h];
        let v_new = vec![0.3; d_h];
        let (out, _) = state.decode_step(&q, &k_new, &v_new, &mut rng);
        assert_eq!(state.seq_len(), 81);
        assert_eq!(out.len(), d_h);
    }

    #[test]
    fn memory_accounting_reports_compression() {
        let d_h = 128;
        let (k, v) = structured_kv(1024, d_h, 16);
        let mut rng = DetRng::new(17);
        let state = HackKvState::from_prefill(&k, &v, HackConfig::paper_default(), &mut rng);
        let q_bytes = state.kv_bytes();
        let f_bytes = state.fp16_bytes();
        let ratio = 1.0 - q_bytes as f64 / f_bytes as f64;
        assert!(ratio > 0.8, "compression ratio {ratio}");
    }

    #[test]
    fn from_parts_validates_token_counts() {
        let d_h = 32;
        let (k, v) = structured_kv(64, d_h, 18);
        let mut rng = DetRng::new(19);
        let state = HackKvState::from_prefill(&k, &v, HackConfig::paper_default(), &mut rng);
        let rebuilt = HackKvState::from_parts(
            state.config(),
            d_h,
            state.k_quant().clone(),
            state.v_quant().clone(),
            state.v_tail().clone(),
        );
        assert_eq!(rebuilt.seq_len(), 64);
    }

    #[test]
    #[should_panic(expected = "token counts")]
    fn from_parts_rejects_inconsistent_counts() {
        let d_h = 32;
        let (k, v) = structured_kv(64, d_h, 20);
        let mut rng = DetRng::new(21);
        let state = HackKvState::from_prefill(&k, &v, HackConfig::paper_default(), &mut rng);
        HackKvState::from_parts(
            state.config(),
            d_h,
            state.k_quant().clone(),
            state.v_quant().clone(),
            Matrix::zeros(3, d_h), // wrong tail length
        );
    }

    #[test]
    #[should_panic(expected = "empty KV state")]
    fn decode_on_empty_state_panics() {
        let cfg = HackConfig::paper_default();
        let state = HackKvState::empty(16, cfg);
        let mut rng = DetRng::new(22);
        state.decode_attention(&[0.0; 16], &mut rng);
    }
}
