//! The `attn_prefill` kernel: fused QKV quantization + homomorphic self-attention for
//! the prefill stage (Fig. 5, steps 2–4, and §6).
//!
//! The prefill instance quantizes Q (INT8), K and V (INT2), computes the attention
//! scores with the homomorphic product `Q'·K'ᵀ`, applies the causal softmax, quantizes
//! the probabilities P (INT8) and computes the output with the homomorphic product
//! `P'·V'`. The quantized K'/V' (plus metadata) are exactly what is later transferred
//! to the decode instance, so the kernel also returns the ready-to-ship
//! [`HackKvState`].

use crate::state::HackKvState;
use hack_quant::cost::HomomorphicOpCounts;
use hack_quant::homomorphic::homomorphic_matmul_counted;
use hack_quant::{HackConfig, QuantizedTensor};
use hack_tensor::softmax::causal_softmax_rows;
use hack_tensor::{DetRng, Matrix};

/// Result of the prefill attention kernel for one head.
#[derive(Debug, Clone)]
pub struct PrefillOutput {
    /// Self-attention output, `L × d_h`.
    pub output: Matrix,
    /// Decode-ready quantized KV state (what gets transferred to the decode instance).
    pub state: HackKvState,
    /// Operation counts of the `Q'·K'ᵀ` product.
    pub qk_counts: HomomorphicOpCounts,
    /// Operation counts of the `P'·V'` product.
    pub pv_counts: HomomorphicOpCounts,
}

/// Runs HACK prefill self-attention for a single head.
///
/// * `q`, `k`, `v`: `L × d_h` (the prompt's projections for this head).
pub fn hack_prefill_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: HackConfig,
    rng: &mut DetRng,
) -> PrefillOutput {
    assert_eq!(
        q.shape(),
        k.shape(),
        "Q and K must have identical shapes in prefill"
    );
    assert_eq!(
        k.shape(),
        v.shape(),
        "K and V must have identical shapes in prefill"
    );
    let (l, d_h) = q.shape();
    assert!(l > 0, "prefill requires at least one token");
    let pi = cfg.partition.get();

    // Step 2: quantize Q (INT8, partitions along the head dimension) and K (INT2).
    let q_q = QuantizedTensor::quantize_rows(q, cfg.q_bits, pi, cfg.rounding, rng);
    let k_q = QuantizedTensor::quantize_rows(k, cfg.kv_bits, pi, cfg.rounding, rng);

    // Step 3: homomorphic Q'·K'ᵀ, scaled.
    let (scores_raw, qk_counts) = homomorphic_matmul_counted(&q_q, &k_q, cfg.summation_elimination);
    let scale = 1.0 / (d_h as f32).sqrt();
    let scores = scores_raw.scale(scale);

    // Step 4: causal softmax (prefill has L_Q == L_KV).
    let probs = causal_softmax_rows(&scores, 0);

    // Step 2 again: quantize P (INT8, partitions along the sequence dimension) and V
    // (INT2, partitions along the sequence dimension).
    let p_q = QuantizedTensor::quantize_rows(&probs, cfg.p_bits, pi, cfg.rounding, rng);
    let v_q = QuantizedTensor::quantize_cols(v, cfg.kv_bits, pi, cfg.rounding, rng);

    // Step 3 again: homomorphic P'·V'.
    let (output, pv_counts) = homomorphic_matmul_counted(&p_q, &v_q, cfg.summation_elimination);

    // Build the decode-ready KV state (honouring RQE for the trailing partial block).
    let state = HackKvState::from_prefill(k, v, cfg, rng);

    PrefillOutput {
        output,
        state,
        qk_counts,
        pv_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{baseline_attention, AttentionMask};
    use hack_tensor::{cosine_similarity, relative_frobenius_error};

    fn structured_qkv(tokens: usize, d_h: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = DetRng::new(seed);
        let gen = |rng: &mut DetRng, spread: f32| {
            Matrix::from_fn(tokens, d_h, |t, c| {
                let base = ((c % 9) as f32 - 4.0) * spread;
                base + 0.3 * rng.normal_f32(0.0, 1.0) + 0.1 * ((t + c) as f32 * 0.01).sin()
            })
        };
        let q = gen(&mut rng, 0.3);
        let k = gen(&mut rng, 0.35);
        let v = gen(&mut rng, 0.4);
        (q, k, v)
    }

    #[test]
    fn prefill_output_tracks_baseline() {
        let (q, k, v) = structured_qkv(192, 64, 1);
        let mut rng = DetRng::new(2);
        let out = hack_prefill_attention(&q, &k, &v, HackConfig::paper_default(), &mut rng);
        let expect = baseline_attention(&q, &k, &v, AttentionMask::Causal);
        let cos = cosine_similarity(&expect, &out.output);
        assert!(cos > 0.95, "prefill cosine similarity {cos}");
        assert_eq!(out.output.shape(), (192, 64));
    }

    #[test]
    fn finer_partition_is_more_accurate() {
        let (q, k, v) = structured_qkv(256, 64, 3);
        let expect = baseline_attention(&q, &k, &v, AttentionMask::Causal);
        let mut rng_a = DetRng::new(4);
        let mut rng_b = DetRng::new(4);
        let fine = hack_prefill_attention(&q, &k, &v, HackConfig::with_partition(32), &mut rng_a);
        let coarse =
            hack_prefill_attention(&q, &k, &v, HackConfig::with_partition(128), &mut rng_b);
        let e_fine = relative_frobenius_error(&expect, &fine.output);
        let e_coarse = relative_frobenius_error(&expect, &coarse.output);
        assert!(
            e_fine < e_coarse * 1.05,
            "Π=32 error {e_fine} should not exceed Π=128 error {e_coarse}"
        );
    }

    #[test]
    fn returned_state_matches_prompt_length() {
        let (q, k, v) = structured_qkv(200, 64, 5);
        let mut rng = DetRng::new(6);
        let out = hack_prefill_attention(&q, &k, &v, HackConfig::paper_default(), &mut rng);
        assert_eq!(out.state.seq_len(), 200);
        assert_eq!(out.state.quantized_tokens(), 192);
        assert_eq!(out.state.tail_tokens(), 8);
    }

    #[test]
    fn op_counts_cover_both_products() {
        let (q, k, v) = structured_qkv(128, 64, 7);
        let mut rng = DetRng::new(8);
        let out = hack_prefill_attention(&q, &k, &v, HackConfig::paper_default(), &mut rng);
        // Q·Kᵀ: M=N=128, Z=64. P·V: M=128, Z=128, N=64.
        assert_eq!(out.qk_counts.int_mac_ops, 128 * 128 * 64);
        assert_eq!(out.pv_counts.int_mac_ops, 128 * 64 * 128);
        assert_eq!(out.qk_counts.sum_recompute_ops, 0);
    }

    #[test]
    fn single_token_prompt_output_is_value_row() {
        let (q, k, v) = structured_qkv(1, 64, 9);
        let mut rng = DetRng::new(10);
        let out = hack_prefill_attention(&q, &k, &v, HackConfig::paper_default(), &mut rng);
        // With one token, P = [1] exactly, so the output is the (quantized) V row; the
        // only error comes from V's 2-bit quantization.
        let cos = cosine_similarity(&out.output, &v);
        assert!(cos > 0.9, "single-token cosine {cos}");
    }

    #[test]
    fn causal_structure_is_respected() {
        // Token 0's output must not depend on later tokens: computing prefill on the
        // first token alone and on the full prompt must give similar row 0.
        let (q, k, v) = structured_qkv(64, 32, 11);
        let mut rng_a = DetRng::new(12);
        let mut rng_b = DetRng::new(12);
        let cfg = HackConfig::paper_default();
        let full = hack_prefill_attention(&q, &k, &v, cfg, &mut rng_a);
        let first = hack_prefill_attention(
            &q.row_block(0, 1),
            &k.row_block(0, 1),
            &v.row_block(0, 1),
            cfg,
            &mut rng_b,
        );
        let row_full = Matrix::from_vec(1, 32, full.output.row(0).to_vec());
        let row_first = Matrix::from_vec(1, 32, first.output.row(0).to_vec());
        let cos = cosine_similarity(&row_full, &row_first);
        assert!(cos > 0.9, "causal first-row cosine {cos}");
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn empty_prompt_panics() {
        let q = Matrix::zeros(0, 64);
        let k = Matrix::zeros(0, 64);
        let v = Matrix::zeros(0, 64);
        let mut rng = DetRng::new(13);
        hack_prefill_attention(&q, &k, &v, HackConfig::paper_default(), &mut rng);
    }
}
