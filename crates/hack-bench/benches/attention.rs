//! Criterion benchmarks of the attention kernels: FP32 baseline, FlashAttention-2-style
//! tiled kernel, HACK prefill, and the HACK decode step with its SE/RQE ablations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hack_attention::baseline::AttentionMask;
use hack_attention::flash::flash_attention;
use hack_core::prelude::*;
use std::hint::black_box;

fn qkv(tokens: usize, d_h: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = DetRng::new(seed);
    (
        Matrix::random_normal(tokens, d_h, 0.0, 1.0, &mut rng),
        Matrix::random_normal(tokens, d_h, 0.0, 1.0, &mut rng),
        Matrix::random_normal(tokens, d_h, 0.0, 1.0, &mut rng),
    )
}

fn bench_prefill_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefill_attention_256x64");
    let (q, k, v) = qkv(256, 64, 1);
    group.bench_function("baseline_fp32", |b| {
        b.iter(|| black_box(baseline_attention(&q, &k, &v, AttentionMask::Causal)))
    });
    group.bench_function("flash_tiled", |b| {
        b.iter(|| black_box(flash_attention(&q, &k, &v, AttentionMask::Causal, 64)))
    });
    group.bench_function("hack_homomorphic", |b| {
        b.iter(|| {
            let mut rng = DetRng::new(2);
            black_box(hack_prefill_attention(&q, &k, &v, HackConfig::paper_default(), &mut rng))
        })
    });
    group.finish();
}

fn bench_decode_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_step_kv1024_d64");
    let (_, k, v) = qkv(1024, 64, 3);
    let configs = [
        ("hack", HackConfig::paper_default()),
        ("hack_no_se", HackConfig::without_summation_elimination()),
        ("hack_no_rqe", HackConfig::without_requant_elimination()),
    ];
    for (name, cfg) in configs {
        let mut rng = DetRng::new(4);
        let state = HackKvState::from_prefill(&k, &v, cfg, &mut rng);
        let q_row = vec![0.1f32; 64];
        group.bench_with_input(BenchmarkId::from_parameter(name), &state, |b, state| {
            b.iter(|| {
                let mut rng = DetRng::new(5);
                black_box(state.decode_attention(&q_row, &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_append_token(c: &mut Criterion) {
    let mut group = c.benchmark_group("append_token_kv1024_d64");
    let (_, k, v) = qkv(1024, 64, 6);
    for (name, cfg) in [
        ("with_rqe", HackConfig::paper_default()),
        ("without_rqe", HackConfig::without_requant_elimination()),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut rng = DetRng::new(7);
                    (HackKvState::from_prefill(&k, &v, cfg, &mut rng), DetRng::new(8))
                },
                |(mut state, mut rng)| {
                    let row = vec![0.3f32; 64];
                    black_box(state.append_token(&row, &row, &mut rng))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prefill_kernels, bench_decode_step, bench_append_token);
criterion_main!(benches);
