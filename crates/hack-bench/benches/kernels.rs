//! Criterion micro-benchmarks of the quantization and homomorphic-matmul kernels:
//! the per-operation costs behind §5.2/§5.3 (quantized GEMM vs dequantize-then-GEMM,
//! with and without Summation Elimination, across partition sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hack_core::prelude::*;
use hack_quant::homomorphic::{dequant_matmul, homomorphic_matmul, homomorphic_matmul_no_se};
use hack_quant::packing::{pack_codes, unpack_codes};
use hack_quant::params::{QuantBits, RoundingMode};
use std::hint::black_box;

fn decode_shape_tensors(l_kv: usize, partition: usize) -> (QuantizedTensor, QuantizedTensor) {
    let d_h = 128;
    let mut rng = DetRng::new(1);
    let q = Matrix::random_normal(1, d_h, 0.0, 1.0, &mut rng);
    let k = Matrix::random_normal(l_kv, d_h, 0.0, 1.0, &mut rng);
    let qq = QuantizedTensor::quantize_rows(&q, QuantBits::Int8, partition, RoundingMode::Nearest, &mut rng);
    let qk = QuantizedTensor::quantize_rows(&k, QuantBits::Int2, partition, RoundingMode::Nearest, &mut rng);
    (qq, qk)
}

fn bench_quantization(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantize_2bit");
    for &tokens in &[256usize, 1024] {
        let mut rng = DetRng::new(2);
        let m = Matrix::random_normal(tokens, 128, 0.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(tokens), &m, |b, m| {
            b.iter(|| {
                let mut rng = DetRng::new(3);
                black_box(QuantizedTensor::quantize_rows(
                    m,
                    QuantBits::Int2,
                    64,
                    RoundingMode::Stochastic,
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

fn bench_homomorphic_vs_dequant(c: &mut Criterion) {
    let mut group = c.benchmark_group("score_matmul_decode_shape");
    for &l_kv in &[512usize, 2048] {
        let (qq, qk) = decode_shape_tensors(l_kv, 64);
        group.bench_with_input(BenchmarkId::new("homomorphic_se", l_kv), &l_kv, |b, _| {
            b.iter(|| black_box(homomorphic_matmul(&qq, &qk)))
        });
        group.bench_with_input(BenchmarkId::new("homomorphic_no_se", l_kv), &l_kv, |b, _| {
            b.iter(|| black_box(homomorphic_matmul_no_se(&qq, &qk)))
        });
        group.bench_with_input(BenchmarkId::new("dequantize_then_matmul", l_kv), &l_kv, |b, _| {
            b.iter(|| black_box(dequant_matmul(&qq, &qk)))
        });
    }
    group.finish();
}

fn bench_partition_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("homomorphic_matmul_partition_sweep");
    for &partition in &[32usize, 64, 128] {
        let (qq, qk) = decode_shape_tensors(1024, partition);
        group.bench_with_input(BenchmarkId::from_parameter(partition), &partition, |b, _| {
            b.iter(|| black_box(homomorphic_matmul(&qq, &qk)))
        });
    }
    group.finish();
}

fn bench_packing(c: &mut Criterion) {
    let mut rng = DetRng::new(4);
    let codes: Vec<u8> = (0..128 * 1024).map(|_| rng.range_usize(0, 4) as u8).collect();
    c.bench_function("pack_codes_2bit_128k", |b| {
        b.iter(|| black_box(pack_codes(&codes, QuantBits::Int2)))
    });
    let packed = pack_codes(&codes, QuantBits::Int2);
    c.bench_function("unpack_codes_2bit_128k", |b| {
        b.iter(|| black_box(unpack_codes(&packed, QuantBits::Int2, codes.len())))
    });
}

criterion_group!(
    benches,
    bench_quantization,
    bench_homomorphic_vs_dequant,
    bench_partition_sizes,
    bench_packing
);
criterion_main!(benches);
