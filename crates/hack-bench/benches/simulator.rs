//! Criterion benchmarks of the discrete-event cluster simulator itself: one small
//! end-to-end run per method (useful to keep the figure harness runtimes in check).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hack_core::prelude::*;
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_sim_20req_cocktail");
    group.sample_size(10);
    for method in Method::main_comparison() {
        let experiment = JctExperiment {
            num_requests: 20,
            ..JctExperiment::paper_default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &experiment,
            |b, experiment| b.iter(|| black_box(experiment.run(method))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
