//! Criterion benchmarks of the baseline KV codecs (KVQuant-like, CacheGen-like,
//! FP8/FP4 casts): compression and decompression throughput on KV-shaped tensors.

use criterion::{criterion_group, criterion_main, Criterion};
use hack_baselines::{CacheGenLike, Fp8Format, KvCompressor, KvQuantLike, MinifloatCast};
use hack_core::prelude::*;
use std::hint::black_box;

fn kv_matrix(tokens: usize, channels: usize) -> Matrix {
    let mut rng = DetRng::new(1);
    let mut m = Matrix::zeros(tokens, channels);
    for ch in 0..channels {
        let mut value = rng.normal_f32(0.0, 1.0);
        for t in 0..tokens {
            value += rng.normal_f32(0.0, 0.05);
            m.set(t, ch, value + ((ch % 5) as f32 - 2.0) * 0.3);
        }
    }
    m
}

fn bench_codecs(c: &mut Criterion) {
    let m = kv_matrix(512, 128);
    let codecs: Vec<(&str, Box<dyn KvCompressor>)> = vec![
        ("kvquant_2bit", Box::new(KvQuantLike::default())),
        ("cachegen_delta_entropy", Box::new(CacheGenLike::default())),
        ("fp8_e4m3", Box::new(MinifloatCast::fp8(Fp8Format::E4M3))),
        ("fp4_e2m1", Box::new(MinifloatCast::fp4())),
    ];
    let mut group = c.benchmark_group("kv_codec_compress_512x128");
    for (name, codec) in &codecs {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut rng = DetRng::new(2);
                black_box(codec.compress(&m, &mut rng))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("kv_codec_decompress_512x128");
    for (name, codec) in &codecs {
        let mut rng = DetRng::new(3);
        let compressed = codec.compress(&m, &mut rng);
        group.bench_function(*name, |b| b.iter(|| black_box(codec.decompress(&compressed))));
    }
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
