//! Threaded sharding of independent experiment cells.
//!
//! The figure/table binaries evaluate grids of (dataset × method × config)
//! cells that share nothing: each cell builds its own trace from its own seed
//! and runs its own simulator. This module fans those cells out over scoped
//! worker threads (vendored `crossbeam`), pulling work from a shared atomic
//! cursor and merging results back **in cell order**, so output is identical
//! to a sequential run:
//!
//! * determinism — every cell's RNG seed lives in the cell itself
//!   ([`hack_core::JctExperiment::seed`] / the trace seed), never in thread
//!   state, so scheduling cannot change any result;
//! * merge-ordered output — workers report `(index, result)` and the caller
//!   reassembles by index.
//!
//! Worker count defaults to the machine's available parallelism, capped by the
//! cell count; `HACK_BENCH_THREADS` overrides it (`HACK_BENCH_THREADS=1`
//! forces the sequential path).

use hack_core::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads for `cells` independent cells.
pub fn worker_threads(cells: usize) -> usize {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let configured = std::env::var("HACK_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0);
    configured.unwrap_or(available).min(cells).max(1)
}

/// Applies `f` to every cell, sharding across scoped threads, and returns the
/// results in cell order (identical to `cells.iter().enumerate().map(f)`).
pub fn run_sharded<T, R, F>(cells: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = worker_threads(cells.len());
    if threads <= 1 {
        return cells.iter().enumerate().map(|(i, c)| f(i, c)).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded();
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                if tx.send((i, f(i, &cells[i]))).is_err() {
                    panic!("result receiver dropped");
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..cells.len()).map(|_| None).collect();
        while let Ok((i, r)) = rx.recv() {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("worker exited without reporting its cell"))
            .collect()
    })
    .expect("experiment worker thread panicked")
}

/// Runs every method on every cell of a labelled experiment grid, sharding the
/// cells across threads. Returns one `Vec<JctOutcome>` per cell, in grid order.
pub fn run_grid<L: Sync>(grid: &[(L, JctExperiment)], methods: &[Method]) -> Vec<Vec<JctOutcome>> {
    run_sharded(grid, |_, (_, experiment)| experiment.run_all(methods))
}

/// Like [`run_grid`], but first resolves every `rps: None` cell to its
/// **measured** capacity (bisection over simulator runs,
/// [`JctExperiment::with_measured_load`]) instead of the analytic estimate.
/// This is the path the figure/table binaries take; the capacity search runs
/// inside each cell's worker, so it is sharded too.
pub fn run_grid_measured<L: Sync>(
    grid: &[(L, JctExperiment)],
    methods: &[Method],
) -> Vec<Vec<JctOutcome>> {
    run_sharded(grid, |_, (_, experiment)| {
        experiment.with_measured_load().run_all(methods)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_results_are_merge_ordered() {
        let cells: Vec<u64> = (0..23).collect();
        let got = run_sharded(&cells, |i, &c| {
            assert_eq!(i as u64, c);
            c * 3
        });
        let expect: Vec<u64> = cells.iter().map(|c| c * 3).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn parallel_grid_matches_sequential_run() {
        let grid: Vec<(Dataset, JctExperiment)> = [Dataset::Imdb, Dataset::Cocktail]
            .into_iter()
            .map(|d| {
                (
                    d,
                    JctExperiment {
                        num_requests: 10,
                        ..JctExperiment::new(ModelKind::Llama31_70B, GpuKind::A10G, d)
                    },
                )
            })
            .collect();
        let methods = [Method::Baseline, Method::hack()];
        let parallel = run_grid(&grid, &methods);
        let sequential: Vec<Vec<JctOutcome>> =
            grid.iter().map(|(_, e)| e.run_all(&methods)).collect();
        assert_eq!(parallel, sequential);
    }
}
