//! # hack-bench
//!
//! Benchmark and experiment harness of the HACK reproduction:
//!
//! * **In-tree micro-benchmarks** (`src/bin/bench.rs`): quantization and
//!   homomorphic-matmul kernels (optimized vs the retained scalar reference),
//!   attention kernels (prefill + decode, including the SE/RQE ablations), the
//!   baseline codecs, the discrete-event engine (slab vs the pre-change boxed
//!   representation) and the analytic cost layer (`sim_cost`: prefix-sum cost
//!   tables vs the reference summation loops, including a full capacity
//!   bisection). Writes `BENCH_kernels.json` / `BENCH_sim.json`;
//!   `--compare <baseline.json>` prints a delta report against recorded
//!   baselines (CI does this on every push). See `PERF.md` at the repository
//!   root for the schema and how to compare runs across commits.
//! * **Per-figure/table binaries** (`src/bin/`): one binary per figure and table of the
//!   paper's evaluation (Fig. 1–4, the §3 FP4/6/8 study, Fig. 9–14, Tables 5–8). Each
//!   prints the same rows/series the paper reports and writes a JSON copy under
//!   `target/experiments/`. Grid cells are sharded across threads by [`shard`];
//!   cells with `rps: None` measure the cluster's capacity by bisection over
//!   simulator runs ([`hack_core::JctExperiment::with_measured_load`]).
//!
//! Run `cargo run -p hack-bench --release --bin <experiment>` for a single experiment,
//! or see EXPERIMENTS.md for the full index and the recorded outcomes.

pub mod shard;

pub use shard::{run_grid, run_grid_measured, run_sharded, worker_threads};

use hack_core::prelude::*;
use std::path::PathBuf;

/// Directory where the experiment binaries drop their JSON results.
pub fn output_dir() -> PathBuf {
    PathBuf::from("target").join("experiments")
}

/// Prints a table and saves its JSON next to the other experiment outputs.
pub fn emit(table: &ExperimentTable) {
    println!("{}", table.render());
    match table.save_json(&output_dir()) {
        Ok(path) => println!("[saved {}]\n", path.display()),
        Err(err) => eprintln!("[warning: could not save JSON: {err}]\n"),
    }
}

/// The per-dataset experiment grid of Figs. 9/10 and Table 5 (Llama-3.1 70B on A10G).
pub fn dataset_grid(num_requests: usize) -> Vec<(Dataset, JctExperiment)> {
    Dataset::all()
        .into_iter()
        .map(|dataset| {
            (
                dataset,
                JctExperiment {
                    num_requests,
                    ..JctExperiment::new(ModelKind::Llama31_70B, GpuKind::A10G, dataset)
                },
            )
        })
        .collect()
}

/// The per-model experiment grid of Figs. 1(b)/3/11 (Cocktail, or arXiv for Falcon-180B
/// whose context window is capped at 2K — §7.1).
pub fn model_grid(num_requests: usize) -> Vec<(ModelKind, JctExperiment)> {
    ModelKind::all()
        .into_iter()
        .map(|model| {
            let dataset = if model == ModelKind::Falcon180B {
                Dataset::Arxiv
            } else {
                Dataset::Cocktail
            };
            (
                model,
                JctExperiment {
                    num_requests,
                    ..JctExperiment::new(model, GpuKind::A10G, dataset)
                },
            )
        })
        .collect()
}

/// The per-prefill-GPU experiment grid of Figs. 1(a)/2/12 (Llama-3.1 70B, Cocktail).
pub fn gpu_grid(num_requests: usize) -> Vec<(GpuKind, JctExperiment)> {
    GpuKind::all()
        .into_iter()
        .map(|gpu| {
            (
                gpu,
                JctExperiment {
                    num_requests,
                    ..JctExperiment::new(ModelKind::Llama31_70B, gpu, Dataset::Cocktail)
                },
            )
        })
        .collect()
}

/// Number of requests per simulation, overridable with `HACK_BENCH_REQUESTS` so CI can
/// run the harness quickly while full runs use more samples.
pub fn default_requests() -> usize {
    std::env::var("HACK_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

/// Builds the standard "stage-ratio" table rows (prefill/quant/comm/dequant/decode in
/// percent of JCT) for one outcome.
pub fn ratio_row(label: impl Into<String>, outcome: &JctOutcome) -> Row {
    Row::new(
        label,
        vec![
            100.0 * outcome.ratios.prefill,
            100.0 * outcome.ratios.quantization,
            100.0 * outcome.ratios.communication,
            100.0 * outcome.ratios.dequant_or_approx,
            100.0 * outcome.ratios.decode,
            100.0 * outcome.ratios.queueing,
        ],
    )
}

/// Column headers matching [`ratio_row`].
pub fn ratio_columns() -> Vec<String> {
    vec![
        "prefill %".into(),
        "quant %".into(),
        "comm %".into(),
        "dequant/approx %".into(),
        "decode %".into(),
        "queueing %".into(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_cover_the_paper_matrix() {
        assert_eq!(dataset_grid(5).len(), 4);
        assert_eq!(model_grid(5).len(), 5);
        assert_eq!(gpu_grid(5).len(), 5);
        // Falcon-180B must be paired with arXiv.
        let falcon = &model_grid(5)[4];
        assert_eq!(falcon.0, ModelKind::Falcon180B);
        assert_eq!(falcon.1.dataset, Dataset::Arxiv);
    }

    #[test]
    fn ratio_row_matches_columns() {
        let e = JctExperiment {
            num_requests: 5,
            ..JctExperiment::new(ModelKind::Llama31_70B, GpuKind::A10G, Dataset::Imdb)
        };
        let o = e.run(Method::hack());
        let row = ratio_row("HACK", &o);
        assert_eq!(row.values.len(), ratio_columns().len());
    }

    #[test]
    fn default_requests_is_positive() {
        assert!(default_requests() > 0);
    }
}
