//! Table 7 — Accuracy decrease of HACK/RQE (requantization of the last V block every
//! iteration) compared to full HACK, per dataset.

use hack_bench::emit;
use hack_core::fidelity::{evaluate, FidelitySetup};
use hack_core::prelude::*;

const BASELINE_ACCURACY: [(Dataset, f64); 4] = [
    (Dataset::Imdb, 95.73),
    (Dataset::Arxiv, 83.79),
    (Dataset::Cocktail, 86.39),
    (Dataset::HumanEval, 85.21),
];

fn main() {
    // The RQE accuracy effect accumulates with the number of generated tokens (§7.4),
    // so model each dataset with a generation length proportional to its average
    // output length.
    let mut table = ExperimentTable::new(
        "table7",
        "Table 7: accuracy decrease of HACK/RQE compared to HACK",
        BASELINE_ACCURACY
            .iter()
            .map(|(d, _)| d.name().to_string())
            .collect(),
        "accuracy points",
    );
    let mut drops = Vec::new();
    for (dataset, anchor) in BASELINE_ACCURACY {
        let generate = (dataset.output_stats().avg / 8).clamp(8, 40);
        let setup = FidelitySetup {
            generate_tokens: generate,
            trials: 4,
            ..FidelitySetup::default()
        };
        let hack = evaluate(Method::hack(), &setup);
        let no_rqe = evaluate(Method::HackNoRqe, &setup);
        let drop = no_rqe.accuracy_proxy(anchor, 3.0) - hack.accuracy_proxy(anchor, 3.0);
        drops.push(drop);
    }
    table.push_row(Row::new("HACK/RQE - HACK", drops));
    emit(&table);
    println!("(the paper reports decreases between -0.14 and -0.29 accuracy points)");
}
