//! Table 8 — Sensitivity to the quantization partition size: accuracy increase and JCT
//! increase of Π = 32 and Π = 64 relative to Π = 128, per dataset.

use hack_bench::{dataset_grid, default_requests, emit, run_grid_measured};
use hack_core::fidelity::{evaluate, FidelitySetup};
use hack_core::prelude::*;

const BASELINE_ACCURACY: [(Dataset, f64); 4] = [
    (Dataset::Imdb, 95.73),
    (Dataset::Arxiv, 83.79),
    (Dataset::Cocktail, 86.39),
    (Dataset::HumanEval, 85.21),
];

fn main() {
    let n = default_requests();
    let setup = FidelitySetup {
        trials: 4,
        ..FidelitySetup::default()
    };
    let partitions = [32usize, 64, 128];

    // Accuracy proxies per partition size (dataset-independent fidelity, anchored per
    // dataset) and JCT per partition size per dataset.
    let reports: Vec<_> = partitions
        .iter()
        .map(|&p| evaluate(Method::Hack { partition: p }, &setup))
        .collect();

    let mut acc_table = ExperimentTable::new(
        "table8_accuracy",
        "Table 8: accuracy increase of Π=32 / Π=64 over Π=128",
        BASELINE_ACCURACY
            .iter()
            .map(|(d, _)| d.name().to_string())
            .collect(),
        "accuracy points",
    );
    for (i, &p) in partitions.iter().enumerate().take(2) {
        let values: Vec<f64> = BASELINE_ACCURACY
            .iter()
            .map(|(_, anchor)| {
                reports[i].accuracy_proxy(*anchor, 3.0) - reports[2].accuracy_proxy(*anchor, 3.0)
            })
            .collect();
        acc_table.push_row(Row::new(format!("Pi={p}"), values));
    }
    emit(&acc_table);

    let mut jct_table = ExperimentTable::new(
        "table8_jct",
        "Table 8: average-JCT increase of Π=32 / Π=64 over Π=128",
        dataset_grid(1)
            .iter()
            .map(|(d, _)| d.name().to_string())
            .collect(),
        "%",
    );
    let partition_methods: Vec<Method> = partitions
        .iter()
        .map(|&p| Method::Hack { partition: p })
        .collect();
    let mut per_partition: Vec<Vec<f64>> = vec![Vec::new(); partitions.len()];
    for outcomes in run_grid_measured(&dataset_grid(n), &partition_methods) {
        for (i, o) in outcomes.iter().enumerate() {
            per_partition[i].push(o.average_jct);
        }
    }
    for (i, &p) in partitions.iter().enumerate().take(2) {
        jct_table.push_row(Row::new(
            format!("Pi={p}"),
            per_partition[i]
                .iter()
                .zip(&per_partition[2])
                .map(|(a, b)| 100.0 * (a / b - 1.0))
                .collect(),
        ));
    }
    emit(&jct_table);
}
