//! Fig. 1 — Bottlenecks in disaggregated LLM inference (baseline, no compression).
//!
//! * `fig1 a` — average prefill/comm/decode time ratios while varying the prefill GPU.
//! * `fig1 b` — the same while varying the model (F uses arXiv).
//! * `fig1 c` — the same while varying the dataset (Llama-3.1 70B, A10G).
//! * `fig1 d` — average communication time ratio vs RPS with pipelining enabled.
//! * no argument — run all four panels.
//!
//! Cells with an unset load resolve it by measured bisection
//! ([`JctExperiment::with_measured_load`]); independent cells run on worker threads.

use hack_bench::{
    dataset_grid, default_requests, emit, gpu_grid, model_grid, ratio_columns, ratio_row,
    run_grid_measured, run_sharded,
};
use hack_core::prelude::*;

fn panel_a(n: usize) {
    let mut table = ExperimentTable::new(
        "fig1a",
        "Fig. 1(a): baseline time ratios vs prefill GPU (Llama-3.1 70B, Cocktail)",
        ratio_columns(),
        "% of JCT",
    );
    let grid = gpu_grid(n);
    for ((gpu, _), outcomes) in grid
        .iter()
        .zip(run_grid_measured(&grid, &[Method::Baseline]))
    {
        table.push_row(ratio_row(format!("{gpu:?}"), &outcomes[0]));
    }
    emit(&table);
}

fn panel_b(n: usize) {
    let mut table = ExperimentTable::new(
        "fig1b",
        "Fig. 1(b): baseline time ratios vs model (Cocktail; arXiv for F)",
        ratio_columns(),
        "% of JCT",
    );
    let grid = model_grid(n);
    for ((model, _), outcomes) in grid
        .iter()
        .zip(run_grid_measured(&grid, &[Method::Baseline]))
    {
        let label = if *model == ModelKind::Falcon180B {
            "F-arXiv".to_string()
        } else {
            model.letter().to_string()
        };
        table.push_row(ratio_row(label, &outcomes[0]));
    }
    emit(&table);
}

fn panel_c(n: usize) {
    let mut table = ExperimentTable::new(
        "fig1c",
        "Fig. 1(c): baseline time ratios vs dataset (Llama-3.1 70B, A10G)",
        ratio_columns(),
        "% of JCT",
    );
    let grid = dataset_grid(n);
    for ((dataset, _), outcomes) in grid
        .iter()
        .zip(run_grid_measured(&grid, &[Method::Baseline]))
    {
        table.push_row(ratio_row(dataset.name(), &outcomes[0]));
    }
    emit(&table);
}

fn panel_d(n: usize) {
    let rps_points = [0.06, 0.10, 0.14, 0.18];
    let mut table = ExperimentTable::new(
        "fig1d",
        "Fig. 1(d): baseline communication ratio vs RPS with pipelining (Llama-3.1 70B, Cocktail)",
        rps_points.iter().map(|r| format!("RPS {r}")).collect(),
        "% of JCT",
    );
    // One independent cell per (gpu, rps) point, sharded across threads.
    let cells: Vec<(GpuKind, JctExperiment)> = GpuKind::all()
        .into_iter()
        .flat_map(|gpu| {
            rps_points.into_iter().map(move |rps| {
                (
                    gpu,
                    JctExperiment {
                        num_requests: n,
                        rps: Some(rps),
                        pipelining: true,
                        ..JctExperiment::new(ModelKind::Llama31_70B, gpu, Dataset::Cocktail)
                    },
                )
            })
        })
        .collect();
    let ratios = run_sharded(&cells, |_, (_, e)| {
        100.0 * e.run(Method::Baseline).ratios.communication
    });
    for (row, gpu) in GpuKind::all().into_iter().enumerate() {
        let values = ratios[row * rps_points.len()..(row + 1) * rps_points.len()].to_vec();
        table.push_row(Row::new(format!("{gpu:?}"), values));
    }
    emit(&table);
}

fn main() {
    let n = default_requests();
    let arg = std::env::args().nth(1).unwrap_or_default();
    match arg.as_str() {
        "a" => panel_a(n),
        "b" => panel_b(n),
        "c" => panel_c(n),
        "d" => panel_d(n),
        _ => {
            panel_a(n);
            panel_b(n);
            panel_c(n);
            panel_d(n);
        }
    }
}
