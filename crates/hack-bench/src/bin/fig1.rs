//! Fig. 1 — Bottlenecks in disaggregated LLM inference (baseline, no compression).
//!
//! * `fig1 a` — average prefill/comm/decode time ratios while varying the prefill GPU.
//! * `fig1 b` — the same while varying the model (F uses arXiv).
//! * `fig1 c` — the same while varying the dataset (Llama-3.1 70B, A10G).
//! * `fig1 d` — average communication time ratio vs RPS with pipelining enabled.
//! * no argument — run all four panels.

use hack_bench::{
    dataset_grid, default_requests, emit, gpu_grid, model_grid, ratio_columns, ratio_row,
};
use hack_core::prelude::*;

fn panel_a(n: usize) {
    let mut table = ExperimentTable::new(
        "fig1a",
        "Fig. 1(a): baseline time ratios vs prefill GPU (Llama-3.1 70B, Cocktail)",
        ratio_columns(),
        "% of JCT",
    );
    for (gpu, e) in gpu_grid(n) {
        let outcome = e.run(Method::Baseline);
        table.push_row(ratio_row(format!("{gpu:?}"), &outcome));
    }
    emit(&table);
}

fn panel_b(n: usize) {
    let mut table = ExperimentTable::new(
        "fig1b",
        "Fig. 1(b): baseline time ratios vs model (Cocktail; arXiv for F)",
        ratio_columns(),
        "% of JCT",
    );
    for (model, e) in model_grid(n) {
        let outcome = e.run(Method::Baseline);
        let label = if model == ModelKind::Falcon180B {
            "F-arXiv".to_string()
        } else {
            model.letter().to_string()
        };
        table.push_row(ratio_row(label, &outcome));
    }
    emit(&table);
}

fn panel_c(n: usize) {
    let mut table = ExperimentTable::new(
        "fig1c",
        "Fig. 1(c): baseline time ratios vs dataset (Llama-3.1 70B, A10G)",
        ratio_columns(),
        "% of JCT",
    );
    for (dataset, e) in dataset_grid(n) {
        let outcome = e.run(Method::Baseline);
        table.push_row(ratio_row(dataset.name(), &outcome));
    }
    emit(&table);
}

fn panel_d(n: usize) {
    let rps_points = [0.06, 0.10, 0.14, 0.18];
    let mut table = ExperimentTable::new(
        "fig1d",
        "Fig. 1(d): baseline communication ratio vs RPS with pipelining (Llama-3.1 70B, Cocktail)",
        rps_points.iter().map(|r| format!("RPS {r}")).collect(),
        "% of JCT",
    );
    for gpu in GpuKind::all() {
        let mut values = Vec::new();
        for &rps in &rps_points {
            let e = JctExperiment {
                num_requests: n,
                rps: Some(rps),
                pipelining: true,
                ..JctExperiment::new(ModelKind::Llama31_70B, gpu, Dataset::Cocktail)
            };
            values.push(100.0 * e.run(Method::Baseline).ratios.communication);
        }
        table.push_row(Row::new(format!("{gpu:?}"), values));
    }
    emit(&table);
}

fn main() {
    let n = default_requests();
    let arg = std::env::args().nth(1).unwrap_or_default();
    match arg.as_str() {
        "a" => panel_a(n),
        "b" => panel_b(n),
        "c" => panel_c(n),
        "d" => panel_d(n),
        _ => {
            panel_a(n);
            panel_b(n);
            panel_c(n);
            panel_d(n);
        }
    }
}
