//! Fig. 14 — Scalability: average JCT as the ratio `p` of prefill to decode model
//! replicas grows (RPS = 0.02·p, decode on half an A100 instance).

use hack_bench::{default_requests, emit, run_grid};
use hack_core::prelude::*;

fn main() {
    let n = default_requests().min(80);
    let ps = [1usize, 2, 3, 4, 6, 8];
    let methods = Method::main_comparison();
    let mut table = ExperimentTable::new(
        "fig14",
        "Fig. 14: average JCT vs prefill:decode replica ratio p (Llama-3.1 70B, Cocktail)",
        ps.iter().map(|p| format!("p={p}")).collect(),
        "s",
    );
    // The scalability grid pins its load (RPS = 0.02·p), so no capacity search is
    // needed; the cells still shard across threads.
    let grid: Vec<(usize, JctExperiment)> = ps
        .iter()
        .map(|&p| {
            (
                p,
                JctExperiment {
                    num_requests: n,
                    ..JctExperiment::scalability(p)
                },
            )
        })
        .collect();
    let cells = run_grid(&grid, &methods);
    for (i, method) in methods.iter().enumerate() {
        let values: Vec<f64> = cells.iter().map(|c| c[i].average_jct).collect();
        table.push_row(Row::new(method.name(), values));
    }
    emit(&table);
    println!(
        "note: the paper reports a 127% baseline JCT increase from p=1 to p=8 because its decode\n\
         side saturates; the calibrated service-time model stays below saturation at RPS=0.02·p,\n\
         so the simulated growth is smaller (see EXPERIMENTS.md)."
    );
}
