//! Table 6 — Accuracy performance across datasets and models.
//!
//! The paper measures task accuracy of real models; this harness measures numerical
//! fidelity (kernel-level and model-level, see `hack_core::fidelity`) and reports the
//! accuracy proxy anchored at the paper's baseline accuracy for every dataset × model
//! cell, preserving the ordering HACK(Π=32) ≥ HACK(Π=64) ≥ CacheGen ≈ KVQuant ≳
//! HACK(Π=128).

use hack_bench::emit;
use hack_core::fidelity::{evaluate_all, FidelitySetup};
use hack_core::prelude::*;

/// Baseline accuracies from Table 6 (per dataset, for the Llama-3.1 70B column), used
/// as the anchor of the accuracy proxy.
const BASELINE_ACCURACY: [(Dataset, f64); 4] = [
    (Dataset::Imdb, 95.73),
    (Dataset::Arxiv, 83.79),
    (Dataset::Cocktail, 86.39),
    (Dataset::HumanEval, 85.21),
];

fn main() {
    let methods = [
        Method::Baseline,
        Method::Hack { partition: 32 },
        Method::hack(),
        Method::CacheGen,
        Method::KvQuant,
        Method::Hack { partition: 128 },
    ];
    let setup = FidelitySetup::default();
    println!(
        "measuring fidelity ({} trials per method)...\n",
        setup.trials
    );
    let reports = evaluate_all(&methods, &setup);

    let mut fidelity = ExperimentTable::new(
        "table6_fidelity",
        "Table 6 (underlying measurement): numerical fidelity per method",
        vec![
            "attention cos".into(),
            "logit cos".into(),
            "token agree".into(),
            "ROUGE-1".into(),
            "edit sim".into(),
        ],
        "score",
    );
    for r in &reports {
        fidelity.push_row(Row::new(
            r.method_name.clone(),
            vec![
                r.attention_cosine,
                r.logit_cosine,
                r.token_agreement,
                r.rouge1,
                r.edit_similarity,
            ],
        ));
    }
    emit(&fidelity);

    let mut table = ExperimentTable::new(
        "table6",
        "Table 6 (proxy): accuracy anchored at the paper's Llama-3.1 70B baseline accuracy",
        BASELINE_ACCURACY
            .iter()
            .map(|(d, _)| d.name().to_string())
            .collect(),
        "%",
    );
    for r in &reports {
        let values: Vec<f64> = BASELINE_ACCURACY
            .iter()
            .map(|(_, acc)| r.accuracy_proxy(*acc, 3.0))
            .collect();
        table.push_row(Row::new(r.method_name.clone(), values));
    }
    emit(&table);
}
