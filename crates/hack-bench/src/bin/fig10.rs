//! Fig. 10 — Average JCT decomposition (prefill, quantization, communication,
//! dequantization/approximation, decode) for Llama-3.1 70B with varying datasets.

use hack_bench::{dataset_grid, default_requests, emit, run_grid_measured};
use hack_core::prelude::*;

fn main() {
    let n = default_requests();
    let methods = Method::main_comparison();
    let grid = dataset_grid(n);
    let cells = run_grid_measured(&grid, &methods);
    for ((dataset, _), outcomes) in grid.iter().zip(cells) {
        let mut table = ExperimentTable::new(
            format!("fig10_{}", dataset.name().to_lowercase()),
            format!(
                "Fig. 10: average JCT decomposition on {} (Llama-3.1 70B, A10G)",
                dataset.name()
            ),
            vec![
                "prefill (s)".into(),
                "quant (s)".into(),
                "comm (s)".into(),
                "dequant/approx (s)".into(),
                "decode (s)".into(),
                "queueing (s)".into(),
                "total (s)".into(),
            ],
            "s",
        );
        for (method, o) in methods.iter().zip(&outcomes) {
            let b = o.stats.mean_breakdown;
            table.push_row(Row::new(
                method.name(),
                vec![
                    b.prefill,
                    b.quantization,
                    b.communication,
                    b.dequant_or_approx,
                    b.decode,
                    b.queueing,
                    b.total(),
                ],
            ));
        }
        emit(&table);
    }
}
