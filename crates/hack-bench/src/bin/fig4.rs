//! Fig. 4 — Employing KV quantization (CacheGen / KVQuant) across datasets: average
//! prefill / comm / dequantization / decode time ratios, Llama-3.1 70B on A10G.

use hack_bench::{
    dataset_grid, default_requests, emit, ratio_columns, ratio_row, run_grid_measured,
};
use hack_core::prelude::*;

fn main() {
    let n = default_requests();
    let methods = [Method::CacheGen, Method::KvQuant];
    let grid = dataset_grid(n);
    let outcomes = run_grid_measured(&grid, &methods);
    for (m, method) in methods.into_iter().enumerate() {
        let mut table = ExperimentTable::new(
            format!("fig4_{}", method.name().to_lowercase()),
            format!(
                "Fig. 4: {} time ratios vs dataset (Llama-3.1 70B, A10G)",
                method.name()
            ),
            ratio_columns(),
            "% of JCT",
        );
        for ((dataset, _), cell) in grid.iter().zip(&outcomes) {
            table.push_row(ratio_row(dataset.name(), &cell[m]));
        }
        emit(&table);
    }
}
