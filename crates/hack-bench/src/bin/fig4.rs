//! Fig. 4 — Employing KV quantization (CacheGen / KVQuant) across datasets: average
//! prefill / comm / dequantization / decode time ratios, Llama-3.1 70B on A10G.

use hack_bench::{dataset_grid, default_requests, emit, ratio_columns, ratio_row};
use hack_core::prelude::*;

fn main() {
    let n = default_requests();
    for method in [Method::CacheGen, Method::KvQuant] {
        let mut table = ExperimentTable::new(
            format!("fig4_{}", method.name().to_lowercase()),
            format!(
                "Fig. 4: {} time ratios vs dataset (Llama-3.1 70B, A10G)",
                method.name()
            ),
            ratio_columns(),
            "% of JCT",
        );
        for (dataset, e) in dataset_grid(n) {
            table.push_row(ratio_row(dataset.name(), &e.run(method)));
        }
        emit(&table);
    }
}
