//! `bench` — the in-tree micro-benchmark harness (criterion is unavailable
//! offline, so timing is done with `std::time::Instant` directly).
//!
//! Times the three hot paths this repo optimizes and writes machine-readable
//! results next to the workspace root:
//!
//! * **Kernels** (`BENCH_kernels.json`): quantization, the blocked homomorphic
//!   GEMM vs the retained scalar reference (the headline speedup number) and vs
//!   dequantize-then-matmul, the SE ablation, partition sweep, code packing,
//!   attention prefill/decode/append, and the baseline codecs.
//! * **Simulator** (`BENCH_sim.json`): a 1M+-event cluster run on the slab
//!   engine vs the pre-change boxed engine (the headline wall-clock reduction),
//!   plus per-method end-to-end cluster runs.
//!
//! `BENCH_SCALE=smoke` (or `--smoke`) shrinks every workload for CI; the JSON
//! schema is identical. See PERF.md for the schema and how to compare runs.

use hack_attention::baseline::AttentionMask;
use hack_attention::flash::flash_attention;
use hack_baselines::{CacheGenLike, Fp8Format, KvCompressor, KvQuantLike, MinifloatCast};
use hack_core::prelude::*;
use hack_quant::homomorphic::{
    dequant_matmul, homomorphic_matmul, homomorphic_matmul_no_se, reference,
};
use hack_quant::packing::{pack_codes, unpack_codes};
use hack_quant::params::{QuantBits, RoundingMode};
use hack_sim::EngineMode;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// One timed workload.
#[derive(Debug, Serialize)]
struct Bench {
    /// Workload group (e.g. `quantize_2bit`).
    name: String,
    /// Parameterisation within the group (e.g. `tokens=1024`).
    config: String,
    /// Timed iterations (after one warmup iteration).
    iters: u64,
    /// Best (minimum) wall-clock seconds per iteration — the standard robust
    /// estimator under scheduler noise.
    seconds_per_iter: f64,
}

/// The headline kernel comparison: blocked vs scalar-reference homomorphic GEMM.
#[derive(Debug, Serialize)]
struct MatmulSpeedup {
    l_kv: usize,
    optimized_secs: f64,
    scalar_reference_secs: f64,
    /// `scalar_reference_secs / optimized_secs`.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct KernelsReport {
    schema: &'static str,
    scale: &'static str,
    /// Blocked vs scalar homomorphic GEMM (the paper's quantized score matmul).
    quantized_matmul_speedup: Vec<MatmulSpeedup>,
    benches: Vec<Bench>,
}

/// The headline engine comparison: one seeded workload, both engine modes.
#[derive(Debug, Serialize)]
struct EngineComparison {
    /// Events processed by the engine during the run (identical across modes).
    events_processed: u64,
    /// Best-of-two wall-clock per mode (runs alternate modes to cancel drift).
    slab_secs: f64,
    boxed_secs: f64,
    /// `100 * (1 - slab_secs / boxed_secs)`.
    reduction_percent: f64,
}

#[derive(Debug, Serialize)]
struct SimReport {
    schema: &'static str,
    scale: &'static str,
    /// Slab vs pre-change boxed engine on a 1M+-event seeded cluster run
    /// (short-output IMDb workload: the engine, not the cost model, dominates).
    cluster_run_requests: usize,
    engine_cluster_run: EngineComparison,
    /// Slab vs boxed on a pure engine event storm (no cluster cost model at
    /// all): isolates queue + payload-allocation overhead.
    engine_event_storm: EngineComparison,
    benches: Vec<Bench>,
}

/// Times `f`: one warmup call, then `iters` timed calls; returns the minimum
/// per-call wall-clock (robust against scheduler interference).
fn time_iters<R>(iters: u64, mut f: impl FnMut() -> R) -> f64 {
    black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn push(benches: &mut Vec<Bench>, name: &str, config: String, iters: u64, secs: f64) {
    println!("  {name:<38} {config:<24} {:>12.3} us/iter", secs * 1e6);
    benches.push(Bench {
        name: name.to_string(),
        config,
        iters,
        seconds_per_iter: secs,
    });
}

fn decode_shape_tensors(l_kv: usize, partition: usize) -> (QuantizedTensor, QuantizedTensor) {
    let d_h = 128;
    let mut rng = DetRng::new(1);
    let q = Matrix::random_normal(1, d_h, 0.0, 1.0, &mut rng);
    let k = Matrix::random_normal(l_kv, d_h, 0.0, 1.0, &mut rng);
    let qq = QuantizedTensor::quantize_rows(
        &q,
        QuantBits::Int8,
        partition,
        RoundingMode::Nearest,
        &mut rng,
    );
    let qk = QuantizedTensor::quantize_rows(
        &k,
        QuantBits::Int2,
        partition,
        RoundingMode::Nearest,
        &mut rng,
    );
    (qq, qk)
}

fn qkv(tokens: usize, d_h: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = DetRng::new(seed);
    (
        Matrix::random_normal(tokens, d_h, 0.0, 1.0, &mut rng),
        Matrix::random_normal(tokens, d_h, 0.0, 1.0, &mut rng),
        Matrix::random_normal(tokens, d_h, 0.0, 1.0, &mut rng),
    )
}

fn kv_matrix(tokens: usize, channels: usize) -> Matrix {
    let mut rng = DetRng::new(1);
    let mut m = Matrix::zeros(tokens, channels);
    for ch in 0..channels {
        let mut value = rng.normal_f32(0.0, 1.0);
        for t in 0..tokens {
            value += rng.normal_f32(0.0, 0.05);
            m.set(t, ch, value + ((ch % 5) as f32 - 2.0) * 0.3);
        }
    }
    m
}

#[allow(clippy::too_many_lines)]
fn kernel_benches(smoke: bool) -> KernelsReport {
    let mut benches = Vec::new();
    println!("== kernel benches ==");

    // --- Quantization (ported from benches/kernels.rs). ---
    let quant_tokens: &[usize] = if smoke { &[64] } else { &[256, 1024] };
    for &tokens in quant_tokens {
        let mut rng = DetRng::new(2);
        let m = Matrix::random_normal(tokens, 128, 0.0, 1.0, &mut rng);
        let iters = if smoke { 3 } else { 20 };
        let secs = time_iters(iters, || {
            let mut rng = DetRng::new(3);
            QuantizedTensor::quantize_rows(
                &m,
                QuantBits::Int2,
                64,
                RoundingMode::Stochastic,
                &mut rng,
            )
        });
        push(
            &mut benches,
            "quantize_2bit",
            format!("tokens={tokens}"),
            iters,
            secs,
        );
    }

    // --- Homomorphic matmul: blocked vs scalar reference vs dequant path. ---
    let lkvs: &[usize] = if smoke { &[256] } else { &[512, 2048] };
    let mut speedups = Vec::new();
    for &l_kv in lkvs {
        let (qq, qk) = decode_shape_tensors(l_kv, 64);
        let iters = if smoke { 5 } else { 50 };
        let optimized = time_iters(iters, || homomorphic_matmul(&qq, &qk));
        let scalar = time_iters(iters, || {
            reference::homomorphic_matmul_scalar(&qq, &qk, true)
        });
        let no_se = time_iters(iters, || homomorphic_matmul_no_se(&qq, &qk));
        let dequant = time_iters(iters, || dequant_matmul(&qq, &qk));
        push(
            &mut benches,
            "score_matmul/homomorphic_se",
            format!("l_kv={l_kv}"),
            iters,
            optimized,
        );
        push(
            &mut benches,
            "score_matmul/homomorphic_se_scalar_ref",
            format!("l_kv={l_kv}"),
            iters,
            scalar,
        );
        push(
            &mut benches,
            "score_matmul/homomorphic_no_se",
            format!("l_kv={l_kv}"),
            iters,
            no_se,
        );
        push(
            &mut benches,
            "score_matmul/dequantize_then_matmul",
            format!("l_kv={l_kv}"),
            iters,
            dequant,
        );
        speedups.push(MatmulSpeedup {
            l_kv,
            optimized_secs: optimized,
            scalar_reference_secs: scalar,
            speedup: scalar / optimized,
        });
    }

    // --- Partition-size sweep. ---
    let sweep_lkv = if smoke { 256 } else { 1024 };
    for partition in [32usize, 64, 128] {
        let (qq, qk) = decode_shape_tensors(sweep_lkv, partition);
        let iters = if smoke { 5 } else { 50 };
        let secs = time_iters(iters, || homomorphic_matmul(&qq, &qk));
        push(
            &mut benches,
            "homomorphic_matmul_partition_sweep",
            format!("partition={partition},l_kv={sweep_lkv}"),
            iters,
            secs,
        );
    }

    // --- Code packing (ported from benches/kernels.rs). ---
    let pack_n = if smoke { 16 * 1024 } else { 128 * 1024 };
    let mut rng = DetRng::new(4);
    let codes: Vec<u8> = (0..pack_n).map(|_| rng.range_usize(0, 4) as u8).collect();
    let iters = if smoke { 10 } else { 100 };
    let secs = time_iters(iters, || pack_codes(&codes, QuantBits::Int2));
    push(
        &mut benches,
        "pack_codes_2bit",
        format!("codes={pack_n}"),
        iters,
        secs,
    );
    let packed = pack_codes(&codes, QuantBits::Int2);
    let secs = time_iters(iters, || {
        unpack_codes(&packed, QuantBits::Int2, codes.len())
    });
    push(
        &mut benches,
        "unpack_codes_2bit",
        format!("codes={pack_n}"),
        iters,
        secs,
    );

    // --- Attention prefill kernels (ported from benches/attention.rs). ---
    let prefill_tokens = if smoke { 64 } else { 256 };
    let (q, k, v) = qkv(prefill_tokens, 64, 1);
    let iters = if smoke { 2 } else { 10 };
    let secs = time_iters(iters, || {
        baseline_attention(&q, &k, &v, AttentionMask::Causal)
    });
    push(
        &mut benches,
        "prefill_attention/baseline_fp32",
        format!("tokens={prefill_tokens}"),
        iters,
        secs,
    );
    let secs = time_iters(iters, || {
        flash_attention(&q, &k, &v, AttentionMask::Causal, 64)
    });
    push(
        &mut benches,
        "prefill_attention/flash_tiled",
        format!("tokens={prefill_tokens}"),
        iters,
        secs,
    );
    let secs = time_iters(iters, || {
        let mut rng = DetRng::new(2);
        hack_prefill_attention(&q, &k, &v, HackConfig::paper_default(), &mut rng)
    });
    push(
        &mut benches,
        "prefill_attention/hack_homomorphic",
        format!("tokens={prefill_tokens}"),
        iters,
        secs,
    );

    // --- Decode step + append (ported from benches/attention.rs). ---
    let decode_tokens = if smoke { 256 } else { 1024 };
    let (_, k, v) = qkv(decode_tokens, 64, 3);
    for (name, cfg) in [
        ("hack", HackConfig::paper_default()),
        ("hack_no_se", HackConfig::without_summation_elimination()),
        ("hack_no_rqe", HackConfig::without_requant_elimination()),
    ] {
        let mut rng = DetRng::new(4);
        let state = HackKvState::from_prefill(&k, &v, cfg, &mut rng);
        let q_row = vec![0.1f32; 64];
        let iters = if smoke { 3 } else { 30 };
        let secs = time_iters(iters, || {
            let mut rng = DetRng::new(5);
            state.decode_attention(&q_row, &mut rng)
        });
        push(
            &mut benches,
            "decode_step",
            format!("variant={name},kv={decode_tokens}"),
            iters,
            secs,
        );
    }
    for (name, cfg) in [
        ("with_rqe", HackConfig::paper_default()),
        ("without_rqe", HackConfig::without_requant_elimination()),
    ] {
        let iters = if smoke { 3 } else { 20 };
        let secs = time_iters(iters, || {
            let mut rng = DetRng::new(7);
            let mut state = HackKvState::from_prefill(&k, &v, cfg, &mut rng);
            let mut rng = DetRng::new(8);
            let row = vec![0.3f32; 64];
            state.append_token(&row, &row, &mut rng)
        });
        push(
            &mut benches,
            "append_token",
            format!("variant={name},kv={decode_tokens}"),
            iters,
            secs,
        );
    }

    // --- Baseline codecs (ported from benches/codecs.rs). ---
    let (codec_tokens, codec_channels) = if smoke { (128, 64) } else { (512, 128) };
    let m = kv_matrix(codec_tokens, codec_channels);
    let codecs: Vec<(&str, Box<dyn KvCompressor>)> = vec![
        ("kvquant_2bit", Box::new(KvQuantLike::default())),
        ("cachegen_delta_entropy", Box::new(CacheGenLike::default())),
        ("fp8_e4m3", Box::new(MinifloatCast::fp8(Fp8Format::E4M3))),
        ("fp4_e2m1", Box::new(MinifloatCast::fp4())),
    ];
    for (name, codec) in &codecs {
        let iters = if smoke { 3 } else { 20 };
        let secs = time_iters(iters, || {
            let mut rng = DetRng::new(2);
            codec.compress(&m, &mut rng)
        });
        push(
            &mut benches,
            "kv_codec_compress",
            format!("codec={name},{codec_tokens}x{codec_channels}"),
            iters,
            secs,
        );
        let mut rng = DetRng::new(3);
        let compressed = codec.compress(&m, &mut rng);
        let secs = time_iters(iters, || codec.decompress(&compressed));
        push(
            &mut benches,
            "kv_codec_decompress",
            format!("codec={name},{codec_tokens}x{codec_channels}"),
            iters,
            secs,
        );
    }

    KernelsReport {
        schema: "hack-bench/kernels/v1",
        scale: if smoke { "smoke" } else { "full" },
        quantized_matmul_speedup: speedups,
        benches,
    }
}

/// A self-scheduling engine component: every delivery fans out two more events
/// until the budget is exhausted — a pure queue/payload workload.
mod storm {
    use hack_sim::{EngineMode, Event, EventHandler, Simulation, SimulationContext};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Burst {
        depth: u32,
    }

    struct Echo {
        ctx: SimulationContext,
        budget: u64,
    }

    impl EventHandler for Echo {
        fn on(&mut self, event: Event) {
            if let Some(burst) = event.get::<Burst>() {
                if self.budget > 0 {
                    self.budget -= 1;
                    let delay = 0.5 + (burst.depth % 7) as f64 * 0.25;
                    self.ctx.emit_self(
                        Burst {
                            depth: burst.depth + 1,
                        },
                        delay,
                    );
                    self.ctx.emit_self(
                        Burst {
                            depth: burst.depth + 2,
                        },
                        delay * 2.0,
                    );
                }
            }
        }
    }

    /// Runs the storm until ~`2 * budget` events are processed; returns the count.
    pub fn run(mode: EngineMode, budget: u64) -> u64 {
        let mut sim = Simulation::with_mode(7, mode);
        let ctx = sim.create_context("echo");
        let echo = Rc::new(RefCell::new(Echo { ctx, budget }));
        echo.borrow().ctx.emit_self(Burst { depth: 0 }, 0.0);
        sim.add_handler("echo", echo);
        sim.run();
        sim.processed_count()
    }
}

/// Times `run` in both engine modes, alternating Boxed/Slab twice and keeping
/// the best per mode, and verifies both modes report the same event count.
fn compare_engines(label: &str, mut run: impl FnMut(EngineMode) -> u64) -> EngineComparison {
    let mut best = [f64::INFINITY; 2]; // [slab, boxed]
    let mut events = [0u64; 2];
    for _round in 0..2 {
        for (slot, mode) in [(1, EngineMode::Boxed), (0, EngineMode::Slab)] {
            let start = Instant::now();
            let count = run(mode);
            best[slot] = best[slot].min(start.elapsed().as_secs_f64());
            events[slot] = count;
        }
    }
    assert_eq!(
        events[0], events[1],
        "{label}: modes must process identically"
    );
    let cmp = EngineComparison {
        events_processed: events[0],
        slab_secs: best[0],
        boxed_secs: best[1],
        reduction_percent: 100.0 * (1.0 - best[0] / best[1]),
    };
    println!(
        "  {label}: {} events, slab {:.3}s vs boxed {:.3}s ({:+.1}% wall-clock)",
        cmp.events_processed, cmp.slab_secs, cmp.boxed_secs, -cmp.reduction_percent
    );
    cmp
}

fn sim_benches(smoke: bool) -> SimReport {
    let mut benches = Vec::new();
    println!("== simulator benches ==");

    // --- Headline comparison 1: a seeded cluster run, slab vs boxed engine.
    // The components emit 4 events per request, so the full-scale run processes
    // well over one million engine events; the short-output IMDb workload keeps
    // the analytic cost model cheap so the engine dominates the wall-clock. ---
    let requests = if smoke { 2_000 } else { 300_000 };
    let experiment = JctExperiment {
        num_requests: requests,
        rps: Some(2.0),
        ..JctExperiment::new(ModelKind::Llama31_70B, GpuKind::A10G, Dataset::Imdb)
    };
    let simulator = Simulator::new(experiment.simulation_config(Method::hack()));
    let mut last_result: Option<hack_cluster::SimulationResult> = None;
    let engine_cluster_run = compare_engines("cluster_run", |mode| {
        let (result, events) = simulator.run_counted(mode);
        if let Some(prev) = &last_result {
            assert_eq!(prev, &result, "engine modes must agree bit-for-bit");
        }
        last_result = Some(result);
        events
    });

    // --- Headline comparison 2: pure engine event storm (queue + payload
    // churn only). ---
    let storm_budget = if smoke { 50_000 } else { 600_000 };
    let engine_event_storm = compare_engines("event_storm", |mode| storm::run(mode, storm_budget));

    // --- Per-method end-to-end runs (ported from benches/simulator.rs). ---
    let per_method_requests = if smoke { 10 } else { 200 };
    for method in Method::main_comparison() {
        let e = JctExperiment {
            num_requests: per_method_requests,
            ..JctExperiment::paper_default()
        };
        let iters = if smoke { 2 } else { 5 };
        let secs = time_iters(iters, || e.run(method));
        push(
            &mut benches,
            "cluster_sim",
            format!("method={},requests={per_method_requests}", method.name()),
            iters,
            secs,
        );
    }

    SimReport {
        schema: "hack-bench/sim/v1",
        scale: if smoke { "smoke" } else { "full" },
        cluster_run_requests: requests,
        engine_cluster_run,
        engine_event_storm,
        benches,
    }
}

fn write_json<T: Serialize>(path: &str, value: &T) {
    let json = serde_json::to_string_pretty(value).expect("serialise bench report");
    std::fs::write(path, json + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("[saved {path}]");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("BENCH_SCALE").is_ok_and(|v| v == "smoke");
    // `--only kernels` / `--only sim` runs a single section (handy when
    // comparing one side across commits).
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1).cloned());
    let wants = |section: &str| only.as_deref().is_none_or(|o| o == section);

    if wants("kernels") {
        let kernels = kernel_benches(smoke);
        for s in &kernels.quantized_matmul_speedup {
            println!(
                "  quantized-matmul speedup @ l_kv={}: {:.2}x (blocked {:.1} us vs scalar {:.1} us)",
                s.l_kv,
                s.speedup,
                s.optimized_secs * 1e6,
                s.scalar_reference_secs * 1e6
            );
        }
        write_json("BENCH_kernels.json", &kernels);
    }

    if wants("sim") {
        let sim = sim_benches(smoke);
        write_json("BENCH_sim.json", &sim);
    }
}
