//! `bench` — the in-tree micro-benchmark harness (criterion is unavailable
//! offline, so timing is done with `std::time::Instant` directly).
//!
//! Times the three hot paths this repo optimizes and writes machine-readable
//! results next to the workspace root:
//!
//! * **Kernels** (`BENCH_kernels.json`): quantization, the blocked homomorphic
//!   GEMM vs the retained scalar reference (the headline speedup number) and vs
//!   dequantize-then-matmul, the SE ablation, partition sweep, code packing,
//!   attention prefill/decode/append, and the baseline codecs.
//! * **Simulator** (`BENCH_sim.json`): a 1M+-event cluster run on the slab
//!   engine vs the pre-change boxed engine (the headline wall-clock reduction),
//!   the `sim_cost` section (prefix-sum cost tables vs the reference
//!   per-token summation loops: microbench, full cluster run, capacity
//!   bisection), the `tenant_mix` scheduling grid, the `hetero_fleet`
//!   mixed-vs-uniform dispatch grid, the `fault_storm` robustness grid with
//!   its Flat-vs-LinkGraph fabric A/B, the `availability` MTBF/MTTR
//!   Monte-Carlo SLO sweep, the `autoscale` cost-vs-SLO Pareto grid with its
//!   Off-identity controller A/B, the `session_cache` prefix-cache grid with
//!   its Off-vs-armed-idle A/B, plus per-method end-to-end cluster runs.
//!
//! `BENCH_SCALE=smoke` (or `--smoke`) shrinks every workload for CI; the JSON
//! schema is identical. `--compare <baseline.json>` (repeatable) prints a
//! delta report against previously recorded JSON — a report, never a gate.
//! See PERF.md for the schema and how to compare runs.

use hack_attention::baseline::AttentionMask;
use hack_attention::flash::flash_attention;
use hack_baselines::{CacheGenLike, Fp8Format, KvCompressor, KvQuantLike, MinifloatCast};
use hack_cluster::CostMode;
use hack_cluster::SchedulingPolicyKind;
use hack_core::prelude::*;
use hack_model::cost_table::DecodeCostTable;
use hack_model::parallelism::Parallelism;
use hack_model::ReplicaCostModel;
use hack_quant::homomorphic::{
    dequant_matmul, homomorphic_matmul, homomorphic_matmul_no_se, reference,
};
use hack_quant::packing::{pack_codes, unpack_codes};
use hack_quant::params::{QuantBits, RoundingMode};
use hack_sim::EngineMode;
use hack_workload::trace::{Request, TraceGenerator};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// One timed workload.
#[derive(Debug, Serialize)]
struct Bench {
    /// Workload group (e.g. `quantize_2bit`).
    name: String,
    /// Parameterisation within the group (e.g. `tokens=1024`).
    config: String,
    /// Timed iterations (after one warmup iteration).
    iters: u64,
    /// Best (minimum) wall-clock seconds per iteration — the standard robust
    /// estimator under scheduler noise.
    seconds_per_iter: f64,
}

/// The headline kernel comparison: blocked vs scalar-reference homomorphic GEMM.
#[derive(Debug, Serialize)]
struct MatmulSpeedup {
    l_kv: usize,
    optimized_secs: f64,
    scalar_reference_secs: f64,
    /// `scalar_reference_secs / optimized_secs`.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct KernelsReport {
    schema: &'static str,
    scale: &'static str,
    /// Blocked vs scalar homomorphic GEMM (the paper's quantized score matmul).
    quantized_matmul_speedup: Vec<MatmulSpeedup>,
    benches: Vec<Bench>,
}

/// The headline engine comparison: one seeded workload, both engine modes.
#[derive(Debug, Serialize)]
struct EngineComparison {
    /// Events processed by the engine during the run (identical across modes).
    events_processed: u64,
    /// Best-of-two wall-clock per mode (runs alternate modes to cancel drift).
    slab_secs: f64,
    boxed_secs: f64,
    /// `100 * (1 - slab_secs / boxed_secs)`.
    reduction_percent: f64,
}

/// Prefix-sum table vs reference summation loop on per-request decode
/// durations (the `sim_cost` headline).
#[derive(Debug, Serialize)]
struct DecodeDurationsMicrobench {
    dataset: &'static str,
    /// Requests evaluated per timed pass.
    requests: usize,
    /// Total decode iterations the reference loop sums over per pass.
    output_tokens: u64,
    loop_secs: f64,
    table_secs: f64,
    /// `loop_secs / table_secs`.
    speedup: f64,
}

/// One workload timed under both cost-evaluation modes of the simulator.
#[derive(Debug, Serialize)]
struct CostModeComparison {
    /// Best-of-two wall-clock per mode (runs alternate modes to cancel drift).
    table_secs: f64,
    reference_secs: f64,
    /// `100 * (1 - table_secs / reference_secs)`.
    reduction_percent: f64,
}

/// Cached capacity bisection (shared trace template + cost tables) vs the
/// uncached reference path; both must return the identical rate.
#[derive(Debug, Serialize)]
struct BisectionComparison {
    dataset: &'static str,
    probe_requests: usize,
    /// The measured capacity (identical across paths by construction).
    max_rps: f64,
    cached_secs: f64,
    reference_secs: f64,
    /// `reference_secs / cached_secs`.
    speedup: f64,
}

/// The O(1) analytic-cost-table section: how much of the simulator's wall
/// clock the memoized cost layer recovers.
#[derive(Debug, Serialize)]
struct SimCostReport {
    /// Prefix subtraction vs O(output tokens) loop, per request.
    decode_durations: DecodeDurationsMicrobench,
    /// The 1M+-event headline cluster run under both cost modes.
    cluster_run_cost_model: CostModeComparison,
    /// A full `measured_max_rps` bisection, cached vs reference.
    capacity_bisection: BisectionComparison,
}

/// One scheduling policy evaluated on the two-tenant contention mix.
#[derive(Debug, Serialize)]
struct TenantMixPolicyRun {
    policy: String,
    /// Best wall-clock seconds of one full simulation run.
    secs: f64,
    /// Jain fairness index over the tenants' normalized service rates.
    jain_fairness: f64,
    /// Global average JCT (seconds).
    average_jct: f64,
    /// Per-tenant mean JCT, ascending by tenant id.
    per_tenant_mean_jct: Vec<f64>,
    /// Per-tenant SLO attainment in [0, 1], ascending by tenant id.
    per_tenant_slo_attainment: Vec<f64>,
}

/// The multi-tenant section: the `tenant_mix` grid (one row per scheduling
/// policy on the interactive-vs-batch overload mix) plus the fairness gain of
/// round-robin over FCFS (the headline the policy layer exists for).
#[derive(Debug, Serialize)]
struct TenantMixReport {
    requests: usize,
    tenants: usize,
    runs: Vec<TenantMixPolicyRun>,
    /// `jain(wrr) - jain(fcfs)`: positive means round-robin out-fairs FCFS
    /// under overload.
    wrr_jain_gain_vs_fcfs: f64,
    /// `jain(slo-edf) - jain(fcfs)`.
    slo_edf_jain_gain_vs_fcfs: f64,
}

/// One dispatch policy evaluated on the mixed A10G+L4 prefill fleet.
#[derive(Debug, Serialize)]
struct HeteroFleetPolicyRun {
    policy: String,
    /// Best wall-clock seconds of one full simulation run.
    secs: f64,
    /// Average JCT of the run (seconds; deterministic).
    average_jct: f64,
    /// Per-prefill-group utilization, in group order.
    per_group_utilization: Vec<f64>,
    /// Per-prefill-group completed requests, in group order.
    per_group_completed: Vec<f64>,
}

/// The heterogeneous-fleet section: the `hetero_fleet` grid (mixed A10G+L4
/// prefill fleet under every dispatch policy vs the uniform A10G fleet of
/// equal instance count) plus the two JCT headlines the fleet API exists for.
#[derive(Debug, Serialize)]
struct HeteroFleetReport {
    requests: usize,
    /// The uniform fleet under default (least-loaded) dispatch.
    uniform_secs: f64,
    uniform_avg_jct: f64,
    /// The mixed fleet, one run per dispatch policy.
    runs: Vec<HeteroFleetPolicyRun>,
    /// `1 - jct(mixed/least-loaded) / jct(uniform)`: the value of swapping
    /// half the A10G instances for L4s under load-only dispatch.
    mixed_jct_reduction_vs_uniform: f64,
    /// `1 - jct(mixed/fastest-eligible) / jct(mixed/least-loaded)`: the
    /// additional value of group-aware dispatch on the mixed fleet (the
    /// headline; must stay positive).
    fastest_eligible_jct_gain_vs_least_loaded: f64,
}

/// One fault-storm scenario: wall-clock plus the resilience sensors.
#[derive(Debug, Serialize)]
struct FaultStormScenarioRun {
    /// Scenario label, `fabric/fault` shaped (e.g. `graph/tor`).
    scenario: String,
    /// Best wall-clock seconds of one full simulation run.
    secs: f64,
    /// Average JCT of the run (seconds; deterministic).
    average_jct: f64,
    completed: usize,
    aborted: usize,
    transfer_retries: usize,
    /// Replicas failed by the widest single fault of the scenario.
    blast_radius: usize,
    /// Completions per second inside the fault windows.
    degraded_goodput: f64,
    /// Memory-wait drain time after recovery (seconds).
    recovery_drain_secs: f64,
}

/// The fault-storm section: the interleaved Flat vs LinkGraph fault-free A/B
/// (what the flow-based fabric costs on the unchanged default path) plus one
/// run per fault scenario with the resilience sensors. The `flat/no-fault`
/// run is asserted bit-identical to the plain pre-topology simulation before
/// timing, so this section doubles as the retained-reference guard at bench
/// scale.
#[derive(Debug, Serialize)]
struct FaultStormReport {
    requests: usize,
    /// Best wall-clock of the fault-free run on the flat fabric.
    flat_secs: f64,
    /// Best wall-clock of the identical workload on the link-graph fabric.
    graph_secs: f64,
    /// `100 * (graph_secs / flat_secs - 1)`: the link-graph fabric's cost.
    graph_overhead_percent: f64,
    /// Average JCT of the `flat/no-fault` anchor. Deterministic, so
    /// `--compare` flags *any* drift against the committed baseline as a
    /// semantic regression rather than noise.
    flat_avg_jct: f64,
    /// One run per scenario of [`FaultStormExperiment::scenarios`].
    runs: Vec<FaultStormScenarioRun>,
}

/// One MTBF grid point of the availability sweep: the pooled SLO sensors of
/// every fault seed at that failure rate.
#[derive(Debug, Serialize)]
struct AvailabilityGridRun {
    /// Mean time between failures of this grid point (seconds).
    mtbf_s: f64,
    /// Completed / offered requests, pooled across the fault seeds.
    availability: f64,
    /// `-log10(1 - availability)`, capped at 9 for a loss-free sample.
    nines: f64,
    /// Pooled p99 JCT (seconds; nearest rank).
    p99_jct_s: f64,
    /// Pooled p999 JCT (seconds; nearest rank).
    p999_jct_s: f64,
    /// Summed fault downtime (domain-seconds).
    downtime_s: f64,
    /// Summed link-degradation exposure (link-seconds below nominal).
    degraded_link_secs: f64,
    abandoned: usize,
    aborted: usize,
    transfer_retries: usize,
    /// Flows ECMP-rerouted across surviving spine blocks.
    rerouted_flows: usize,
    /// Fault events the MTBF/MTTR model generated across the pooled runs.
    generated_faults: usize,
}

/// The availability section: a Monte-Carlo sweep over MTBF grid × fault
/// seeds on the redundant-spine fabric, with plans generated from per-domain
/// exponential failure/repair processes. The grid is a pure function of the
/// experiment, so at equal scale `--compare` flags *any* drift on the pooled
/// sensors as a semantic regression rather than noise.
#[derive(Debug, Serialize)]
struct AvailabilityReport {
    /// Requests per run (each grid cell replays the identical trace).
    requests: usize,
    /// Fault seeds pooled per grid point.
    fault_seeds: usize,
    /// Redundant spine blocks of the swept fabric.
    spines: usize,
    /// Best wall-clock seconds of the full sweep (every grid point × seed).
    sweep_secs: f64,
    /// Availability of the harshest (shortest-MTBF) grid point — the
    /// deterministic headline anchor.
    worst_availability: f64,
    /// One pooled entry per MTBF grid value, harshest first.
    points: Vec<AvailabilityGridRun>,
}

/// One `(shape, policy)` cell of the autoscaling Pareto grid: the cost and
/// SLO axes of one scaling policy on one time-warped trace.
#[derive(Debug, Serialize)]
struct AutoscaleGridRun {
    /// Trace shape (`diurnal` / `bursty`).
    shape: String,
    /// Scaling policy (`off` / `threshold` / `target-util` / `predictive`).
    policy: String,
    /// Fraction of offered requests finishing within the JCT target.
    slo_attainment: f64,
    /// Mean JCT of the completed requests (seconds).
    mean_jct_s: f64,
    /// p99 JCT of the completed requests (seconds, nearest-rank).
    p99_jct_s: f64,
    /// GPU dollars billed (racked uptime × per-group `$`/GPU-hour).
    gpu_dollars: f64,
    /// GPU dollars per thousand generated tokens.
    dollars_per_1k_tokens: f64,
    /// Scale-up orders placed by the controller.
    scale_ups: usize,
    /// Scale-downs completed (drained replicas released).
    scale_downs: usize,
    /// On the shape's cost-vs-attainment Pareto frontier.
    pareto: bool,
}

/// The autoscale section: the cost-vs-SLO Pareto sweep of every scaling
/// policy over the diurnal/bursty traces, plus the Off-identity A/B. The
/// traces are deterministic time-warps of one seeded Poisson draw, so at
/// equal scale every cell is exact and `--compare` flags *any* drift on the
/// cost/SLO sensors as a semantic regression rather than noise.
#[derive(Debug, Serialize)]
struct AutoscaleReport {
    /// Requests per cell (each cell replays the identical shaped trace).
    requests: usize,
    /// JCT target the attainment axis is measured against (seconds).
    slo_jct_s: f64,
    /// Best wall-clock seconds of the full sweep (every shape × policy).
    sweep_secs: f64,
    /// `100 * (inert_secs / off_secs - 1)`: what an armed-but-never-firing
    /// controller costs over the scaling-free run loop (interleaved A/B,
    /// best-of per path). The retained-reference claim is that `Off` skips
    /// the controller entirely, so this measures the *armed* overhead only.
    controller_overhead_percent: f64,
    /// Diurnal-trace savings of the cheapest frontier policy vs the static
    /// fleet: `100 * (1 - min_frontier_dollars / off_dollars)`. The headline
    /// elastic-fleet anchor — deterministic, so `--compare` pins it.
    diurnal_savings_percent: f64,
    /// One entry per `(shape, policy)` cell, shapes then policies in sweep
    /// order.
    points: Vec<AutoscaleGridRun>,
}

/// One (mix, cache, dispatch) cell of the session-cache grid: wall-clock plus
/// the cache sensors.
#[derive(Debug, Serialize)]
struct SessionCacheCellRun {
    /// Cell label, `mix/cache/dispatch` shaped (e.g. `chat/on/session-affinity`).
    cell: String,
    /// Best wall-clock seconds of one full simulation run.
    secs: f64,
    /// Mean JCT of the run (seconds; deterministic).
    mean_jct_s: f64,
    /// Prefix-cache hits over hits plus misses (0 for the cache-off cells).
    hit_rate: f64,
    /// Prefill compute-seconds the cache avoided.
    prefill_s_saved: f64,
    /// Quantized KV bytes whose prefill and transfer the cache avoided.
    bytes_saved: f64,
    /// Resident prefixes dropped by eviction or invalidation.
    prefix_evictions: usize,
    completed: usize,
}

/// The session-cache section: the interleaved Off vs armed-idle A/B on a
/// sessionless trace (what arming the cache costs when nothing can hit — the
/// retained-reference guard at bench scale; the runs are asserted identical
/// before timing) plus one run per (mix, cache, dispatch) cell of the
/// [`SessionCacheExperiment`] grid with the cache sensors.
#[derive(Debug, Serialize)]
struct SessionCacheReport {
    /// Requests of the sessionless A/B trace.
    ab_requests: usize,
    /// Sessions per stream of the grid workloads.
    sessions: usize,
    /// Best wall-clock of the cache-off run on the sessionless trace.
    off_secs: f64,
    /// Best wall-clock of the armed-but-idle run on the identical trace.
    armed_idle_secs: f64,
    /// `100 * (armed_idle_secs / off_secs - 1)`: the pure cost of arming the
    /// cache (per-dispatch lookups that never hit, zero insertions).
    cache_overhead_percent: f64,
    /// Hit rate of the `chat/on/session-affinity` cell. Deterministic, so
    /// `--compare` pins it exactly at equal scale.
    chat_hit_rate: f64,
    /// `100 * (1 - jct(chat/on/session-affinity) / jct(chat/off))`: the
    /// headline the cache exists for (must stay positive).
    chat_jct_reduction_percent: f64,
    /// One entry per (mix, cache, dispatch) cell, in sweep order.
    runs: Vec<SessionCacheCellRun>,
}

/// The telemetry A/B: the headline cluster run with [`TelemetryConfig::Off`]
/// vs fully instrumented, same seed. `Off` must stay bit- and cost-identical
/// to the pre-telemetry simulator, and the instrumented run must stay within
/// a few percent of it (CI flags `overhead_percent` > 5).
#[derive(Debug, Serialize)]
struct TelemetryOverheadReport {
    requests: usize,
    /// Best wall-clock seconds of the telemetry-off run.
    off_secs: f64,
    /// Best wall-clock seconds of the telemetry-on run (spans + sampler).
    on_secs: f64,
    /// `100 * (on/off - 1)`.
    overhead_percent: f64,
    /// Lifecycle spans recorded by the instrumented run.
    spans: usize,
    /// Time-series points recorded by the instrumented run.
    samples: usize,
}

#[derive(Debug, Serialize)]
struct SimReport {
    schema: &'static str,
    scale: &'static str,
    /// Slab vs pre-change boxed engine on a 1M+-event seeded cluster run
    /// (short-output IMDb workload: the engine, not the cost model, dominates).
    cluster_run_requests: usize,
    engine_cluster_run: EngineComparison,
    /// Slab vs boxed on a pure engine event storm (no cluster cost model at
    /// all): isolates queue + payload-allocation overhead.
    engine_event_storm: EngineComparison,
    /// Telemetry on vs off on the headline cluster run (see PERF.md,
    /// "Telemetry overhead").
    telemetry_overhead: TelemetryOverheadReport,
    /// Memoized cost tables vs the reference summation loops.
    sim_cost: SimCostReport,
    /// The multi-tenant scheduling grid (see PERF.md, "Multi-tenant
    /// scenarios").
    tenant_mix: TenantMixReport,
    /// The heterogeneous-fleet dispatch grid (see PERF.md, "Heterogeneous
    /// fleets").
    hetero_fleet: HeteroFleetReport,
    /// The fault-storm robustness grid and the Flat-vs-LinkGraph fabric A/B
    /// (see PERF.md, "Fault storms").
    fault_storm: FaultStormReport,
    /// The MTBF/MTTR-generated availability SLO sweep (see PERF.md,
    /// "Availability sweeps").
    availability: AvailabilityReport,
    /// The autoscaling cost-vs-SLO Pareto grid and the Off-identity A/B (see
    /// PERF.md, "Autoscaling sweeps").
    autoscale: AutoscaleReport,
    /// The session prefix-cache grid and the Off vs armed-idle A/B (see
    /// PERF.md, "Session-cache sweeps").
    session_cache: SessionCacheReport,
    benches: Vec<Bench>,
}

/// Times `f`: one warmup call, then `iters` timed calls; returns the minimum
/// per-call wall-clock (robust against scheduler interference).
fn time_iters<R>(iters: u64, mut f: impl FnMut() -> R) -> f64 {
    black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn push(benches: &mut Vec<Bench>, name: &str, config: String, iters: u64, secs: f64) {
    println!("  {name:<38} {config:<24} {:>12.3} us/iter", secs * 1e6);
    benches.push(Bench {
        name: name.to_string(),
        config,
        iters,
        seconds_per_iter: secs,
    });
}

fn decode_shape_tensors(l_kv: usize, partition: usize) -> (QuantizedTensor, QuantizedTensor) {
    let d_h = 128;
    let mut rng = DetRng::new(1);
    let q = Matrix::random_normal(1, d_h, 0.0, 1.0, &mut rng);
    let k = Matrix::random_normal(l_kv, d_h, 0.0, 1.0, &mut rng);
    let qq = QuantizedTensor::quantize_rows(
        &q,
        QuantBits::Int8,
        partition,
        RoundingMode::Nearest,
        &mut rng,
    );
    let qk = QuantizedTensor::quantize_rows(
        &k,
        QuantBits::Int2,
        partition,
        RoundingMode::Nearest,
        &mut rng,
    );
    (qq, qk)
}

fn qkv(tokens: usize, d_h: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = DetRng::new(seed);
    (
        Matrix::random_normal(tokens, d_h, 0.0, 1.0, &mut rng),
        Matrix::random_normal(tokens, d_h, 0.0, 1.0, &mut rng),
        Matrix::random_normal(tokens, d_h, 0.0, 1.0, &mut rng),
    )
}

fn kv_matrix(tokens: usize, channels: usize) -> Matrix {
    let mut rng = DetRng::new(1);
    let mut m = Matrix::zeros(tokens, channels);
    for ch in 0..channels {
        let mut value = rng.normal_f32(0.0, 1.0);
        for t in 0..tokens {
            value += rng.normal_f32(0.0, 0.05);
            m.set(t, ch, value + ((ch % 5) as f32 - 2.0) * 0.3);
        }
    }
    m
}

#[allow(clippy::too_many_lines)]
fn kernel_benches(smoke: bool) -> KernelsReport {
    let mut benches = Vec::new();
    println!("== kernel benches ==");

    // --- Quantization (ported from benches/kernels.rs). ---
    let quant_tokens: &[usize] = if smoke { &[64] } else { &[256, 1024] };
    for &tokens in quant_tokens {
        let mut rng = DetRng::new(2);
        let m = Matrix::random_normal(tokens, 128, 0.0, 1.0, &mut rng);
        let iters = if smoke { 3 } else { 20 };
        let secs = time_iters(iters, || {
            let mut rng = DetRng::new(3);
            QuantizedTensor::quantize_rows(
                &m,
                QuantBits::Int2,
                64,
                RoundingMode::Stochastic,
                &mut rng,
            )
        });
        push(
            &mut benches,
            "quantize_2bit",
            format!("tokens={tokens}"),
            iters,
            secs,
        );
    }

    // --- Homomorphic matmul: blocked vs scalar reference vs dequant path. ---
    let lkvs: &[usize] = if smoke { &[256] } else { &[512, 2048] };
    let mut speedups = Vec::new();
    for &l_kv in lkvs {
        let (qq, qk) = decode_shape_tensors(l_kv, 64);
        let iters = if smoke { 5 } else { 50 };
        let optimized = time_iters(iters, || homomorphic_matmul(&qq, &qk));
        let scalar = time_iters(iters, || {
            reference::homomorphic_matmul_scalar(&qq, &qk, true)
        });
        let no_se = time_iters(iters, || homomorphic_matmul_no_se(&qq, &qk));
        let dequant = time_iters(iters, || dequant_matmul(&qq, &qk));
        push(
            &mut benches,
            "score_matmul/homomorphic_se",
            format!("l_kv={l_kv}"),
            iters,
            optimized,
        );
        push(
            &mut benches,
            "score_matmul/homomorphic_se_scalar_ref",
            format!("l_kv={l_kv}"),
            iters,
            scalar,
        );
        push(
            &mut benches,
            "score_matmul/homomorphic_no_se",
            format!("l_kv={l_kv}"),
            iters,
            no_se,
        );
        push(
            &mut benches,
            "score_matmul/dequantize_then_matmul",
            format!("l_kv={l_kv}"),
            iters,
            dequant,
        );
        speedups.push(MatmulSpeedup {
            l_kv,
            optimized_secs: optimized,
            scalar_reference_secs: scalar,
            speedup: scalar / optimized,
        });
    }

    // --- Partition-size sweep. ---
    let sweep_lkv = if smoke { 256 } else { 1024 };
    for partition in [32usize, 64, 128] {
        let (qq, qk) = decode_shape_tensors(sweep_lkv, partition);
        let iters = if smoke { 5 } else { 50 };
        let secs = time_iters(iters, || homomorphic_matmul(&qq, &qk));
        push(
            &mut benches,
            "homomorphic_matmul_partition_sweep",
            format!("partition={partition},l_kv={sweep_lkv}"),
            iters,
            secs,
        );
    }

    // --- Code packing (ported from benches/kernels.rs). ---
    let pack_n = if smoke { 16 * 1024 } else { 128 * 1024 };
    let mut rng = DetRng::new(4);
    let codes: Vec<u8> = (0..pack_n).map(|_| rng.range_usize(0, 4) as u8).collect();
    let iters = if smoke { 10 } else { 100 };
    let secs = time_iters(iters, || pack_codes(&codes, QuantBits::Int2));
    push(
        &mut benches,
        "pack_codes_2bit",
        format!("codes={pack_n}"),
        iters,
        secs,
    );
    let packed = pack_codes(&codes, QuantBits::Int2);
    let secs = time_iters(iters, || {
        unpack_codes(&packed, QuantBits::Int2, codes.len())
    });
    push(
        &mut benches,
        "unpack_codes_2bit",
        format!("codes={pack_n}"),
        iters,
        secs,
    );

    // --- Attention prefill kernels (ported from benches/attention.rs). ---
    let prefill_tokens = if smoke { 64 } else { 256 };
    let (q, k, v) = qkv(prefill_tokens, 64, 1);
    let iters = if smoke { 2 } else { 10 };
    let secs = time_iters(iters, || {
        baseline_attention(&q, &k, &v, AttentionMask::Causal)
    });
    push(
        &mut benches,
        "prefill_attention/baseline_fp32",
        format!("tokens={prefill_tokens}"),
        iters,
        secs,
    );
    let secs = time_iters(iters, || {
        flash_attention(&q, &k, &v, AttentionMask::Causal, 64)
    });
    push(
        &mut benches,
        "prefill_attention/flash_tiled",
        format!("tokens={prefill_tokens}"),
        iters,
        secs,
    );
    let secs = time_iters(iters, || {
        let mut rng = DetRng::new(2);
        hack_prefill_attention(&q, &k, &v, HackConfig::paper_default(), &mut rng)
    });
    push(
        &mut benches,
        "prefill_attention/hack_homomorphic",
        format!("tokens={prefill_tokens}"),
        iters,
        secs,
    );

    // --- Decode step + append (ported from benches/attention.rs). ---
    let decode_tokens = if smoke { 256 } else { 1024 };
    let (_, k, v) = qkv(decode_tokens, 64, 3);
    for (name, cfg) in [
        ("hack", HackConfig::paper_default()),
        ("hack_no_se", HackConfig::without_summation_elimination()),
        ("hack_no_rqe", HackConfig::without_requant_elimination()),
    ] {
        let mut rng = DetRng::new(4);
        let state = HackKvState::from_prefill(&k, &v, cfg, &mut rng);
        let q_row = vec![0.1f32; 64];
        let iters = if smoke { 3 } else { 30 };
        let secs = time_iters(iters, || {
            let mut rng = DetRng::new(5);
            state.decode_attention(&q_row, &mut rng)
        });
        push(
            &mut benches,
            "decode_step",
            format!("variant={name},kv={decode_tokens}"),
            iters,
            secs,
        );
    }
    for (name, cfg) in [
        ("with_rqe", HackConfig::paper_default()),
        ("without_rqe", HackConfig::without_requant_elimination()),
    ] {
        // Prefill-state construction stays outside the timed closure (the
        // deleted criterion bench used iter_batched for the same reason);
        // each iteration clones the state and appends a burst of tokens large
        // enough that the append path — where the RQE ablation actually
        // differs — dominates the clone. A clone-only row records the floor
        // so the append rows can be read net of it.
        let mut rng = DetRng::new(7);
        let base = HackKvState::from_prefill(&k, &v, cfg, &mut rng);
        let row = vec![0.3f32; 64];
        let appends = 64;
        let iters = if smoke { 3 } else { 20 };
        let secs = time_iters(iters, || base.clone());
        push(
            &mut benches,
            "append_token",
            format!("variant={name}_clone_only,kv={decode_tokens}"),
            iters,
            secs,
        );
        let secs = time_iters(iters, || {
            let mut state = base.clone();
            let mut rng = DetRng::new(8);
            for _ in 0..appends {
                state.append_token(&row, &row, &mut rng);
            }
            state
        });
        push(
            &mut benches,
            "append_token",
            format!("variant={name},kv={decode_tokens},appends={appends}"),
            iters,
            secs,
        );
    }

    // --- Baseline codecs (ported from benches/codecs.rs). ---
    let (codec_tokens, codec_channels) = if smoke { (128, 64) } else { (512, 128) };
    let m = kv_matrix(codec_tokens, codec_channels);
    let codecs: Vec<(&str, Box<dyn KvCompressor>)> = vec![
        ("kvquant_2bit", Box::new(KvQuantLike::default())),
        ("cachegen_delta_entropy", Box::new(CacheGenLike::default())),
        ("fp8_e4m3", Box::new(MinifloatCast::fp8(Fp8Format::E4M3))),
        ("fp4_e2m1", Box::new(MinifloatCast::fp4())),
    ];
    for (name, codec) in &codecs {
        let iters = if smoke { 3 } else { 20 };
        let secs = time_iters(iters, || {
            let mut rng = DetRng::new(2);
            codec.compress(&m, &mut rng)
        });
        push(
            &mut benches,
            "kv_codec_compress",
            format!("codec={name},{codec_tokens}x{codec_channels}"),
            iters,
            secs,
        );
        let mut rng = DetRng::new(3);
        let compressed = codec.compress(&m, &mut rng);
        let secs = time_iters(iters, || codec.decompress(&compressed));
        push(
            &mut benches,
            "kv_codec_decompress",
            format!("codec={name},{codec_tokens}x{codec_channels}"),
            iters,
            secs,
        );
    }

    KernelsReport {
        schema: "hack-bench/kernels/v1",
        scale: if smoke { "smoke" } else { "full" },
        quantized_matmul_speedup: speedups,
        benches,
    }
}

/// A self-scheduling engine component: every delivery fans out two more events
/// until the budget is exhausted — a pure queue/payload workload.
mod storm {
    use hack_sim::{EngineMode, Event, EventHandler, Simulation, SimulationContext};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Burst {
        depth: u32,
    }

    struct Echo {
        ctx: SimulationContext,
        budget: u64,
    }

    impl EventHandler for Echo {
        fn on(&mut self, event: Event) {
            if let Some(burst) = event.get::<Burst>() {
                if self.budget > 0 {
                    self.budget -= 1;
                    let delay = 0.5 + (burst.depth % 7) as f64 * 0.25;
                    self.ctx.emit_self(
                        Burst {
                            depth: burst.depth + 1,
                        },
                        delay,
                    );
                    self.ctx.emit_self(
                        Burst {
                            depth: burst.depth + 2,
                        },
                        delay * 2.0,
                    );
                }
            }
        }
    }

    /// Runs the storm until ~`2 * budget` events are processed; returns the count.
    pub fn run(mode: EngineMode, budget: u64) -> u64 {
        let mut sim = Simulation::with_mode(7, mode);
        let ctx = sim.create_context("echo");
        let echo = Rc::new(RefCell::new(Echo { ctx, budget }));
        echo.borrow().ctx.emit_self(Burst { depth: 0 }, 0.0);
        sim.add_handler("echo", echo);
        sim.run();
        sim.processed_count()
    }
}

/// Times `run` in both engine modes, alternating Boxed/Slab twice and keeping
/// the best per mode, and verifies both modes report the same event count.
fn compare_engines(label: &str, mut run: impl FnMut(EngineMode) -> u64) -> EngineComparison {
    let mut best = [f64::INFINITY; 2]; // [slab, boxed]
    let mut events = [0u64; 2];
    for _round in 0..2 {
        for (slot, mode) in [(1, EngineMode::Boxed), (0, EngineMode::Slab)] {
            let start = Instant::now();
            let count = run(mode);
            best[slot] = best[slot].min(start.elapsed().as_secs_f64());
            events[slot] = count;
        }
    }
    assert_eq!(
        events[0], events[1],
        "{label}: modes must process identically"
    );
    let cmp = EngineComparison {
        events_processed: events[0],
        slab_secs: best[0],
        boxed_secs: best[1],
        reduction_percent: 100.0 * (1.0 - best[0] / best[1]),
    };
    println!(
        "  {label}: {} events, slab {:.3}s vs boxed {:.3}s ({:+.1}% wall-clock)",
        cmp.events_processed, cmp.slab_secs, cmp.boxed_secs, -cmp.reduction_percent
    );
    cmp
}

fn sim_benches(smoke: bool) -> SimReport {
    let mut benches = Vec::new();
    println!("== simulator benches ==");

    // --- Headline comparison 1: a seeded cluster run, slab vs boxed engine.
    // The components emit 4 events per request, so the full-scale run processes
    // well over one million engine events; the short-output IMDb workload keeps
    // the analytic cost model cheap so the engine dominates the wall-clock. ---
    let requests = if smoke { 2_000 } else { 300_000 };
    let experiment = JctExperiment {
        num_requests: requests,
        rps: Some(2.0),
        ..JctExperiment::new(ModelKind::Llama31_70B, GpuKind::A10G, Dataset::Imdb)
    };
    let simulator = Simulator::new(experiment.simulation_config(Method::hack()));
    let mut last_result: Option<hack_cluster::SimulationResult> = None;
    let engine_cluster_run = compare_engines("cluster_run", |mode| {
        let (result, events) = simulator.run_counted(mode);
        if let Some(prev) = &last_result {
            assert_eq!(prev, &result, "engine modes must agree bit-for-bit");
        }
        last_result = Some(result);
        events
    });

    // --- Telemetry A/B: the same headline run, telemetry off vs fully
    // instrumented (lifecycle spans + the periodic sampler). Off is the
    // retained-reference claim (bit- and cost-identical to the pre-telemetry
    // simulator); On must stay within a few percent. ---
    let telemetry_overhead = {
        let reference = last_result.clone().expect("cluster_run populated it");
        // ~1000 sampler ticks across the run, matching how the exporter is
        // meant to be used at this scale.
        let interval = (reference.makespan / 1000.0).max(1.0);
        let mut on_config = experiment.simulation_config(Method::hack());
        on_config.telemetry = hack_cluster::TelemetryConfig::with_interval(interval);
        let sim_on = Simulator::new(on_config);
        let iters = if smoke { 2 } else { 3 };
        // Interleaved A/B (off, on, off, on, ...), best-of per path: on a
        // noisy box, consecutive same-path blocks pick up allocator and
        // scheduler drift that would bias the ratio either way.
        black_box(simulator.run());
        black_box(sim_on.run_with_telemetry());
        let mut off_secs = f64::INFINITY;
        let mut on_secs = f64::INFINITY;
        let mut telemetry = None;
        for _ in 0..iters {
            let start = Instant::now();
            black_box(simulator.run());
            off_secs = off_secs.min(start.elapsed().as_secs_f64());
            let start = Instant::now();
            let (result, tel) = sim_on.run_with_telemetry();
            black_box(result);
            on_secs = on_secs.min(start.elapsed().as_secs_f64());
            telemetry = tel;
        }
        let telemetry = telemetry.expect("telemetry-on run records");
        assert_eq!(
            &reference,
            &sim_on.run_with_telemetry().0,
            "telemetry must not perturb the headline run"
        );
        let report = TelemetryOverheadReport {
            requests,
            off_secs,
            on_secs,
            overhead_percent: 100.0 * (on_secs / off_secs - 1.0),
            spans: telemetry.spans().len(),
            samples: telemetry.series().iter().map(|s| s.points.len()).sum(),
        };
        println!(
            "  telemetry_overhead: off {:.3}s -> on {:.3}s ({:+.2}%, {} spans, {} samples)",
            report.off_secs, report.on_secs, report.overhead_percent, report.spans, report.samples
        );
        push(
            &mut benches,
            "telemetry_on_cluster_run",
            format!("requests={requests}"),
            iters,
            on_secs,
        );
        report
    };

    // --- Headline comparison 2: pure engine event storm (queue + payload
    // churn only). ---
    let storm_budget = if smoke { 50_000 } else { 600_000 };
    let engine_event_storm = compare_engines("event_storm", |mode| storm::run(mode, storm_budget));

    // --- sim_cost 1: decode_durations, prefix-sum table vs reference loop,
    // over a realistic long-prompt trace. ---
    let micro_requests = if smoke { 200 } else { 2_000 };
    let micro_trace = TraceGenerator::new(hack_workload::trace::TraceConfig {
        dataset: Dataset::Cocktail,
        rps: 0.1,
        num_requests: micro_requests,
        max_context: ModelKind::Llama31_70B.spec().max_context,
        seed: 5,
    })
    .generate();
    let decode_model = ReplicaCostModel::new(
        ModelKind::Llama31_70B.spec(),
        GpuKind::A100.spec(),
        Parallelism::table3(ModelKind::Llama31_70B, GpuKind::A100),
    );
    let profile = Method::hack().profile();
    let batch = decode_model.params.decode_batch;
    let max_kv = micro_trace
        .iter()
        .map(Request::total_tokens)
        .max()
        .unwrap_or(1);
    let table = DecodeCostTable::build(&decode_model, &profile, batch, max_kv);
    let iters = if smoke { 5 } else { 30 };
    let loop_pass = || {
        micro_trace
            .iter()
            .map(|r| {
                let (d, q) = decode_model.decode_durations_reference(
                    &profile,
                    batch,
                    r.input_len,
                    r.output_len,
                );
                d + q
            })
            .sum::<f64>()
    };
    let table_pass = || {
        micro_trace
            .iter()
            .map(|r| {
                let (d, q) = table.decode_durations(r.input_len, r.output_len);
                d + q
            })
            .sum::<f64>()
    };
    // The two passes must agree (prefix sums only reorder the summation).
    let (loop_total, table_total) = (loop_pass(), table_pass());
    assert!(
        (loop_total - table_total).abs() <= 1e-9 * loop_total.abs(),
        "cost-table pass diverged from the loop: {table_total} vs {loop_total}"
    );
    let loop_secs = time_iters(iters, loop_pass);
    let table_secs = time_iters(iters, table_pass);
    push(
        &mut benches,
        "sim_cost/decode_durations",
        format!("path=loop,requests={micro_requests}"),
        iters,
        loop_secs,
    );
    push(
        &mut benches,
        "sim_cost/decode_durations",
        format!("path=table,requests={micro_requests}"),
        iters,
        table_secs,
    );
    let decode_durations = DecodeDurationsMicrobench {
        dataset: "Cocktail",
        requests: micro_requests,
        output_tokens: micro_trace.iter().map(|r| r.output_len as u64).sum(),
        loop_secs,
        table_secs,
        speedup: loop_secs / table_secs,
    };
    println!(
        "  sim_cost/decode_durations: {:.1}x (loop {:.1} us vs table {:.2} us per {} requests)",
        decode_durations.speedup,
        loop_secs * 1e6,
        table_secs * 1e6,
        micro_requests
    );

    // --- sim_cost 2: the headline cluster run under both cost modes. ---
    let mut best = [f64::INFINITY; 2]; // [table, reference]
    let mut jcts = [0.0f64; 2];
    for _round in 0..2 {
        for (slot, costs) in [(1, CostMode::Reference), (0, CostMode::Table)] {
            let start = Instant::now();
            let result = simulator.run_with_costs(costs);
            best[slot] = best[slot].min(start.elapsed().as_secs_f64());
            jcts[slot] = result.average_jct();
        }
    }
    assert!(
        (jcts[0] - jcts[1]).abs() <= 1e-9 * jcts[1].abs(),
        "cost modes disagree on the cluster run: {} vs {}",
        jcts[0],
        jcts[1]
    );
    let cluster_run_cost_model = CostModeComparison {
        table_secs: best[0],
        reference_secs: best[1],
        reduction_percent: 100.0 * (1.0 - best[0] / best[1]),
    };
    println!(
        "  sim_cost/cluster_run: table {:.3}s vs reference {:.3}s ({:+.1}% wall-clock)",
        cluster_run_cost_model.table_secs,
        cluster_run_cost_model.reference_secs,
        -cluster_run_cost_model.reduction_percent
    );

    // --- sim_cost 3: a full capacity bisection, cached vs reference. ---
    let probe_requests = if smoke { 20 } else { 40 };
    let bisect_experiment = JctExperiment {
        num_requests: probe_requests,
        ..JctExperiment::new(ModelKind::Llama31_70B, GpuKind::A10G, Dataset::Cocktail)
    };
    let bisect_iters = if smoke { 2 } else { 5 };
    let cached_rps = bisect_experiment.measured_max_rps();
    let reference_rps = bisect_experiment.measured_max_rps_reference();
    // Bit-identity of the two paths is pinned by test on the default configs
    // (hack-core jct_runner tests); the bench is a report, not a gate, so a
    // disagreement here — only possible if some probe JCT lands within ~1e-15
    // of the saturation threshold — warns instead of panicking mid-run.
    if cached_rps != reference_rps {
        println!(
            "  [warning] cached ({cached_rps}) and reference ({reference_rps}) bisections \
             disagree — a probe JCT sits on the saturation threshold; investigate"
        );
    }
    let cached_secs = time_iters(bisect_iters, || bisect_experiment.measured_max_rps());
    let reference_secs = time_iters(bisect_iters, || {
        bisect_experiment.measured_max_rps_reference()
    });
    push(
        &mut benches,
        "capacity_bisection",
        format!("path=cached,probe_requests={probe_requests}"),
        bisect_iters,
        cached_secs,
    );
    push(
        &mut benches,
        "capacity_bisection",
        format!("path=reference,probe_requests={probe_requests}"),
        bisect_iters,
        reference_secs,
    );
    let capacity_bisection = BisectionComparison {
        dataset: "Cocktail",
        probe_requests,
        max_rps: cached_rps,
        cached_secs,
        reference_secs,
        speedup: reference_secs / cached_secs,
    };
    println!(
        "  sim_cost/capacity_bisection: {:.2}x (cached {:.1} ms vs reference {:.1} ms, max_rps {:.4})",
        capacity_bisection.speedup,
        cached_secs * 1e3,
        reference_secs * 1e3,
        cached_rps
    );

    // --- tenant_mix: the two-tenant contention grid, one run per scheduling
    // policy. The timed closure is *only* the policy-driven simulation run —
    // trace generation and outcome aggregation stay outside so a slow policy
    // implementation is not diluted by policy-independent setup. ---
    let mut mix = TenantMixExperiment::interactive_vs_batch();
    if smoke {
        mix.tenants[0].num_requests = 8;
        mix.tenants[1].num_requests = 30;
    }
    let mix_requests = std::sync::Arc::new(mix.trace().generate());
    let mix_classes = mix.classes();
    let mix_iters = if smoke { 2 } else { 5 };
    let mut runs = Vec::new();
    for scheduling in SchedulingPolicyKind::all() {
        let config = mix.simulation_config(Method::hack(), scheduling);
        let simulator = Simulator::with_requests(config, mix_requests.clone());
        let secs = time_iters(mix_iters, || simulator.run());
        let outcome = hack_core::tenant_mix::TenantMixOutcome::from_result_with_classes(
            scheduling,
            &mix_classes,
            simulator.run(),
        );
        push(
            &mut benches,
            "tenant_mix/cluster_run",
            format!(
                "policy={},requests={}",
                scheduling.name(),
                mix.tenants.iter().map(|t| t.num_requests).sum::<usize>()
            ),
            mix_iters,
            secs,
        );
        runs.push(TenantMixPolicyRun {
            policy: scheduling.name().to_string(),
            secs,
            jain_fairness: outcome.jain_fairness,
            average_jct: outcome.average_jct,
            per_tenant_mean_jct: outcome.per_tenant.iter().map(|t| t.stats.mean).collect(),
            per_tenant_slo_attainment: outcome
                .slo
                .iter()
                .map(hack_metrics::tenant::TenantSlo::attainment)
                .collect(),
        });
    }
    let jain_of = |runs: &[TenantMixPolicyRun], policy: &str| {
        runs.iter()
            .find(|r| r.policy == policy)
            .map_or(f64::NAN, |r| r.jain_fairness)
    };
    let (fcfs_jain, wrr_jain, edf_jain) = (
        jain_of(&runs, "fcfs"),
        jain_of(&runs, "wrr"),
        jain_of(&runs, "slo-edf"),
    );
    let tenant_mix = TenantMixReport {
        requests: mix.tenants.iter().map(|t| t.num_requests).sum(),
        tenants: mix.tenants.len(),
        wrr_jain_gain_vs_fcfs: wrr_jain - fcfs_jain,
        slo_edf_jain_gain_vs_fcfs: edf_jain - fcfs_jain,
        runs,
    };
    println!(
        "  tenant_mix: jain fcfs {fcfs_jain:.3} / wrr {wrr_jain:.3} / slo-edf {edf_jain:.3} \
         (wrr gain {:+.3})",
        tenant_mix.wrr_jain_gain_vs_fcfs
    );

    // --- hetero_fleet: the mixed A10G+L4 prefill fleet under every dispatch
    // policy, against the uniform A10G fleet of equal instance count. As with
    // tenant_mix, only the policy-driven simulation run is timed. ---
    let mut hetero = HeteroFleetExperiment::paper_mixed();
    if smoke {
        hetero.num_requests = 25;
    }
    let hetero_iters = if smoke { 2 } else { 5 };
    let uniform_sim = Simulator::new(hetero.simulation_config(
        hetero.uniform_cluster(),
        Method::hack(),
        DispatchPolicyKind::LeastLoaded,
    ));
    let uniform_secs = time_iters(hetero_iters, || uniform_sim.run());
    let uniform_avg_jct = uniform_sim.run().average_jct();
    push(
        &mut benches,
        "hetero_fleet/cluster_run",
        format!("fleet=uniform,requests={}", hetero.num_requests),
        hetero_iters,
        uniform_secs,
    );
    let mut hetero_runs = Vec::new();
    for dispatch in DispatchPolicyKind::all() {
        let simulator = Simulator::new(hetero.simulation_config(
            hetero.mixed_cluster(),
            Method::hack(),
            dispatch,
        ));
        let secs = time_iters(hetero_iters, || simulator.run());
        let outcome = HeteroFleetOutcome::from_result(dispatch, simulator.run());
        push(
            &mut benches,
            "hetero_fleet/cluster_run",
            format!(
                "fleet=mixed,policy={},requests={}",
                dispatch.name(),
                hetero.num_requests
            ),
            hetero_iters,
            secs,
        );
        hetero_runs.push(HeteroFleetPolicyRun {
            policy: dispatch.name().to_string(),
            secs,
            average_jct: outcome.average_jct,
            per_group_utilization: outcome
                .prefill_groups
                .iter()
                .map(|g| g.utilization)
                .collect(),
            per_group_completed: outcome
                .prefill_groups
                .iter()
                .map(|g| g.completed as f64)
                .collect(),
        });
    }
    let jct_of = |runs: &[HeteroFleetPolicyRun], policy: &str| {
        runs.iter()
            .find(|r| r.policy == policy)
            .map_or(f64::NAN, |r| r.average_jct)
    };
    let (least_jct, fastest_jct) = (
        jct_of(&hetero_runs, "least-loaded"),
        jct_of(&hetero_runs, "fastest-eligible"),
    );
    let hetero_fleet = HeteroFleetReport {
        requests: hetero.num_requests,
        uniform_secs,
        uniform_avg_jct,
        runs: hetero_runs,
        mixed_jct_reduction_vs_uniform: 1.0 - least_jct / uniform_avg_jct,
        fastest_eligible_jct_gain_vs_least_loaded: 1.0 - fastest_jct / least_jct,
    };
    println!(
        "  hetero_fleet: uniform {uniform_avg_jct:.2}s / mixed least-loaded {least_jct:.2}s / \
         mixed fastest-eligible {fastest_jct:.2}s (mixed {:+.1}%, dispatch {:+.1}%)",
        -100.0 * hetero_fleet.mixed_jct_reduction_vs_uniform,
        -100.0 * hetero_fleet.fastest_eligible_jct_gain_vs_least_loaded
    );

    // --- fault_storm: the robustness grid. First the interleaved Flat vs
    // LinkGraph A/B on the identical fault-free workload — what the flow-based
    // fabric costs when nothing fails — then one run per fault scenario
    // reporting the resilience sensors. Before timing, the flat/no-fault run
    // is asserted bit-identical to the plain pre-topology simulation, so the
    // bench doubles as the retained-reference guard at bench scale. ---
    let mut storm = FaultStormExperiment::paper_storm();
    if smoke {
        storm.num_requests = 25;
    }
    let storm_scenarios = storm.scenarios();
    let storm_iters = if smoke { 2 } else { 5 };
    let flat_sim = Simulator::new(storm.simulation_config(&storm_scenarios[0], Method::hack()));
    let graph_sim = Simulator::new(storm.simulation_config(&storm_scenarios[1], Method::hack()));
    {
        let mut legacy = storm.simulation_config(&storm_scenarios[0], Method::hack());
        legacy.cluster = ClusterConfig::paper_default(storm.model, GpuKind::A10G);
        assert_eq!(
            flat_sim.run(),
            Simulator::new(legacy).run(),
            "the flat/no-fault anchor must be the pre-topology simulation, bit for bit"
        );
    }
    // Interleaved A/B (flat, graph, flat, graph, ...), best-of per fabric.
    black_box(flat_sim.run());
    black_box(graph_sim.run());
    let mut flat_secs = f64::INFINITY;
    let mut graph_secs = f64::INFINITY;
    for _ in 0..storm_iters {
        let start = Instant::now();
        black_box(flat_sim.run());
        flat_secs = flat_secs.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        black_box(graph_sim.run());
        graph_secs = graph_secs.min(start.elapsed().as_secs_f64());
    }
    let mut storm_runs = Vec::new();
    for (i, scenario) in storm_scenarios.iter().enumerate() {
        let simulator = Simulator::new(storm.simulation_config(scenario, Method::hack()));
        // The two fault-free rows reuse the interleaved A/B timings.
        let secs = match i {
            0 => flat_secs,
            1 => graph_secs,
            _ => time_iters(storm_iters, || simulator.run()),
        };
        let outcome = FaultStormOutcome::from_result(scenario.label, simulator.run());
        push(
            &mut benches,
            "fault_storm/cluster_run",
            format!(
                "scenario={},requests={}",
                scenario.label, storm.num_requests
            ),
            storm_iters,
            secs,
        );
        storm_runs.push(FaultStormScenarioRun {
            scenario: outcome.label,
            secs,
            average_jct: outcome.average_jct,
            completed: outcome.completed,
            aborted: outcome.aborted,
            transfer_retries: outcome.transfer_retries,
            blast_radius: outcome.blast_radius,
            degraded_goodput: outcome.degraded_goodput,
            recovery_drain_secs: outcome.recovery_drain_secs,
        });
    }
    let fault_storm = FaultStormReport {
        requests: storm.num_requests,
        flat_secs,
        graph_secs,
        graph_overhead_percent: 100.0 * (graph_secs / flat_secs - 1.0),
        flat_avg_jct: storm_runs[0].average_jct,
        runs: storm_runs,
    };
    let blast = |label: &str| {
        fault_storm
            .runs
            .iter()
            .find(|r| r.scenario == label)
            .map_or(0, |r| r.blast_radius)
    };
    println!(
        "  fault_storm: flat {:.3}s vs graph {:.3}s ({:+.2}% fabric overhead); \
         blast radius tor {} / nic {} / spine {}",
        fault_storm.flat_secs,
        fault_storm.graph_secs,
        fault_storm.graph_overhead_percent,
        blast("graph/tor"),
        blast("graph/nic"),
        blast("graph/spine")
    );

    // --- availability: the MTBF/MTTR Monte-Carlo sweep on the redundant-
    // spine fabric. Each grid point generates its fault plans from seeded
    // exponential failure/repair processes, so the pooled SLO curve is a pure
    // function of the experiment and `--compare` can pin it exactly. ---
    let mut sweep = AvailabilityExperiment::paper_sweep();
    if smoke {
        sweep.num_requests = 15;
        sweep.fault_seeds.truncate(2);
    }
    let sweep_iters = if smoke { 1 } else { 3 };
    let sweep_secs = time_iters(sweep_iters, || sweep.sweep(Method::hack()));
    push(
        &mut benches,
        "availability/sweep",
        format!(
            "grid={},seeds={},requests={}",
            sweep.mtbf_grid_s.len(),
            sweep.fault_seeds.len(),
            sweep.num_requests
        ),
        sweep_iters,
        sweep_secs,
    );
    let points: Vec<AvailabilityGridRun> = sweep
        .sweep(Method::hack())
        .into_iter()
        .map(|p| AvailabilityGridRun {
            mtbf_s: p.mtbf_s,
            availability: p.availability,
            nines: p.nines,
            p99_jct_s: p.p99_jct_s,
            p999_jct_s: p.p999_jct_s,
            downtime_s: p.downtime_s,
            degraded_link_secs: p.degraded_link_secs,
            abandoned: p.abandoned,
            aborted: p.aborted,
            transfer_retries: p.transfer_retries,
            rerouted_flows: p.rerouted_flows,
            generated_faults: p.generated_faults,
        })
        .collect();
    let availability = AvailabilityReport {
        requests: sweep.num_requests,
        fault_seeds: sweep.fault_seeds.len(),
        spines: sweep.spines,
        sweep_secs,
        worst_availability: points.first().map_or(1.0, |p| p.availability),
        points,
    };
    {
        let worst = availability.points.first();
        let best = availability.points.last();
        println!(
            "  availability: mtbf {:.0}s -> {:.4} ({:.2} nines, p99 {:.2}s) / mtbf {:.0}s -> {:.4}; \
             {} faults generated, {} flows rerouted",
            worst.map_or(0.0, |p| p.mtbf_s),
            availability.worst_availability,
            worst.map_or(0.0, |p| p.nines),
            worst.map_or(0.0, |p| p.p99_jct_s),
            best.map_or(0.0, |p| p.mtbf_s),
            best.map_or(1.0, |p| p.availability),
            availability.points.iter().map(|p| p.generated_faults).sum::<usize>(),
            availability.points.iter().map(|p| p.rerouted_flows).sum::<usize>(),
        );
    }

    // --- autoscale: the cost-vs-SLO Pareto sweep of every scaling policy on
    // the time-warped (diurnal / bursty) traces, plus the Off-identity A/B.
    // The shaped traces are deterministic in the experiment, so at equal
    // scale `--compare` can pin every cell exactly. ---
    let mut auto_e = AutoscaleExperiment::paper_sweep();
    if smoke {
        auto_e.num_requests = 20;
    }
    let auto_iters = if smoke { 1 } else { 3 };
    let auto_secs = time_iters(auto_iters, || auto_e.sweep(Method::hack()));
    push(
        &mut benches,
        "autoscale/sweep",
        format!(
            "shapes={},policies={},requests={}",
            TraceShape::all().len(),
            ScalingPolicyKind::all(auto_e.per_replica_rps).len(),
            auto_e.num_requests
        ),
        auto_iters,
        auto_secs,
    );
    let autoscale = {
        // Off-identity A/B: an armed controller whose watermarks can never
        // fire must reproduce the scaling-free run bit-for-bit — cost sensors
        // included — and the interleaved wall-clock ratio is the pure cost of
        // arming the controller (ticks + probe, zero orders). `Off` itself
        // skips the controller entirely, so its run loop is the pre-scaling
        // one; this measures what turning the dial from Off to inert costs.
        let inert = ScalingPolicyKind::Threshold {
            high: 1e18,
            low: -1.0,
        };
        let run = |scaling| auto_e.run_cell(TraceShape::Diurnal, scaling, Method::hack());
        let off_reference = run(ScalingPolicyKind::Off);
        assert_eq!(
            off_reference,
            run(inert),
            "an inert controller must be bit-identical to ScalingPolicyKind::Off"
        );
        assert_eq!(
            (off_reference.scale_ups, off_reference.scale_downs),
            (0, 0),
            "the static fleet must not scale"
        );
        let ab_iters = if smoke { 2 } else { 5 };
        let mut off_secs = f64::INFINITY;
        let mut inert_secs = f64::INFINITY;
        for _ in 0..ab_iters {
            let start = Instant::now();
            black_box(run(ScalingPolicyKind::Off));
            off_secs = off_secs.min(start.elapsed().as_secs_f64());
            let start = Instant::now();
            black_box(run(inert));
            inert_secs = inert_secs.min(start.elapsed().as_secs_f64());
        }
        let outcomes = auto_e.sweep(Method::hack());
        let off_dollars = outcomes
            .iter()
            .find(|o| o.shape == TraceShape::Diurnal && o.policy == ScalingPolicyKind::Off)
            .map_or(0.0, |o| o.gpu_dollars);
        let frontier_min = outcomes
            .iter()
            .filter(|o| o.shape == TraceShape::Diurnal && o.pareto)
            .map(|o| o.gpu_dollars)
            .fold(f64::INFINITY, f64::min);
        let diurnal_savings_percent = if off_dollars > 0.0 && frontier_min.is_finite() {
            100.0 * (1.0 - frontier_min / off_dollars)
        } else {
            0.0
        };
        let points: Vec<AutoscaleGridRun> = outcomes
            .iter()
            .map(|o| AutoscaleGridRun {
                shape: o.shape.name().to_string(),
                policy: o.policy.name().to_string(),
                slo_attainment: o.slo_attainment,
                mean_jct_s: o.mean_jct_s,
                p99_jct_s: o.p99_jct_s,
                gpu_dollars: o.gpu_dollars,
                dollars_per_1k_tokens: o.dollars_per_1k_tokens,
                scale_ups: o.scale_ups,
                scale_downs: o.scale_downs,
                pareto: o.pareto,
            })
            .collect();
        AutoscaleReport {
            requests: auto_e.num_requests,
            slo_jct_s: auto_e.slo_jct_s,
            sweep_secs: auto_secs,
            controller_overhead_percent: 100.0 * (inert_secs / off_secs - 1.0),
            diurnal_savings_percent,
            points,
        }
    };
    println!(
        "  autoscale: diurnal frontier spends {:.1}% less than the static fleet; \
         inert-controller A/B identical ({:+.2}% armed overhead); {} scale-ups / {} scale-downs across the grid",
        autoscale.diurnal_savings_percent,
        autoscale.controller_overhead_percent,
        autoscale.points.iter().map(|p| p.scale_ups).sum::<usize>(),
        autoscale.points.iter().map(|p| p.scale_downs).sum::<usize>(),
    );

    // --- session_cache: the session prefix-cache grid. First the interleaved
    // Off vs armed-idle A/B on a sessionless trace — with no parents and no
    // shared prefixes an armed cache never hits, never inserts and never
    // evicts, so the run must match the cache-off one exactly (asserted,
    // sensor shape aside, before timing) and the wall-clock ratio is the pure
    // cost of arming the cache. Then one run per (mix, cache, dispatch) cell
    // with the cache sensors. ---
    let session_cache = {
        use hack_cluster::CacheConfig;
        let ab_requests = if smoke { 500 } else { 20_000 };
        let ab_experiment = JctExperiment {
            num_requests: ab_requests,
            rps: Some(2.0),
            ..JctExperiment::new(ModelKind::Llama31_70B, GpuKind::A10G, Dataset::Imdb)
        };
        let off_sim = Simulator::new(ab_experiment.simulation_config(Method::hack()));
        let mut armed_config = ab_experiment.simulation_config(Method::hack());
        armed_config.cache = CacheConfig::on();
        let armed_sim = Simulator::new(armed_config);
        {
            let mut armed = armed_sim.run();
            assert_eq!(armed.prefix_hits + armed.prefix_misses, 0);
            assert!(armed.prefix_cache_peak_fraction.iter().all(|&f| f == 0.0));
            armed.prefix_cache_peak_fraction = Vec::new();
            assert_eq!(
                armed,
                off_sim.run(),
                "an armed-but-idle cache must be bit-identical to CacheConfig::Off"
            );
        }
        // Interleaved A/B (off, armed, off, armed, ...), best-of per path.
        let ab_iters = if smoke { 2 } else { 5 };
        black_box(off_sim.run());
        black_box(armed_sim.run());
        let mut off_secs = f64::INFINITY;
        let mut armed_idle_secs = f64::INFINITY;
        for _ in 0..ab_iters {
            let start = Instant::now();
            black_box(off_sim.run());
            off_secs = off_secs.min(start.elapsed().as_secs_f64());
            let start = Instant::now();
            black_box(armed_sim.run());
            armed_idle_secs = armed_idle_secs.min(start.elapsed().as_secs_f64());
        }

        let mut sessions = SessionCacheExperiment::paper_default();
        if smoke {
            sessions.sessions = 3;
        }
        let cell_iters = if smoke { 2 } else { 5 };
        let mut cell_runs = Vec::new();
        for mix in SessionMix::all() {
            let requests = std::sync::Arc::new(sessions.trace(mix).generate());
            for (cache, dispatch) in sessions.cells() {
                let config = sessions.simulation_config(
                    Method::hack(),
                    mix,
                    cache,
                    dispatch,
                    requests.len(),
                );
                let simulator = Simulator::with_requests(config, requests.clone());
                let secs = time_iters(cell_iters, || simulator.run());
                let outcome =
                    SessionCacheOutcome::from_result(mix, cache.is_on(), dispatch, simulator.run());
                push(
                    &mut benches,
                    "session_cache/cluster_run",
                    format!("cell={},requests={}", outcome.label(), requests.len()),
                    cell_iters,
                    secs,
                );
                cell_runs.push(SessionCacheCellRun {
                    cell: outcome.label(),
                    secs,
                    mean_jct_s: outcome.mean_jct,
                    hit_rate: outcome.hit_rate,
                    prefill_s_saved: outcome.prefill_seconds_saved,
                    bytes_saved: outcome.bytes_saved,
                    prefix_evictions: outcome.prefix_evictions,
                    completed: outcome.completed_requests,
                });
            }
        }
        let jct_of = |runs: &[SessionCacheCellRun], cell: &str| {
            runs.iter()
                .find(|r| r.cell == cell)
                .map_or(f64::NAN, |r| r.mean_jct_s)
        };
        let chat_off_jct = jct_of(&cell_runs, "chat/off/least-loaded");
        let chat_on = cell_runs
            .iter()
            .find(|r| r.cell == "chat/on/session-affinity")
            .expect("armed chat cell ran");
        SessionCacheReport {
            ab_requests,
            sessions: sessions.sessions,
            off_secs,
            armed_idle_secs,
            cache_overhead_percent: 100.0 * (armed_idle_secs / off_secs - 1.0),
            chat_hit_rate: chat_on.hit_rate,
            chat_jct_reduction_percent: 100.0 * (1.0 - chat_on.mean_jct_s / chat_off_jct),
            runs: cell_runs,
        }
    };
    println!(
        "  session_cache: armed-idle A/B identical ({:+.2}% overhead); chat hit rate {:.2}, \
         mean JCT {:+.1}% vs cache-off",
        session_cache.cache_overhead_percent,
        session_cache.chat_hit_rate,
        -session_cache.chat_jct_reduction_percent
    );

    // --- Per-method end-to-end runs (ported from benches/simulator.rs). ---
    let per_method_requests = if smoke { 10 } else { 200 };
    for method in Method::main_comparison() {
        let e = JctExperiment {
            num_requests: per_method_requests,
            ..JctExperiment::paper_default()
        };
        let iters = if smoke { 2 } else { 5 };
        let secs = time_iters(iters, || e.run(method));
        push(
            &mut benches,
            "cluster_sim",
            format!("method={},requests={per_method_requests}", method.name()),
            iters,
            secs,
        );
    }

    SimReport {
        schema: "hack-bench/sim/v9",
        scale: if smoke { "smoke" } else { "full" },
        cluster_run_requests: requests,
        engine_cluster_run,
        engine_event_storm,
        telemetry_overhead,
        sim_cost: SimCostReport {
            decode_durations,
            cluster_run_cost_model,
            capacity_bisection,
        },
        tenant_mix,
        hetero_fleet,
        fault_storm,
        availability,
        autoscale,
        session_cache,
        benches,
    }
}

fn write_json<T: Serialize>(path: &str, value: &T) {
    let json = serde_json::to_string_pretty(value).expect("serialise bench report");
    std::fs::write(path, json + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("[saved {path}]");
}

/// `--compare <baseline.json>`: diff the current run against previously
/// recorded reports. A *report*, never a gate — the process always exits 0;
/// regressions beyond the thresholds are flagged in the output for a human
/// (or the CI log reader) to judge.
mod compare {
    use serde_json::Value;
    use std::collections::BTreeMap;

    /// Flag a per-bench wall-clock delta beyond ±25%.
    const BENCH_DELTA_FLAG_PERCENT: f64 = 25.0;
    /// Flag a headline-ratio drop beyond 10% relative.
    const HEADLINE_DROP_FLAG: f64 = 0.10;
    /// Flag the telemetry-on run when it costs more than this over the
    /// telemetry-off run (an absolute budget, not a relative-to-baseline one:
    /// the retained-reference claim is "under 5% at full scale").
    const TELEMETRY_OVERHEAD_FLAG_PERCENT: f64 = 5.0;
    /// Flag the link-graph fabric when the fault-free run costs more than
    /// this over the flat fabric (the flow bookkeeping should stay cheap).
    const FABRIC_OVERHEAD_FLAG_PERCENT: f64 = 10.0;
    /// Flag an armed-but-idle prefix cache when it costs more than this over
    /// the cache-off run (the lookup fast path should stay near-free).
    const CACHE_OVERHEAD_FLAG_PERCENT: f64 = 5.0;

    /// Loads a baseline JSON, warning (not failing) on any problem.
    pub fn load(path: &str) -> Option<Value> {
        match std::fs::read_to_string(path) {
            Ok(text) => match serde_json::from_str(&text) {
                Ok(value) => Some(value),
                Err(err) => {
                    println!("[compare] cannot parse {path}: {err} — skipping");
                    None
                }
            },
            Err(err) => {
                println!("[compare] cannot read {path}: {err} — skipping");
                None
            }
        }
    }

    /// Which report family a JSON belongs to, from its `schema` tag.
    pub fn kind(value: &Value) -> Option<&'static str> {
        let schema = value.get_key("schema")?.as_str()?;
        if schema.starts_with("hack-bench/kernels/") {
            Some("kernels")
        } else if schema.starts_with("hack-bench/sim/") {
            Some("sim")
        } else {
            None
        }
    }

    fn as_array(value: &Value) -> Option<&Vec<Value>> {
        match value {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    fn bench_map(value: &Value) -> BTreeMap<(String, String), f64> {
        value
            .get_key("benches")
            .and_then(as_array)
            .map(|benches| {
                benches
                    .iter()
                    .filter_map(|b| {
                        Some((
                            (
                                b.get_key("name")?.as_str()?.to_string(),
                                b.get_key("config")?.as_str()?.to_string(),
                            ),
                            b.get_key("seconds_per_iter")?.as_f64()?,
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    fn lookup<'v>(value: &'v Value, path: &[&str]) -> Option<&'v Value> {
        path.iter().try_fold(value, |v, key| v.get_key(key))
    }

    /// Prints one headline-ratio comparison; `higher_is_better` values are
    /// flagged when the current run drops more than `HEADLINE_DROP_FLAG`
    /// relative below the baseline.
    fn headline(label: &str, baseline: Option<f64>, current: Option<f64>) {
        match (baseline, current) {
            (Some(b), Some(c)) => {
                let regressed = c < b * (1.0 - HEADLINE_DROP_FLAG);
                let verdict = if regressed { "REGRESSION?" } else { "ok" };
                println!("  [headline] {label:<44} {b:>9.3} -> {c:>9.3}  {verdict}");
            }
            (None, Some(c)) => {
                println!("  [headline] {label:<44} {:>9} -> {c:>9.3}  (new)", "-");
            }
            _ => {}
        }
    }

    /// Prints the full delta report of `current` against `baseline`.
    pub fn report(path: &str, baseline: &Value, current: &Value) {
        let b_scale = baseline
            .get_key("scale")
            .and_then(Value::as_str)
            .unwrap_or("?");
        let c_scale = current
            .get_key("scale")
            .and_then(Value::as_str)
            .unwrap_or("?");
        println!("\n== perf compare vs {path} ==");
        if b_scale != c_scale {
            println!(
                "  [note] baseline scale={b_scale}, current scale={c_scale}: absolute \
                 timings are not comparable across scales; headline ratios still are"
            );
        }

        let base_benches = bench_map(baseline);
        let cur_benches = bench_map(current);
        for ((name, config), cur) in &cur_benches {
            match base_benches.get(&(name.clone(), config.clone())) {
                Some(base) if *base > 0.0 => {
                    let delta = 100.0 * (cur / base - 1.0);
                    let flag = if delta.abs() <= BENCH_DELTA_FLAG_PERCENT {
                        ""
                    } else if delta > 0.0 {
                        "  SLOWER?"
                    } else {
                        "  faster"
                    };
                    println!(
                        "  {name:<38} {config:<36} {:>10.1} -> {:>10.1} us/iter  {delta:>+7.1}%{flag}",
                        base * 1e6,
                        cur * 1e6
                    );
                }
                _ => println!(
                    "  {name:<38} {config:<36} {:>10} -> {:>10.1} us/iter  (no baseline)",
                    "-",
                    cur * 1e6
                ),
            }
        }
        for key in base_benches.keys() {
            if !cur_benches.contains_key(key) {
                println!(
                    "  {:<38} {:<36} dropped (present only in baseline)",
                    key.0, key.1
                );
            }
        }

        match kind(current) {
            Some("kernels") => {
                let per_lkv = |v: &Value| -> BTreeMap<u64, f64> {
                    v.get_key("quantized_matmul_speedup")
                        .and_then(as_array)
                        .map(|rows| {
                            rows.iter()
                                .filter_map(|r| {
                                    Some((
                                        r.get_key("l_kv")?.as_f64()? as u64,
                                        r.get_key("speedup")?.as_f64()?,
                                    ))
                                })
                                .collect()
                        })
                        .unwrap_or_default()
                };
                let base = per_lkv(baseline);
                for (l_kv, cur) in per_lkv(current) {
                    headline(
                        &format!("quantized_matmul_speedup[l_kv={l_kv}]"),
                        base.get(&l_kv).copied(),
                        Some(cur),
                    );
                }
            }
            Some("sim") => {
                for path in [
                    ["engine_cluster_run", "reduction_percent"],
                    ["engine_event_storm", "reduction_percent"],
                ] {
                    headline(
                        &path.join("."),
                        lookup(baseline, &path).and_then(Value::as_f64),
                        lookup(current, &path).and_then(Value::as_f64),
                    );
                }
                for path in [
                    ["sim_cost", "decode_durations", "speedup"],
                    ["sim_cost", "cluster_run_cost_model", "reduction_percent"],
                    ["sim_cost", "capacity_bisection", "speedup"],
                ] {
                    headline(
                        &path.join("."),
                        lookup(baseline, &path).and_then(Value::as_f64),
                        lookup(current, &path).and_then(Value::as_f64),
                    );
                }
                // The telemetry budget is absolute (≤ 5% over telemetry-off),
                // so it is checked against the constant, not the baseline —
                // but only a full-scale measurement is meaningful: the budget
                // is defined at the 300k-request headline, where per-request
                // recording dominates. A smoke run finishes in milliseconds,
                // so fixed setup (track/series registration, the sampler's
                // ticks) swamps the ratio; report it as informational.
                if let Some(overhead) = lookup(current, &["telemetry_overhead", "overhead_percent"])
                    .and_then(Value::as_f64)
                {
                    let full_scale =
                        lookup(current, &["scale"]).and_then(Value::as_str) == Some("full");
                    let verdict = if overhead <= TELEMETRY_OVERHEAD_FLAG_PERCENT {
                        "ok"
                    } else if full_scale {
                        "REGRESSION?"
                    } else {
                        "smoke scale, informational (budget applies at full scale)"
                    };
                    let budget = TELEMETRY_OVERHEAD_FLAG_PERCENT;
                    println!(
                        "  [headline] {:<44} {overhead:>8.2}% (budget {budget:.0}%)  {verdict}",
                        "telemetry_overhead.overhead_percent"
                    );
                }
                for path in [
                    ["tenant_mix", "wrr_jain_gain_vs_fcfs"],
                    ["tenant_mix", "slo_edf_jain_gain_vs_fcfs"],
                ] {
                    headline(
                        &path.join("."),
                        lookup(baseline, &path).and_then(Value::as_f64),
                        lookup(current, &path).and_then(Value::as_f64),
                    );
                }
                for path in [
                    ["hetero_fleet", "mixed_jct_reduction_vs_uniform"],
                    ["hetero_fleet", "fastest_eligible_jct_gain_vs_least_loaded"],
                ] {
                    headline(
                        &path.join("."),
                        lookup(baseline, &path).and_then(Value::as_f64),
                        lookup(current, &path).and_then(Value::as_f64),
                    );
                }
                // fault_storm: what the link-graph fabric costs over the flat
                // one on the identical fault-free workload. Like the telemetry
                // budget this is an absolute check, not relative-to-baseline,
                // and only a full-scale ratio is meaningful.
                if let Some(overhead) = lookup(current, &["fault_storm", "graph_overhead_percent"])
                    .and_then(Value::as_f64)
                {
                    let full_scale =
                        lookup(current, &["scale"]).and_then(Value::as_str) == Some("full");
                    let verdict = if overhead <= FABRIC_OVERHEAD_FLAG_PERCENT {
                        "ok"
                    } else if full_scale {
                        "REGRESSION?"
                    } else {
                        "smoke scale, informational (budget applies at full scale)"
                    };
                    println!(
                        "  [headline] {:<44} {overhead:>8.2}% (budget {FABRIC_OVERHEAD_FLAG_PERCENT:.0}%)  {verdict}",
                        "fault_storm.graph_overhead_percent"
                    );
                }
                // session_cache: what arming the prefix cache costs on a
                // sessionless trace (identity asserted before timing). An
                // absolute budget like the telemetry one, full scale only.
                if let Some(overhead) =
                    lookup(current, &["session_cache", "cache_overhead_percent"])
                        .and_then(Value::as_f64)
                {
                    let full_scale =
                        lookup(current, &["scale"]).and_then(Value::as_str) == Some("full");
                    let verdict = if overhead <= CACHE_OVERHEAD_FLAG_PERCENT {
                        "ok"
                    } else if full_scale {
                        "REGRESSION?"
                    } else {
                        "smoke scale, informational (budget applies at full scale)"
                    };
                    println!(
                        "  [headline] {:<44} {overhead:>8.2}% (budget {CACHE_OVERHEAD_FLAG_PERCENT:.0}%)  {verdict}",
                        "session_cache.cache_overhead_percent"
                    );
                }
                headline(
                    "session_cache.chat_jct_reduction_percent",
                    lookup(baseline, &["session_cache", "chat_jct_reduction_percent"])
                        .and_then(Value::as_f64),
                    lookup(current, &["session_cache", "chat_jct_reduction_percent"])
                        .and_then(Value::as_f64),
                );
                // The flat/no-fault anchor is deterministic: at equal scale,
                // *any* average-JCT drift against the committed baseline is a
                // semantic regression of the unchanged path, not noise.
                if b_scale == c_scale {
                    let flat = |v: &Value| {
                        lookup(v, &["fault_storm", "flat_avg_jct"]).and_then(Value::as_f64)
                    };
                    if let (Some(b), Some(c)) = (flat(baseline), flat(current)) {
                        let verdict = if b == c { "ok" } else { "DRIFT?" };
                        println!(
                            "  [headline] {:<44} {b:>9.3} -> {c:>9.3}  {verdict} (must be exact)",
                            "fault_storm.flat_avg_jct"
                        );
                    }
                    // The availability grid is generated from seeded MTBF/MTTR
                    // processes: at equal scale every pooled point is
                    // deterministic, so any drift is semantic.
                    let grid = |v: &Value| -> Vec<(f64, f64, f64)> {
                        lookup(v, &["availability", "points"])
                            .and_then(as_array)
                            .map(|rows| {
                                rows.iter()
                                    .filter_map(|r| {
                                        Some((
                                            r.get_key("mtbf_s")?.as_f64()?,
                                            r.get_key("availability")?.as_f64()?,
                                            r.get_key("p99_jct_s")?.as_f64()?,
                                        ))
                                    })
                                    .collect()
                            })
                            .unwrap_or_default()
                    };
                    let base = grid(baseline);
                    for (mtbf, cur_avail, cur_p99) in grid(current) {
                        let Some(&(_, b_avail, b_p99)) = base.iter().find(|(m, _, _)| *m == mtbf)
                        else {
                            continue;
                        };
                        let verdict = if b_avail == cur_avail && b_p99 == cur_p99 {
                            "ok"
                        } else {
                            "DRIFT?"
                        };
                        println!(
                            "  [headline] {:<44} {b_avail:>9.4} -> {cur_avail:>9.4}  {verdict} (must be exact)",
                            format!("availability[mtbf={mtbf:.0}s]")
                        );
                    }
                    // The autoscale grid replays deterministic time-warped
                    // traces: at equal scale every (shape, policy) cell's
                    // cost/SLO sensors are exact, so any drift is semantic —
                    // a changed controller decision, price, or drain path.
                    let auto_grid = |v: &Value| -> Vec<(String, f64, f64)> {
                        lookup(v, &["autoscale", "points"])
                            .and_then(as_array)
                            .map(|rows| {
                                rows.iter()
                                    .filter_map(|r| {
                                        Some((
                                            format!(
                                                "{}/{}",
                                                r.get_key("shape")?.as_str()?,
                                                r.get_key("policy")?.as_str()?
                                            ),
                                            r.get_key("gpu_dollars")?.as_f64()?,
                                            r.get_key("slo_attainment")?.as_f64()?,
                                        ))
                                    })
                                    .collect()
                            })
                            .unwrap_or_default()
                    };
                    let auto_base = auto_grid(baseline);
                    for (cell, cur_dollars, cur_att) in auto_grid(current) {
                        let Some((_, b_dollars, b_att)) =
                            auto_base.iter().find(|(label, _, _)| *label == cell)
                        else {
                            continue;
                        };
                        let (b_dollars, b_att) = (*b_dollars, *b_att);
                        let verdict = if b_dollars == cur_dollars && b_att == cur_att {
                            "ok"
                        } else {
                            "DRIFT?"
                        };
                        println!(
                            "  [headline] {:<44} ${b_dollars:>8.2} -> ${cur_dollars:>8.2}  {verdict} (must be exact)",
                            format!("autoscale[{cell}].gpu_dollars")
                        );
                    }
                    let savings = |v: &Value| {
                        lookup(v, &["autoscale", "diurnal_savings_percent"]).and_then(Value::as_f64)
                    };
                    headline(
                        "autoscale.diurnal_savings_percent",
                        savings(baseline),
                        savings(current),
                    );
                    // The session-cache grid replays deterministic session
                    // traces: at equal scale every cell's hit rate and mean
                    // JCT are exact, so any drift is semantic — a changed
                    // lookup, eviction, or dispatch decision.
                    let cache_grid = |v: &Value| -> Vec<(String, f64, f64)> {
                        lookup(v, &["session_cache", "runs"])
                            .and_then(as_array)
                            .map(|rows| {
                                rows.iter()
                                    .filter_map(|r| {
                                        Some((
                                            r.get_key("cell")?.as_str()?.to_string(),
                                            r.get_key("hit_rate")?.as_f64()?,
                                            r.get_key("mean_jct_s")?.as_f64()?,
                                        ))
                                    })
                                    .collect()
                            })
                            .unwrap_or_default()
                    };
                    let cache_base = cache_grid(baseline);
                    for (cell, cur_hit, cur_jct) in cache_grid(current) {
                        let Some((_, b_hit, b_jct)) =
                            cache_base.iter().find(|(label, _, _)| *label == cell)
                        else {
                            continue;
                        };
                        let verdict = if *b_hit == cur_hit && *b_jct == cur_jct {
                            "ok"
                        } else {
                            "DRIFT?"
                        };
                        println!(
                            "  [headline] {:<44} {b_hit:>9.3} -> {cur_hit:>9.3}  {verdict} (must be exact)",
                            format!("session_cache[{cell}].hit_rate")
                        );
                    }
                }
            }
            _ => println!("  [compare] unknown schema in current report"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("BENCH_SCALE").is_ok_and(|v| v == "smoke");
    // `--only kernels` / `--only sim` runs a single section (handy when
    // comparing one side across commits).
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1).cloned());
    let wants = |section: &str| only.as_deref().is_none_or(|o| o == section);

    // `--compare <baseline.json>` may repeat; baselines are read *before* the
    // run so the workflow "compare against the committed JSON, then overwrite
    // it" needs no temporary copies.
    let baselines: Vec<(String, serde_json::Value)> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--compare")
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .filter_map(|path| compare::load(&path).map(|value| (path, value)))
        .collect();

    let mut reports: Vec<(&'static str, serde_json::Value)> = Vec::new();

    if wants("kernels") {
        let kernels = kernel_benches(smoke);
        for s in &kernels.quantized_matmul_speedup {
            println!(
                "  quantized-matmul speedup @ l_kv={}: {:.2}x (blocked {:.1} us vs scalar {:.1} us)",
                s.l_kv,
                s.speedup,
                s.optimized_secs * 1e6,
                s.scalar_reference_secs * 1e6
            );
        }
        write_json("BENCH_kernels.json", &kernels);
        reports.push(("kernels", kernels.serialize_value()));
    }

    if wants("sim") {
        let sim = sim_benches(smoke);
        write_json("BENCH_sim.json", &sim);
        reports.push(("sim", sim.serialize_value()));
    }

    for (path, baseline) in &baselines {
        let Some(kind) = compare::kind(baseline) else {
            println!("[compare] {path} has no recognised schema tag — skipping");
            continue;
        };
        match reports.iter().find(|(k, _)| *k == kind) {
            Some((_, current)) => compare::report(path, baseline, current),
            None => println!("[compare] {path} is a {kind} baseline but that section did not run"),
        }
    }
}
