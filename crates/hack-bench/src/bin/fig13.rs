//! Fig. 13 — Ablation study: average JCT of HACK, HACK without Summation Elimination
//! (HACK/SE) and HACK without Requantization Elimination (HACK/RQE) across datasets.

use hack_bench::{dataset_grid, default_requests, emit, run_grid_measured};
use hack_core::prelude::*;

fn main() {
    let n = default_requests();
    let methods = [Method::hack(), Method::HackNoSe, Method::HackNoRqe];
    let mut table = ExperimentTable::new(
        "fig13",
        "Fig. 13: ablation study — average JCT (Llama-3.1 70B, A10G)",
        dataset_grid(1)
            .iter()
            .map(|(d, _)| d.name().to_string())
            .collect(),
        "s",
    );
    let mut overhead = ExperimentTable::new(
        "fig13_overhead",
        "Fig. 13 (derived): JCT increase of each ablation vs full HACK",
        dataset_grid(1)
            .iter()
            .map(|(d, _)| d.name().to_string())
            .collect(),
        "%",
    );
    let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    for outcomes in run_grid_measured(&dataset_grid(n), &methods) {
        for (i, o) in outcomes.iter().enumerate() {
            per_method[i].push(o.average_jct);
        }
    }
    for (i, method) in methods.iter().enumerate() {
        table.push_row(Row::new(method.name(), per_method[i].clone()));
    }
    for (i, method) in methods.iter().enumerate().skip(1) {
        overhead.push_row(Row::new(
            format!("{} vs HACK", method.name()),
            per_method[i]
                .iter()
                .zip(&per_method[0])
                .map(|(a, h)| 100.0 * (a / h - 1.0))
                .collect(),
        ));
    }
    emit(&table);
    emit(&overhead);
}
