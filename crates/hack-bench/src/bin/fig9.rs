//! Fig. 9 — Average JCT across requests for Llama-3.1 70B with varying datasets
//! (Baseline, CacheGen, KVQuant, HACK on A10G prefill instances).

use hack_bench::{dataset_grid, default_requests, emit, run_grid_measured};
use hack_core::prelude::*;

fn main() {
    let n = default_requests();
    let methods = Method::main_comparison();
    let mut table = ExperimentTable::new(
        "fig9",
        "Fig. 9: average JCT across requests (Llama-3.1 70B, A10G prefill)",
        dataset_grid(1)
            .iter()
            .map(|(d, _)| d.name().to_string())
            .collect(),
        "s",
    );
    let mut reductions = ExperimentTable::new(
        "fig9_reductions",
        "Fig. 9 (derived): HACK's JCT reduction vs each comparison method",
        dataset_grid(1)
            .iter()
            .map(|(d, _)| d.name().to_string())
            .collect(),
        "%",
    );

    let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    for outcomes in run_grid_measured(&dataset_grid(n), &methods) {
        for (i, o) in outcomes.iter().enumerate() {
            per_method[i].push(o.average_jct);
        }
    }
    for (i, method) in methods.iter().enumerate() {
        table.push_row(Row::new(method.name(), per_method[i].clone()));
    }
    for (i, method) in methods.iter().enumerate().take(3) {
        let hack = &per_method[3];
        let other = &per_method[i];
        reductions.push_row(Row::new(
            format!("HACK vs {}", method.name()),
            hack.iter()
                .zip(other)
                .map(|(h, o)| 100.0 * (1.0 - h / o))
                .collect(),
        ));
    }
    emit(&table);
    emit(&reductions);
}
