//! Table 5 — Peak GPU memory usage on decode instances with varying datasets
//! (Llama-3.1 70B). Reports both the simulated peak (at the simulated load) and the
//! analytic at-capacity breakdown (every decode replica filled to its admission limit),
//! which is the regime the paper's 65–94% numbers correspond to. Pass `--overheads` to
//! also print the §7.4 SE/RQE memory-overhead figures.

use hack_bench::{dataset_grid, default_requests, emit, run_grid_measured};
use hack_core::prelude::*;
use hack_kvcache::{DecodeMemoryModel, KvShape};

fn analytic_fraction(method: Method, resident_tokens: usize) -> (f64, f64, f64) {
    let spec = ModelKind::Llama31_70B.spec();
    let cluster = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
    let model = DecodeMemoryModel {
        gpu_memory_bytes: cluster.decode_replica_mem_bytes() as usize,
        param_bytes: spec.param_bytes_fp16() as usize,
        activation_bytes: (cluster.activation_reserve * cluster.decode_replica_mem_bytes())
            as usize,
        shape: KvShape {
            layers: spec.layers,
            kv_heads: spec.kv_heads,
            head_dim: spec.head_dim,
        },
        layout: method.cache_layout(),
    };
    (
        model.peak_usage_fraction(resident_tokens),
        model.se_overhead_fraction(resident_tokens),
        model.rqe_overhead_fraction(resident_tokens),
    )
}

fn main() {
    let n = default_requests();
    let overheads = std::env::args().any(|a| a == "--overheads");
    let methods = Method::main_comparison();
    let datasets = dataset_grid(1);

    // Simulated peaks at the simulated load.
    let mut simulated = ExperimentTable::new(
        "table5_simulated",
        "Table 5 (simulated load): peak decode-GPU memory usage",
        datasets.iter().map(|(d, _)| d.name().to_string()).collect(),
        "% of GPU memory",
    );
    let cells = run_grid_measured(&dataset_grid(n), &methods);
    for (i, method) in methods.iter().enumerate() {
        let values: Vec<f64> = cells
            .iter()
            .map(|c| 100.0 * c[i].peak_decode_memory_fraction)
            .collect();
        simulated.push_row(Row::new(method.name(), values));
    }
    emit(&simulated);

    // Analytic at-capacity numbers: resident tokens scaled by dataset sequence length
    // (the baseline's residency at the paper's load; quantized methods hold the same
    // request mix, so the same token count).
    let mut analytic = ExperimentTable::new(
        "table5",
        "Table 5 (at capacity): peak decode-GPU memory usage with the paper's residency",
        datasets.iter().map(|(d, _)| d.name().to_string()).collect(),
        "% of GPU memory",
    );
    let resident_per_dataset: Vec<usize> = datasets
        .iter()
        .map(|(d, _)| {
            // Roughly the number of resident sequences the baseline can hold times the
            // average sequence length: fill ~95% of the FP16 KV budget.
            let avg = d.input_stats().avg + d.output_stats().avg;
            let spec = ModelKind::Llama31_70B.spec();
            let cluster = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
            let budget = cluster.decode_kv_budget_bytes() * 0.95;
            let fp16_per_token = spec.kv_bytes_per_token_fp16() as f64;
            let sequences = (budget / (fp16_per_token * avg as f64)).floor().max(1.0);
            (sequences as usize) * avg
        })
        .collect();
    for method in methods {
        let values: Vec<f64> = resident_per_dataset
            .iter()
            .map(|&tokens| 100.0 * analytic_fraction(method, tokens).0)
            .collect();
        analytic.push_row(Row::new(method.name(), values));
    }
    emit(&analytic);

    if overheads {
        let mut table = ExperimentTable::new(
            "table5_overheads",
            "§7.4: memory overhead of SE sums and the RQE FP16 tail (HACK, at capacity)",
            datasets.iter().map(|(d, _)| d.name().to_string()).collect(),
            "% of GPU memory",
        );
        let se: Vec<f64> = resident_per_dataset
            .iter()
            .map(|&tokens| 100.0 * analytic_fraction(Method::hack(), tokens).1)
            .collect();
        let rqe: Vec<f64> = resident_per_dataset
            .iter()
            .map(|&tokens| 100.0 * analytic_fraction(Method::hack(), tokens).2)
            .collect();
        table.push_row(Row::new("SE sums", se));
        table.push_row(Row::new("RQE FP16 tail", rqe));
        emit(&table);
    }
}
