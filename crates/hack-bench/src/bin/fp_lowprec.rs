//! §3 — Low-precision floating point (FP4/FP6/FP8) simulation: average communication
//! time ratio across prefill instances and KV memory-access behaviour, Llama-3.1 70B on
//! Cocktail. Shows that the minifloat formats cannot reach the compression (and hence
//! the communication/memory savings) of 2-bit quantization.

use hack_bench::{default_requests, emit, gpu_grid, run_grid_measured};
use hack_core::prelude::*;

fn main() {
    let n = default_requests();
    let methods = [Method::Fp4, Method::Fp6, Method::Fp8, Method::hack()];

    let mut comm = ExperimentTable::new(
        "fp_lowprec_comm",
        "§3: average communication time ratio of FP4/6/8 vs HACK across prefill GPUs",
        methods.iter().map(|m| m.name()).collect(),
        "% of JCT",
    );
    let mut mem = ExperimentTable::new(
        "fp_lowprec_memory",
        "§3: peak decode memory usage of FP4/6/8 vs HACK across prefill GPUs",
        methods.iter().map(|m| m.name()).collect(),
        "% of GPU memory",
    );
    let grid = gpu_grid(n);
    let cells = run_grid_measured(&grid, &methods);
    for ((gpu, _), outcomes) in grid.iter().zip(cells) {
        comm.push_row(Row::new(
            format!("{gpu:?}"),
            outcomes
                .iter()
                .map(|o| 100.0 * o.ratios.communication)
                .collect(),
        ));
        mem.push_row(Row::new(
            format!("{gpu:?}"),
            outcomes
                .iter()
                .map(|o| 100.0 * o.peak_decode_memory_fraction)
                .collect(),
        ));
    }
    emit(&comm);
    emit(&mem);
}
