//! Fig. 12 — Average JCT across requests for Llama-3.1 70B with Cocktail using
//! varying prefill instances (A10G, V100, T4, L4, A100).

use hack_bench::{default_requests, emit, gpu_grid, run_grid_measured};
use hack_core::prelude::*;

fn main() {
    let n = default_requests();
    let methods = Method::main_comparison();
    let labels: Vec<String> = gpu_grid(1).iter().map(|(g, _)| format!("{g:?}")).collect();
    let mut table = ExperimentTable::new(
        "fig12",
        "Fig. 12: average JCT across requests vs prefill instance (Llama-3.1 70B, Cocktail)",
        labels.clone(),
        "s",
    );
    let mut reductions = ExperimentTable::new(
        "fig12_reductions",
        "Fig. 12 (derived): HACK's JCT reduction vs each method, per prefill instance",
        labels,
        "%",
    );
    let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    for outcomes in run_grid_measured(&gpu_grid(n), &methods) {
        for (i, o) in outcomes.iter().enumerate() {
            per_method[i].push(o.average_jct);
        }
    }
    for (i, method) in methods.iter().enumerate() {
        table.push_row(Row::new(method.name(), per_method[i].clone()));
    }
    for (i, method) in methods.iter().enumerate().take(3) {
        reductions.push_row(Row::new(
            format!("HACK vs {}", method.name()),
            per_method[3]
                .iter()
                .zip(&per_method[i])
                .map(|(h, o)| 100.0 * (1.0 - h / o))
                .collect(),
        ));
    }
    emit(&table);
    emit(&reductions);
}
