//! Fig. 11 — Average JCT across requests for different models with Cocktail
//! (arXiv for Falcon-180B), A10G prefill instances.

use hack_bench::{default_requests, emit, model_grid, run_grid_measured};
use hack_core::prelude::*;

fn main() {
    let n = default_requests();
    let methods = Method::main_comparison();
    let labels: Vec<String> = model_grid(1)
        .iter()
        .map(|(m, _)| {
            if *m == ModelKind::Falcon180B {
                "F-arXiv".to_string()
            } else {
                m.letter().to_string()
            }
        })
        .collect();
    let mut table = ExperimentTable::new(
        "fig11",
        "Fig. 11: average JCT across requests for different models (Cocktail / arXiv)",
        labels,
        "s",
    );
    let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    for outcomes in run_grid_measured(&model_grid(n), &methods) {
        for (i, o) in outcomes.iter().enumerate() {
            per_method[i].push(o.average_jct);
        }
    }
    for (i, method) in methods.iter().enumerate() {
        table.push_row(Row::new(method.name(), per_method[i].clone()));
    }
    emit(&table);
}
