//! Fig. 2 — Employing KV quantization (CacheGen / KVQuant) across prefill instances:
//! average prefill / comm / dequantization / decode time ratios, Llama-3.1 70B on
//! Cocktail.

use hack_bench::{default_requests, emit, gpu_grid, ratio_columns, ratio_row, run_grid_measured};
use hack_core::prelude::*;

fn main() {
    let n = default_requests();
    let methods = [Method::CacheGen, Method::KvQuant];
    let grid = gpu_grid(n);
    let outcomes = run_grid_measured(&grid, &methods);
    for (m, method) in methods.into_iter().enumerate() {
        let mut table = ExperimentTable::new(
            format!("fig2_{}", method.name().to_lowercase()),
            format!(
                "Fig. 2: {} time ratios vs prefill GPU (Llama-3.1 70B, Cocktail)",
                method.name()
            ),
            ratio_columns(),
            "% of JCT",
        );
        for ((gpu, _), cell) in grid.iter().zip(&outcomes) {
            table.push_row(ratio_row(format!("{gpu:?}"), &cell[m]));
        }
        emit(&table);
    }
}
