//! Fig. 3 — Employing KV quantization (CacheGen / KVQuant) across models: average
//! prefill / comm / dequantization / decode time ratios on Cocktail (arXiv for F).

use hack_bench::{default_requests, emit, model_grid, ratio_columns, ratio_row};
use hack_core::prelude::*;

fn main() {
    let n = default_requests();
    for method in [Method::CacheGen, Method::KvQuant] {
        let mut table = ExperimentTable::new(
            format!("fig3_{}", method.name().to_lowercase()),
            format!(
                "Fig. 3: {} time ratios vs model (Cocktail; arXiv for F)",
                method.name()
            ),
            ratio_columns(),
            "% of JCT",
        );
        for (model, e) in model_grid(n) {
            let label = if model == ModelKind::Falcon180B {
                "F-arXiv".to_string()
            } else {
                model.letter().to_string()
            };
            table.push_row(ratio_row(label, &e.run(method)));
        }
        emit(&table);
    }
}
