//! Fig. 3 — Employing KV quantization (CacheGen / KVQuant) across models: average
//! prefill / comm / dequantization / decode time ratios on Cocktail (arXiv for F).

use hack_bench::{default_requests, emit, model_grid, ratio_columns, ratio_row, run_grid_measured};
use hack_core::prelude::*;

fn main() {
    let n = default_requests();
    let methods = [Method::CacheGen, Method::KvQuant];
    let grid = model_grid(n);
    let outcomes = run_grid_measured(&grid, &methods);
    for (m, method) in methods.into_iter().enumerate() {
        let mut table = ExperimentTable::new(
            format!("fig3_{}", method.name().to_lowercase()),
            format!(
                "Fig. 3: {} time ratios vs model (Cocktail; arXiv for F)",
                method.name()
            ),
            ratio_columns(),
            "% of JCT",
        );
        for ((model, _), cell) in grid.iter().zip(&outcomes) {
            let label = if *model == ModelKind::Falcon180B {
                "F-arXiv".to_string()
            } else {
                model.letter().to_string()
            };
            table.push_row(ratio_row(label, &cell[m]));
        }
        emit(&table);
    }
}
