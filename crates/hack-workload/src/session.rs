//! Session-structured traces: multi-turn chat and agentic tool-call DAGs.
//!
//! Real serving traffic is not a stream of independent requests: a chat turn
//! N+1 replays turn N's whole context as its prompt prefix, and an agent run
//! fans out tool calls that all share the planning prompt. This module models
//! that structure. A [`SessionSpec`] describes one class of sessions (tenant,
//! shape, arrival rate, length distributions); [`SessionSpec::sample_dag`]
//! draws the [`RequestDag`] of a single session; and [`SessionTrace`] turns a
//! set of specs into one deterministic [`Request`] stream, merged (stable
//! arrival sort, ids renumbered, parent links remapped, session ids offset to
//! stay globally unique) exactly the way [`crate::tenant::MultiTenantTrace`]
//! merges tenant streams.
//!
//! The generated requests carry [`Request::session`], [`Request::parent`] and
//! [`Request::shared_prefix_tokens`]; the cluster simulator gates a child
//! request on its parent's completion and uses the shared-prefix length to
//! model prefix-cache hits.

use crate::arrivals::PoissonArrivals;
use crate::dataset::Dataset;
use crate::trace::{Request, TenantId};
use hack_tensor::DetRng;
use serde::{Deserialize, Serialize};

/// Minimum number of fresh (non-shared) prompt tokens a follow-up carries.
const MIN_FOLLOWUP_TOKENS: usize = 16;

/// Shape of the sessions a [`SessionSpec`] generates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SessionKind {
    /// Linear multi-turn chat: each turn's prompt is the previous turn's full
    /// context plus a fresh user message, issued after an exponential
    /// think-time delay (mean `think_mean_s` seconds) from the previous
    /// turn's nominal completion.
    Chat {
        /// Turns per session (≥ 1; turn 1 is the session root).
        turns: usize,
        /// Mean think time between turns, seconds.
        think_mean_s: f64,
    },
    /// Agentic fan-out: a root planning request, `tools` parallel tool calls
    /// that each replay the root's context, and a join request (parent: the
    /// last tool call) that folds the tool outputs back into the context.
    Agentic {
        /// Parallel tool calls per session (≥ 1).
        tools: usize,
        /// Mean delay between a parent finishing and a dependent call being
        /// issued, seconds (exponential).
        tool_delay_s: f64,
    },
}

/// One node of a session's request DAG, in nominal (pre-merge) time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagNode {
    /// Index of the parent node within the DAG, if any (roots have none).
    pub parent: Option<usize>,
    /// Nominal arrival offset from the session start, seconds.
    pub offset_s: f64,
    /// Prompt length in tokens.
    pub input_len: usize,
    /// Output tokens to generate.
    pub output_len: usize,
    /// Leading prompt tokens shared with the parent's final context.
    pub shared_prefix_tokens: usize,
}

/// The sampled request DAG of a single session.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestDag {
    /// Nodes in issue order; every parent index precedes its children.
    pub nodes: Vec<DagNode>,
}

impl RequestDag {
    /// Total tokens (input + output) across the DAG.
    pub fn total_tokens(&self) -> usize {
        self.nodes.iter().map(|n| n.input_len + n.output_len).sum()
    }
}

/// Generation parameters for one stream of sessions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Tenant every request of this stream is tagged with.
    pub tenant: TenantId,
    /// Session shape.
    pub kind: SessionKind,
    /// Number of sessions in the stream.
    pub sessions: usize,
    /// Session-root arrivals per second (Poisson).
    pub rps: f64,
    /// Dataset providing the root/followup length distributions.
    pub dataset: Dataset,
    /// Context-window cap; growing chat contexts are clamped to it.
    pub max_context: usize,
    /// RNG seed of this stream.
    pub seed: u64,
}

impl SessionSpec {
    /// Number of requests per session for this spec's [`SessionKind`].
    pub fn requests_per_session(&self) -> usize {
        match self.kind {
            SessionKind::Chat { turns, .. } => turns.max(1),
            SessionKind::Agentic { tools, .. } => 1 + tools.max(1) + 1,
        }
    }

    /// Total requests the stream generates.
    pub fn num_requests(&self) -> usize {
        self.sessions * self.requests_per_session()
    }

    /// Draws the request DAG of one session from `rng`.
    pub fn sample_dag(&self, rng: &mut DetRng) -> RequestDag {
        match self.kind {
            SessionKind::Chat {
                turns,
                think_mean_s,
            } => self.chat_dag(turns, think_mean_s, rng),
            SessionKind::Agentic {
                tools,
                tool_delay_s,
            } => self.agentic_dag(tools, tool_delay_s, rng),
        }
    }

    fn chat_dag(&self, turns: usize, think_mean_s: f64, rng: &mut DetRng) -> RequestDag {
        assert!(think_mean_s > 0.0, "chat think time must be positive");
        let (input_len, output_len) = self.dataset.sample_lengths(self.max_context, rng);
        let mut nodes = vec![DagNode {
            parent: None,
            offset_s: 0.0,
            input_len,
            output_len,
            shared_prefix_tokens: 0,
        }];
        let mut context = input_len + output_len;
        let mut offset = 0.0f64;
        for turn in 1..turns.max(1) {
            offset += rng.exponential(1.0 / think_mean_s);
            let (fresh_in, fresh_out) = self.dataset.sample_lengths(self.max_context, rng);
            // A follow-up message is much shorter than a root prompt; the bulk
            // of the turn's prompt is the replayed context.
            let followup = (fresh_in / 8).max(MIN_FOLLOWUP_TOKENS);
            let input_len = (context + followup).min(self.max_context).max(2);
            let shared = context.min(input_len - 1);
            nodes.push(DagNode {
                parent: Some(turn - 1),
                offset_s: offset,
                input_len,
                output_len: fresh_out,
                shared_prefix_tokens: shared,
            });
            context = input_len + fresh_out;
        }
        RequestDag { nodes }
    }

    fn agentic_dag(&self, tools: usize, tool_delay_s: f64, rng: &mut DetRng) -> RequestDag {
        assert!(tool_delay_s > 0.0, "agentic tool delay must be positive");
        let tools = tools.max(1);
        let (input_len, output_len) = self.dataset.sample_lengths(self.max_context, rng);
        let mut nodes = vec![DagNode {
            parent: None,
            offset_s: 0.0,
            input_len,
            output_len,
            shared_prefix_tokens: 0,
        }];
        let root_context = input_len + output_len;
        let mut fanout_end = 0.0f64;
        let mut tool_outputs = 0usize;
        for _ in 0..tools {
            let offset = rng.exponential(1.0 / tool_delay_s);
            let (fresh_in, fresh_out) = self.dataset.sample_lengths(self.max_context, rng);
            let tool_prompt = (fresh_in / 16).max(MIN_FOLLOWUP_TOKENS);
            let tool_output = (fresh_out / 4).max(MIN_FOLLOWUP_TOKENS);
            let input_len = (root_context + tool_prompt).min(self.max_context).max(2);
            nodes.push(DagNode {
                parent: Some(0),
                offset_s: offset,
                input_len,
                output_len: tool_output,
                shared_prefix_tokens: root_context.min(input_len - 1),
            });
            fanout_end = fanout_end.max(offset);
            tool_outputs += tool_output;
        }
        // Join point: folds every tool output back into the root context. Its
        // parent is the *last* tool call; the simulator's gating releases it
        // only after that parent completes.
        let join_offset = fanout_end + rng.exponential(1.0 / tool_delay_s);
        let (_, join_out) = self.dataset.sample_lengths(self.max_context, rng);
        let join_input = (root_context + tool_outputs + MIN_FOLLOWUP_TOKENS)
            .min(self.max_context)
            .max(2);
        nodes.push(DagNode {
            parent: Some(tools),
            offset_s: join_offset,
            input_len: join_input,
            output_len: join_out,
            shared_prefix_tokens: root_context.min(join_input - 1),
        });
        RequestDag { nodes }
    }

    /// Generates the stream of this spec alone, with local ids (positions)
    /// and sessions numbered from 1 in arrival order of their roots.
    pub fn stream(&self) -> Vec<Request> {
        assert!(
            self.sessions > 0,
            "stream must contain at least one session"
        );
        assert!(self.rps > 0.0, "session arrival rate must be positive");
        let mut rng = DetRng::new(self.seed);
        let mut arrivals = PoissonArrivals::new(self.rps);
        let mut requests = Vec::with_capacity(self.num_requests());
        for s in 0..self.sessions {
            let start = arrivals.next_arrival(&mut rng);
            let dag = self.sample_dag(&mut rng);
            let base = requests.len() as u64;
            for node in &dag.nodes {
                requests.push(Request {
                    id: requests.len() as u64,
                    tenant: self.tenant,
                    arrival: start + node.offset_s,
                    input_len: node.input_len,
                    output_len: node.output_len,
                    session: s as u64 + 1,
                    parent: node.parent.map(|p| base + p as u64),
                    shared_prefix_tokens: node.shared_prefix_tokens,
                });
            }
        }
        requests
    }
}

/// Deterministically merges per-stream request lists into one trace.
///
/// Streams are concatenated in the given order, stably sorted by arrival time
/// (ties keep stream order, like [`crate::tenant::MultiTenantTrace`]), ids are
/// renumbered to positions, parent links are remapped through the renumbering,
/// and non-zero session ids are offset per stream so sessions stay globally
/// unique. Streams of independent requests (session 0, no parents) pass
/// through untouched apart from the shared renumbering, which is how session
/// traffic merges into an existing tenant-tagged arrival stream.
pub fn merge_streams(streams: &[Vec<Request>]) -> Vec<Request> {
    for stream in streams {
        for (i, r) in stream.iter().enumerate() {
            assert_eq!(r.id, i as u64, "stream ids must be positions");
            if let Some(p) = r.parent {
                assert!(p < r.id, "stream parents must precede children");
            }
        }
    }
    let mut session_offset = Vec::with_capacity(streams.len());
    let mut acc = 0u64;
    for stream in streams {
        session_offset.push(acc);
        acc += stream.iter().map(|r| r.session).max().unwrap_or(0);
    }
    let mut tagged: Vec<(usize, Request)> = streams
        .iter()
        .enumerate()
        .flat_map(|(i, s)| s.iter().map(move |r| (i, *r)))
        .collect();
    tagged.sort_by(|a, b| a.1.arrival.partial_cmp(&b.1.arrival).unwrap());
    let mut remap: Vec<Vec<u64>> = streams.iter().map(|s| vec![0; s.len()]).collect();
    for (new_id, (stream, r)) in tagged.iter().enumerate() {
        remap[*stream][r.id as usize] = new_id as u64;
    }
    tagged
        .into_iter()
        .enumerate()
        .map(|(new_id, (stream, mut r))| {
            r.id = new_id as u64;
            r.parent = r.parent.map(|p| remap[stream][p as usize]);
            if r.session != 0 {
                r.session += session_offset[stream];
            }
            r
        })
        .collect()
}

/// A deterministic trace of several session streams (plus optional streams of
/// independent requests), merged by [`merge_streams`].
#[derive(Debug, Clone)]
pub struct SessionTrace {
    specs: Vec<SessionSpec>,
    /// Extra pre-generated streams (e.g. an independent background trace)
    /// merged after the session streams.
    background: Vec<Vec<Request>>,
}

impl SessionTrace {
    /// A trace of the given session streams.
    pub fn new(specs: Vec<SessionSpec>) -> Self {
        assert!(!specs.is_empty(), "session trace needs at least one spec");
        Self {
            specs,
            background: Vec::new(),
        }
    }

    /// Adds a pre-generated stream of independent requests (local ids must be
    /// positions; sessions 0) merged into the trace.
    pub fn with_background(mut self, stream: Vec<Request>) -> Self {
        self.background.push(stream);
        self
    }

    /// The session specs of this trace.
    pub fn specs(&self) -> &[SessionSpec] {
        &self.specs
    }

    /// Total number of requests the trace generates.
    pub fn num_requests(&self) -> usize {
        self.specs
            .iter()
            .map(SessionSpec::num_requests)
            .sum::<usize>()
            + self.background.iter().map(Vec::len).sum::<usize>()
    }

    /// Generates the merged trace.
    pub fn generate(&self) -> Vec<Request> {
        let mut streams: Vec<Vec<Request>> = self.specs.iter().map(SessionSpec::stream).collect();
        streams.extend(self.background.iter().cloned());
        merge_streams(&streams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceConfig, TraceGenerator};

    fn chat_spec(seed: u64) -> SessionSpec {
        SessionSpec {
            tenant: TenantId(0),
            kind: SessionKind::Chat {
                turns: 4,
                think_mean_s: 20.0,
            },
            sessions: 12,
            rps: 0.05,
            dataset: Dataset::Cocktail,
            max_context: 131_072,
            seed,
        }
    }

    fn agentic_spec(seed: u64) -> SessionSpec {
        SessionSpec {
            tenant: TenantId(1),
            kind: SessionKind::Agentic {
                tools: 3,
                tool_delay_s: 5.0,
            },
            sessions: 8,
            rps: 0.04,
            dataset: Dataset::Arxiv,
            max_context: 131_072,
            seed,
        }
    }

    #[test]
    fn chat_dag_is_a_chain_with_growing_shared_prefix() {
        let spec = chat_spec(7);
        let mut rng = DetRng::new(9);
        let dag = spec.sample_dag(&mut rng);
        assert_eq!(dag.nodes.len(), 4);
        assert_eq!(dag.nodes[0].parent, None);
        assert_eq!(dag.nodes[0].shared_prefix_tokens, 0);
        let mut context = dag.nodes[0].input_len + dag.nodes[0].output_len;
        for (i, n) in dag.nodes.iter().enumerate().skip(1) {
            assert_eq!(n.parent, Some(i - 1));
            assert!(n.offset_s > dag.nodes[i - 1].offset_s);
            assert_eq!(n.shared_prefix_tokens, context.min(n.input_len - 1));
            assert!(n.shared_prefix_tokens < n.input_len);
            context = n.input_len + n.output_len;
        }
    }

    #[test]
    fn agentic_dag_fans_out_and_joins() {
        let spec = agentic_spec(11);
        let mut rng = DetRng::new(3);
        let dag = spec.sample_dag(&mut rng);
        assert_eq!(dag.nodes.len(), 1 + 3 + 1);
        for tool in &dag.nodes[1..4] {
            assert_eq!(tool.parent, Some(0));
            assert!(tool.shared_prefix_tokens > 0);
            assert!(tool.shared_prefix_tokens < tool.input_len);
        }
        let join = dag.nodes.last().unwrap();
        assert_eq!(join.parent, Some(3));
        assert!(
            join.offset_s
                >= dag.nodes[1..4]
                    .iter()
                    .map(|n| n.offset_s)
                    .fold(0.0, f64::max)
        );
    }

    #[test]
    fn merged_trace_has_valid_ids_parents_and_sessions() {
        let trace = SessionTrace::new(vec![chat_spec(1), agentic_spec(2)]).generate();
        assert_eq!(trace.len(), 12 * 4 + 8 * 5);
        let mut sessions_seen = std::collections::HashSet::new();
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(r.session >= 1);
            sessions_seen.insert(r.session);
            if let Some(p) = r.parent {
                assert!(p < r.id, "parent {p} must precede child {}", r.id);
                assert_eq!(trace[p as usize].session, r.session);
                assert!(trace[p as usize].arrival <= r.arrival);
                assert!(r.shared_prefix_tokens > 0);
                assert!(r.shared_prefix_tokens < r.input_len);
            }
        }
        assert_eq!(sessions_seen.len(), 12 + 8, "sessions stay globally unique");
        for w in trace.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SessionTrace::new(vec![chat_spec(5), agentic_spec(6)]).generate();
        let b = SessionTrace::new(vec![chat_spec(5), agentic_spec(6)]).generate();
        assert_eq!(a, b);
        let c = SessionTrace::new(vec![chat_spec(50), agentic_spec(6)]).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn background_stream_merges_untouched_apart_from_renumbering() {
        let background = TraceGenerator::new(TraceConfig::cocktail_default()).generate();
        let trace = SessionTrace::new(vec![chat_spec(1)])
            .with_background(background.clone())
            .generate();
        assert_eq!(trace.len(), 12 * 4 + background.len());
        let merged_bg: Vec<_> = trace.iter().filter(|r| r.session == 0).collect();
        assert_eq!(merged_bg.len(), background.len());
        for (orig, merged) in background.iter().zip(&merged_bg) {
            assert_eq!(orig.arrival.to_bits(), merged.arrival.to_bits());
            assert_eq!(orig.input_len, merged.input_len);
            assert_eq!(orig.output_len, merged.output_len);
            assert_eq!(merged.parent, None);
        }
    }

    #[test]
    fn single_turn_sessions_are_independent_requests_with_session_tags() {
        let spec = SessionSpec {
            kind: SessionKind::Chat {
                turns: 1,
                think_mean_s: 10.0,
            },
            ..chat_spec(3)
        };
        for r in SessionTrace::new(vec![spec]).generate() {
            assert!(r.session >= 1);
            assert_eq!(r.parent, None);
            assert_eq!(r.shared_prefix_tokens, 0);
        }
    }
}
