//! Poisson request-arrival process (§7.1: "The RPS was set to the maximum processing
//! capacity, following a Poisson distribution").

use hack_tensor::DetRng;

/// Generates arrival timestamps of a Poisson process with a given rate.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate_per_sec: f64,
    now: f64,
}

impl PoissonArrivals {
    /// Creates a process with `rate_per_sec` requests per second (RPS).
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(rate_per_sec > 0.0, "arrival rate must be positive");
        Self {
            rate_per_sec,
            now: 0.0,
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Returns the next arrival timestamp (seconds since the start of the trace).
    pub fn next_arrival(&mut self, rng: &mut DetRng) -> f64 {
        self.now += rng.exponential(self.rate_per_sec);
        self.now
    }

    /// Generates the first `n` arrival timestamps.
    pub fn take(&mut self, n: usize, rng: &mut DetRng) -> Vec<f64> {
        (0..n).map(|_| self.next_arrival(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_monotonically_increasing() {
        let mut rng = DetRng::new(1);
        let mut p = PoissonArrivals::new(0.5);
        let times = p.take(1000, &mut rng);
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(times[0] > 0.0);
    }

    #[test]
    fn mean_interarrival_matches_rate() {
        let mut rng = DetRng::new(2);
        let rate = 0.18;
        let mut p = PoissonArrivals::new(rate);
        let n = 50_000;
        let times = p.take(n, &mut rng);
        let mean_gap = times.last().unwrap() / n as f64;
        assert!(
            (mean_gap - 1.0 / rate).abs() / (1.0 / rate) < 0.03,
            "mean gap {mean_gap} vs expected {}",
            1.0 / rate
        );
    }

    #[test]
    fn interarrival_variance_is_exponential_like() {
        // For an exponential distribution the coefficient of variation is 1.
        let mut rng = DetRng::new(3);
        let mut p = PoissonArrivals::new(1.0);
        let times = p.take(50_000, &mut rng);
        let gaps: Vec<f64> = std::iter::once(times[0])
            .chain(times.windows(2).map(|w| w[1] - w[0]))
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "coefficient of variation {cv}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = PoissonArrivals::new(0.1);
        let mut b = PoissonArrivals::new(0.1);
        let mut rng_a = DetRng::new(9);
        let mut rng_b = DetRng::new(9);
        assert_eq!(a.take(100, &mut rng_a), b.take(100, &mut rng_b));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        PoissonArrivals::new(0.0);
    }
}
