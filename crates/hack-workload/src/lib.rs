//! # hack-workload
//!
//! Workload generation for the disaggregated-inference experiments: the four datasets
//! of Table 4 (IMDb classification, arXiv summarization, Cocktail IR, HumanEval) as
//! input/output-length distributions, plus a Poisson arrival process, combined into
//! request traces consumed by the cluster simulator. Traces are tenant-aware:
//! [`tenant::MultiTenantTrace`] merge-sorts several per-tenant streams (each with its
//! own dataset, rate and seed) into one deterministic trace. Traces are also
//! session-aware: [`session::SessionTrace`] generates multi-turn chat and agentic
//! tool-call DAGs whose requests carry session, parent and shared-prefix tags for
//! the cluster simulator's prefix cache.

pub mod arrivals;
pub mod dataset;
pub mod session;
pub mod tenant;
pub mod trace;

pub use arrivals::PoissonArrivals;
pub use dataset::{Dataset, LengthStats};
pub use session::{merge_streams, DagNode, RequestDag, SessionKind, SessionSpec, SessionTrace};
pub use tenant::{MultiTenantTrace, TenantSpec};
pub use trace::{Request, TenantId, TraceConfig, TraceGenerator};
