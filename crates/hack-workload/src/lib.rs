//! # hack-workload
//!
//! Workload generation for the disaggregated-inference experiments: the four datasets
//! of Table 4 (IMDb classification, arXiv summarization, Cocktail IR, HumanEval) as
//! input/output-length distributions, plus a Poisson arrival process, combined into
//! request traces consumed by the cluster simulator.

pub mod arrivals;
pub mod dataset;
pub mod trace;

pub use arrivals::PoissonArrivals;
pub use dataset::{Dataset, LengthStats};
pub use trace::{Request, TraceConfig, TraceGenerator};
