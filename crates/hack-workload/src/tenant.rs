//! Multi-tenant traces: several workload classes (dataset × rate × seed)
//! merged into one deterministic request stream for the cluster simulator.
//!
//! Each tenant is described by a [`TenantSpec`] — its own [`TraceConfig`]
//! (dataset, rate, request count, seed) under its own [`TenantId`]. The
//! builder samples one [`TraceTemplate`] per tenant, instantiates each at its
//! configured rate, and merge-sorts the streams by arrival time into one
//! globally ordered trace. The merge is *stable*: arrival ties are broken by
//! the tenants' order in the spec list, and each tenant's substream keeps its
//! internal order, so it is bit-identical to the standalone
//! [`TraceTemplate::instantiate`] output (pinned by test).

use crate::trace::{Request, TenantId, TraceConfig, TraceTemplate};

/// One tenant's workload: its identity plus the trace it generates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// Tenant identity carried on every generated request.
    pub tenant: TenantId,
    /// Trace parameters of this tenant's stream (its `rps` field is the rate
    /// the stream is instantiated at).
    pub trace: TraceConfig,
}

/// A deterministic multi-tenant trace: per-tenant [`TraceTemplate`] streams
/// merge-sorted into one arrival-ordered request stream.
#[derive(Debug, Clone)]
pub struct MultiTenantTrace {
    specs: Vec<TenantSpec>,
    templates: Vec<TraceTemplate>,
}

impl MultiTenantTrace {
    /// Samples one template per spec.
    ///
    /// # Panics
    /// Panics on an empty spec list, a duplicate [`TenantId`], or a
    /// non-positive per-tenant rate.
    pub fn new(specs: Vec<TenantSpec>) -> Self {
        assert!(
            !specs.is_empty(),
            "multi-tenant trace needs at least one tenant"
        );
        for (i, a) in specs.iter().enumerate() {
            assert!(
                a.trace.rps > 0.0,
                "{}: per-tenant arrival rate must be positive",
                a.tenant
            );
            for b in &specs[..i] {
                assert_ne!(a.tenant, b.tenant, "duplicate {}", a.tenant);
            }
        }
        let templates = specs.iter().map(|s| TraceTemplate::new(s.trace)).collect();
        Self { specs, templates }
    }

    /// The tenant specs, in merge-priority order.
    pub fn specs(&self) -> &[TenantSpec] {
        &self.specs
    }

    /// Total number of requests across all tenants.
    pub fn num_requests(&self) -> usize {
        self.specs.iter().map(|s| s.trace.num_requests).sum()
    }

    /// Largest `input_len + output_len` across every tenant's template.
    pub fn max_total_tokens(&self) -> usize {
        self.templates
            .iter()
            .map(TraceTemplate::max_total_tokens)
            .max()
            .unwrap_or(0)
    }

    /// One tenant's stream exactly as it enters the merge (tagged, ids local
    /// to the stream) — the oracle the merged trace's substreams are pinned
    /// against.
    pub fn tenant_stream(&self, tenant: TenantId) -> Option<Vec<Request>> {
        let i = self.specs.iter().position(|s| s.tenant == tenant)?;
        Some(self.templates[i].instantiate_tagged(self.specs[i].trace.rps, tenant))
    }

    /// Materialises the merged trace: globally sorted by arrival time (stable
    /// on ties: spec order, then per-stream order), with ids re-numbered to
    /// the global trace position.
    pub fn generate(&self) -> Vec<Request> {
        let mut merged: Vec<Request> = self
            .specs
            .iter()
            .zip(&self.templates)
            .flat_map(|(spec, template)| template.instantiate_tagged(spec.trace.rps, spec.tenant))
            .collect();
        // Within a stream arrivals are strictly increasing, so a stable sort
        // of the concatenation preserves every stream's internal order and
        // breaks cross-tenant ties by spec order.
        merged.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("finite arrivals"));
        for (i, r) in merged.iter_mut().enumerate() {
            r.id = i as u64;
        }
        merged
    }

    /// Extracts one tenant's substream from a merged trace, re-numbering ids
    /// to the substream position (so it compares equal to
    /// [`Self::tenant_stream`]).
    pub fn substream(trace: &[Request], tenant: TenantId) -> Vec<Request> {
        trace
            .iter()
            .filter(|r| r.tenant == tenant)
            .enumerate()
            .map(|(i, r)| Request { id: i as u64, ..*r })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn spec(tenant: u32, dataset: Dataset, rps: f64, n: usize, seed: u64) -> TenantSpec {
        TenantSpec {
            tenant: TenantId(tenant),
            trace: TraceConfig {
                dataset,
                rps,
                num_requests: n,
                max_context: 131_072,
                seed,
            },
        }
    }

    fn two_tenant() -> MultiTenantTrace {
        MultiTenantTrace::new(vec![
            spec(0, Dataset::Cocktail, 0.2, 120, 7),
            spec(1, Dataset::Imdb, 0.9, 80, 21),
        ])
    }

    #[test]
    fn merge_is_globally_time_sorted_with_global_ids() {
        let trace = two_tenant().generate();
        assert_eq!(trace.len(), 200);
        for (i, w) in trace.windows(2).enumerate() {
            assert!(
                w[1].arrival >= w[0].arrival,
                "out of order at {i}: {} after {}",
                w[1].arrival,
                w[0].arrival
            );
        }
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
    }

    #[test]
    fn substreams_are_bit_identical_to_standalone_instantiation() {
        let mt = two_tenant();
        let trace = mt.generate();
        for tenant in [TenantId(0), TenantId(1)] {
            let substream = MultiTenantTrace::substream(&trace, tenant);
            let standalone = mt.tenant_stream(tenant).unwrap();
            assert_eq!(substream.len(), standalone.len(), "{tenant}");
            for (a, b) in substream.iter().zip(&standalone) {
                assert_eq!(a, b, "{tenant}");
                assert_eq!(a.arrival.to_bits(), b.arrival.to_bits(), "{tenant}");
            }
        }
    }

    #[test]
    fn merge_is_stable_on_arrival_ties() {
        // Identical (dataset, rate, seed) streams produce identical arrival
        // sequences — every arrival is a cross-tenant tie. Stability means the
        // earlier spec's request always precedes the later spec's.
        let mt = MultiTenantTrace::new(vec![
            spec(4, Dataset::HumanEval, 0.5, 50, 3),
            spec(2, Dataset::HumanEval, 0.5, 50, 3),
        ]);
        let trace = mt.generate();
        assert_eq!(trace.len(), 100);
        for pair in trace.chunks(2) {
            assert_eq!(pair[0].arrival.to_bits(), pair[1].arrival.to_bits());
            assert_eq!(pair[0].tenant, TenantId(4), "spec order breaks ties");
            assert_eq!(pair[1].tenant, TenantId(2));
        }
    }

    #[test]
    fn trace_is_deterministic() {
        let a = two_tenant().generate();
        let b = two_tenant().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn max_total_tokens_covers_all_tenants() {
        let mt = two_tenant();
        let expected = mt
            .generate()
            .iter()
            .map(Request::total_tokens)
            .max()
            .unwrap();
        assert_eq!(mt.max_total_tokens(), expected);
    }

    #[test]
    #[should_panic(expected = "duplicate tenant-3")]
    fn duplicate_tenants_are_rejected() {
        MultiTenantTrace::new(vec![
            spec(3, Dataset::Imdb, 0.1, 10, 1),
            spec(3, Dataset::Arxiv, 0.1, 10, 2),
        ]);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_is_rejected() {
        MultiTenantTrace::new(vec![spec(0, Dataset::Imdb, 0.0, 10, 1)]);
    }
}
