//! Dataset length models (Table 4 of the paper).

use hack_tensor::DetRng;
use serde::{Deserialize, Serialize};

/// Average / minimum / maximum token-length statistics of one side (input or output)
/// of a dataset, as reported in Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LengthStats {
    /// Average length in tokens.
    pub avg: usize,
    /// Minimum length in tokens.
    pub min: usize,
    /// Maximum length in tokens.
    pub max: usize,
}

impl LengthStats {
    /// Samples a length from a log-normal distribution fitted to (avg, min, max) and
    /// clamped to `[min, max]`.
    ///
    /// A log-normal captures the long right tail of real prompt-length distributions;
    /// `sigma` is chosen so that the `min`–`max` span corresponds to roughly ±3 sigma
    /// in log space, and `mu` is set so the distribution mean equals `avg`.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        if self.min == self.max {
            return self.min;
        }
        let span = (self.max as f64 / self.min.max(1) as f64).ln();
        let sigma = (span / 6.0).clamp(0.05, 1.5);
        // Mean of lognormal = exp(mu + sigma^2/2)  =>  mu = ln(avg) - sigma^2/2.
        let mu = (self.avg as f64).ln() - sigma * sigma / 2.0;
        let sampled = rng.log_normal(mu, sigma).round() as usize;
        sampled.clamp(self.min, self.max)
    }
}

/// The four datasets of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// IMDb genre classification — short prompts, short outputs.
    Imdb,
    /// arXiv summarization — long prompts (1.6K–14.1K), medium outputs.
    Arxiv,
    /// Cocktail IR benchmark — very long prompts (9.4K–28.8K) — the paper's default.
    Cocktail,
    /// HumanEval code completion — short prompts, medium outputs.
    HumanEval,
}

impl Dataset {
    /// All four datasets in the paper's order.
    pub fn all() -> [Dataset; 4] {
        [
            Dataset::Imdb,
            Dataset::Arxiv,
            Dataset::Cocktail,
            Dataset::HumanEval,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Imdb => "IMDb",
            Dataset::Arxiv => "arXiv",
            Dataset::Cocktail => "Cocktail",
            Dataset::HumanEval => "HumanEval",
        }
    }

    /// Input-length statistics (Table 4).
    pub fn input_stats(&self) -> LengthStats {
        match self {
            Dataset::Imdb => LengthStats {
                avg: 315,
                min: 106,
                max: 821,
            },
            Dataset::Arxiv => LengthStats {
                avg: 6_300,
                min: 1_600,
                max: 14_100,
            },
            Dataset::Cocktail => LengthStats {
                avg: 16_200,
                min: 9_400,
                max: 28_800,
            },
            Dataset::HumanEval => LengthStats {
                avg: 204,
                min: 75,
                max: 697,
            },
        }
    }

    /// Output-length statistics (Table 4).
    pub fn output_stats(&self) -> LengthStats {
        match self {
            Dataset::Imdb => LengthStats {
                avg: 37,
                min: 16,
                max: 87,
            },
            Dataset::Arxiv => LengthStats {
                avg: 243,
                min: 29,
                max: 464,
            },
            Dataset::Cocktail => LengthStats {
                avg: 159,
                min: 44,
                max: 246,
            },
            Dataset::HumanEval => LengthStats {
                avg: 139,
                min: 11,
                max: 552,
            },
        }
    }

    /// Whether this is one of the paper's "long-sequence" datasets (arXiv, Cocktail).
    pub fn is_long_sequence(&self) -> bool {
        matches!(self, Dataset::Arxiv | Dataset::Cocktail)
    }

    /// Samples one (input_len, output_len) pair. Inputs are capped at `max_context`
    /// minus the sampled output length (the Falcon-180B 2K-context case of §7.1).
    pub fn sample_lengths(&self, max_context: usize, rng: &mut DetRng) -> (usize, usize) {
        let output = self.output_stats().sample(rng).max(1);
        let input_cap = max_context.saturating_sub(output).max(1);
        let input = self.input_stats().sample(rng).min(input_cap).max(1);
        (input, output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_values() {
        assert_eq!(Dataset::Cocktail.input_stats().avg, 16_200);
        assert_eq!(Dataset::Cocktail.input_stats().max, 28_800);
        assert_eq!(Dataset::Imdb.output_stats().avg, 37);
        assert_eq!(Dataset::Arxiv.input_stats().min, 1_600);
        assert_eq!(Dataset::HumanEval.output_stats().max, 552);
    }

    #[test]
    fn samples_respect_bounds() {
        let mut rng = DetRng::new(1);
        for ds in Dataset::all() {
            let istats = ds.input_stats();
            let ostats = ds.output_stats();
            for _ in 0..2000 {
                let (i, o) = ds.sample_lengths(usize::MAX, &mut rng);
                assert!(
                    i >= istats.min && i <= istats.max,
                    "{}: input {i}",
                    ds.name()
                );
                assert!(
                    o >= ostats.min && o <= ostats.max,
                    "{}: output {o}",
                    ds.name()
                );
            }
        }
    }

    #[test]
    fn sample_mean_tracks_average() {
        let mut rng = DetRng::new(2);
        for ds in Dataset::all() {
            let stats = ds.input_stats();
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| stats.sample(&mut rng) as f64).sum::<f64>() / n as f64;
            let ratio = mean / stats.avg as f64;
            assert!(
                (0.8..1.25).contains(&ratio),
                "{}: sample mean {mean:.1} vs avg {} (ratio {ratio:.2})",
                ds.name(),
                stats.avg
            );
        }
    }

    #[test]
    fn context_cap_limits_input() {
        let mut rng = DetRng::new(3);
        // Falcon-180B style 2K context cap on a long dataset.
        for _ in 0..500 {
            let (i, o) = Dataset::Arxiv.sample_lengths(2048, &mut rng);
            assert!(i + o <= 2048 + Dataset::Arxiv.output_stats().max);
            assert!(i <= 2048);
        }
    }

    #[test]
    fn long_sequence_flags() {
        assert!(Dataset::Cocktail.is_long_sequence());
        assert!(Dataset::Arxiv.is_long_sequence());
        assert!(!Dataset::Imdb.is_long_sequence());
        assert!(!Dataset::HumanEval.is_long_sequence());
    }

    #[test]
    fn degenerate_stats_sample_constant() {
        let s = LengthStats {
            avg: 5,
            min: 5,
            max: 5,
        };
        let mut rng = DetRng::new(4);
        assert_eq!(s.sample(&mut rng), 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        let sa: Vec<usize> = (0..100)
            .map(|_| Dataset::Cocktail.input_stats().sample(&mut a))
            .collect();
        let sb: Vec<usize> = (0..100)
            .map(|_| Dataset::Cocktail.input_stats().sample(&mut b))
            .collect();
        assert_eq!(sa, sb);
    }
}
