//! Request traces: datasets × arrival process → the stream of requests the cluster
//! simulator replays.

use crate::arrivals::PoissonArrivals;
use crate::dataset::Dataset;
use hack_tensor::DetRng;
use serde::{Deserialize, Serialize, Value};

/// Identity of the workload class ("tenant") a request belongs to.
///
/// Single-workload traces use [`TenantId::default`] (tenant 0); multi-tenant
/// traces built by [`crate::tenant::MultiTenantTrace`] tag each request with
/// the tenant whose stream produced it, and the tag rides through the cluster
/// simulator into the per-request results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant index as a plain `usize` (array key into per-tenant state).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

// Tuple structs are outside the derive stub's coverage; serialize as a bare
// number so traces stay flat JSON.
impl Serialize for TenantId {
    fn serialize_value(&self) -> Value {
        Value::Number(f64::from(self.0))
    }
}

impl Deserialize for TenantId {}

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Request id (position in the trace).
    pub id: u64,
    /// Tenant (workload class) the request belongs to.
    pub tenant: TenantId,
    /// Arrival time in seconds since the start of the trace.
    pub arrival: f64,
    /// Prompt length in tokens.
    pub input_len: usize,
    /// Number of output tokens to generate.
    pub output_len: usize,
    /// Session the request belongs to (0 = independent, no session).
    ///
    /// Session-structured traces ([`crate::session::SessionTrace`]) number
    /// sessions from 1; every turn/tool-call of one conversation shares the
    /// session id, which keys the decode-side prefix cache.
    pub session: u64,
    /// Trace id of the request this one follows up on, if any.
    ///
    /// A request with a parent is *gated*: the simulator dispatches it no
    /// earlier than its parent's completion, at `max(arrival, parent finish)`.
    pub parent: Option<u64>,
    /// Leading tokens of `input_len` shared verbatim with the parent's final
    /// context — the KV prefix a cache hit can skip re-prefilling.
    pub shared_prefix_tokens: usize,
}

impl Request {
    /// Total sequence length at the end of decoding.
    pub fn total_tokens(&self) -> usize {
        self.input_len + self.output_len
    }

    /// Decodes a request from its serialized [`Value`] tree (the stub serde's
    /// data model; `serde_json::from_str` produces these).
    ///
    /// Trace snapshots written before multi-tenancy carry no `tenant` key and
    /// pre-session snapshots carry no `session`/`parent`/`shared_prefix_tokens`
    /// keys; those decode with the defaults (tenant 0, independent request), so
    /// old snapshots stay readable. A *present* but malformed optional key is
    /// corruption, not an old snapshot, and is rejected like any other
    /// malformed field (`parent` may be `null` — that is how `None`
    /// serializes — but not, say, a string).
    pub fn from_value(value: &Value) -> Option<Request> {
        let tenant = match value.get_key("tenant") {
            None => TenantId::default(),
            Some(t) => TenantId(t.as_f64()? as u32),
        };
        let session = match value.get_key("session") {
            None => 0,
            Some(s) => s.as_f64()? as u64,
        };
        let parent = match value.get_key("parent") {
            None | Some(Value::Null) => None,
            Some(p) => Some(p.as_f64()? as u64),
        };
        let shared_prefix_tokens = match value.get_key("shared_prefix_tokens") {
            None => 0,
            Some(s) => s.as_f64()? as usize,
        };
        Some(Request {
            id: value.get_key("id")?.as_f64()? as u64,
            tenant,
            arrival: value.get_key("arrival")?.as_f64()?,
            input_len: value.get_key("input_len")?.as_f64()? as usize,
            output_len: value.get_key("output_len")?.as_f64()? as usize,
            session,
            parent,
            shared_prefix_tokens,
        })
    }
}

/// Trace-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Dataset providing the length distributions.
    pub dataset: Dataset,
    /// Requests per second of the Poisson arrival process.
    pub rps: f64,
    /// Number of requests in the trace.
    pub num_requests: usize,
    /// Context-window cap of the model serving the trace (inputs are clamped).
    pub max_context: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TraceConfig {
    /// A default trace: the paper's default dataset (Cocktail) at a moderate rate.
    pub fn cocktail_default() -> Self {
        Self {
            dataset: Dataset::Cocktail,
            rps: 0.1,
            num_requests: 100,
            max_context: 131_072,
            seed: 42,
        }
    }
}

/// Generates request traces.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: TraceConfig,
}

impl TraceGenerator {
    /// Creates a generator for the given configuration.
    pub fn new(config: TraceConfig) -> Self {
        assert!(
            config.num_requests > 0,
            "trace must contain at least one request"
        );
        Self { config }
    }

    /// The configuration this generator uses.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Generates the full trace.
    pub fn generate(&self) -> Vec<Request> {
        let mut rng = DetRng::new(self.config.seed);
        let mut arrivals = PoissonArrivals::new(self.config.rps);
        (0..self.config.num_requests as u64)
            .map(|id| {
                let arrival = arrivals.next_arrival(&mut rng);
                let (input_len, output_len) = self
                    .config
                    .dataset
                    .sample_lengths(self.config.max_context, &mut rng);
                Request {
                    id,
                    tenant: TenantId::default(),
                    arrival,
                    input_len,
                    output_len,
                    session: 0,
                    parent: None,
                    shared_prefix_tokens: 0,
                }
            })
            .collect()
    }
}

/// A rate-independent trace template: the random draws of a trace with the
/// request rate factored out, so one sampling pass can be instantiated at many
/// rates.
///
/// [`TraceGenerator::generate`] interleaves two streams from one seeded RNG:
/// exponential inter-arrival gaps (`-ln(u) / rps`) and per-request length
/// pairs. Only the division by `rps` depends on the rate, so the template
/// stores the unit-rate gaps (`-ln(u)`) and the lengths once;
/// [`TraceTemplate::instantiate`] divides and accumulates exactly the way the
/// generator does, producing **bit-identical** traces (pinned by test). The
/// capacity bisection in `hack-core` uses this to synthesise its probe trace
/// once instead of once per probed rate.
#[derive(Debug, Clone)]
pub struct TraceTemplate {
    config: TraceConfig,
    /// `-ln(u)` draws: inter-arrival gaps of a unit-rate Poisson process.
    unit_gaps: Vec<f64>,
    /// `(input_len, output_len)` per request.
    lengths: Vec<(usize, usize)>,
}

impl TraceTemplate {
    /// Samples the template for `config` (whose `rps` field is irrelevant here;
    /// the rate is chosen per [`Self::instantiate`] call).
    pub fn new(config: TraceConfig) -> Self {
        assert!(
            config.num_requests > 0,
            "trace must contain at least one request"
        );
        let mut rng = DetRng::new(config.seed);
        let mut unit_gaps = Vec::with_capacity(config.num_requests);
        let mut lengths = Vec::with_capacity(config.num_requests);
        for _ in 0..config.num_requests {
            // exponential(1.0) divides -ln(u) by exactly 1.0, so the stored gap
            // is the raw -ln(u) draw and consumes the same RNG stream as
            // `PoissonArrivals` does at any rate.
            unit_gaps.push(rng.exponential(1.0));
            lengths.push(config.dataset.sample_lengths(config.max_context, &mut rng));
        }
        Self {
            config,
            unit_gaps,
            lengths,
        }
    }

    /// The configuration the template was sampled from.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Largest `input_len + output_len` in the template (sizes cost tables).
    pub fn max_total_tokens(&self) -> usize {
        self.lengths.iter().map(|(i, o)| i + o).max().unwrap_or(0)
    }

    /// Materialises the trace at `rps`, bit-identical to
    /// `TraceGenerator::new(TraceConfig { rps, ..config }).generate()`.
    pub fn instantiate(&self, rps: f64) -> Vec<Request> {
        self.instantiate_tagged(rps, TenantId::default())
    }

    /// [`Self::instantiate`] with every request tagged as `tenant` — the
    /// per-tenant substreams of a [`crate::tenant::MultiTenantTrace`]. The
    /// arrival times and lengths are bit-identical to the untagged trace.
    pub fn instantiate_tagged(&self, rps: f64, tenant: TenantId) -> Vec<Request> {
        assert!(rps > 0.0, "arrival rate must be positive");
        let mut now = 0.0f64;
        self.unit_gaps
            .iter()
            .zip(&self.lengths)
            .enumerate()
            .map(|(id, (gap, &(input_len, output_len)))| {
                now += gap / rps;
                Request {
                    id: id as u64,
                    tenant,
                    arrival: now,
                    input_len,
                    output_len,
                    session: 0,
                    parent: None,
                    shared_prefix_tokens: 0,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_requested_length_and_ordering() {
        let gen = TraceGenerator::new(TraceConfig {
            dataset: Dataset::Arxiv,
            rps: 0.2,
            num_requests: 250,
            max_context: 131_072,
            seed: 1,
        });
        let trace = gen.generate();
        assert_eq!(trace.len(), 250);
        for w in trace.windows(2) {
            assert!(w[1].arrival > w[0].arrival);
            assert_eq!(w[1].id, w[0].id + 1);
        }
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let cfg = TraceConfig::cocktail_default();
        let a = TraceGenerator::new(cfg).generate();
        let b = TraceGenerator::new(cfg).generate();
        assert_eq!(a, b);
        let c = TraceGenerator::new(TraceConfig { seed: 43, ..cfg }).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn lengths_fall_within_dataset_bounds() {
        let cfg = TraceConfig {
            dataset: Dataset::HumanEval,
            rps: 1.0,
            num_requests: 500,
            max_context: 131_072,
            seed: 3,
        };
        let trace = TraceGenerator::new(cfg).generate();
        let istats = Dataset::HumanEval.input_stats();
        let ostats = Dataset::HumanEval.output_stats();
        for r in &trace {
            assert!(r.input_len >= istats.min && r.input_len <= istats.max);
            assert!(r.output_len >= ostats.min && r.output_len <= ostats.max);
            assert_eq!(r.total_tokens(), r.input_len + r.output_len);
        }
    }

    #[test]
    fn context_cap_is_enforced() {
        let cfg = TraceConfig {
            dataset: Dataset::Cocktail,
            rps: 0.1,
            num_requests: 200,
            max_context: 2048,
            seed: 4,
        };
        for r in TraceGenerator::new(cfg).generate() {
            assert!(r.input_len <= 2048);
        }
    }

    #[test]
    fn template_instantiates_bit_identical_traces_at_any_rate() {
        for dataset in Dataset::all() {
            let cfg = TraceConfig {
                dataset,
                rps: 0.0, // irrelevant to the template
                num_requests: 300,
                max_context: 131_072,
                seed: 17,
            };
            let template = TraceTemplate::new(cfg);
            for rps in [0.013, 0.08, 1.0, 7.5] {
                let direct = TraceGenerator::new(TraceConfig { rps, ..cfg }).generate();
                let templated = template.instantiate(rps);
                assert_eq!(direct, templated, "{}: rps {rps}", dataset.name());
            }
        }
    }

    #[test]
    fn template_reports_max_total_tokens() {
        let cfg = TraceConfig::cocktail_default();
        let template = TraceTemplate::new(cfg);
        let expected = TraceGenerator::new(cfg)
            .generate()
            .iter()
            .map(Request::total_tokens)
            .max()
            .unwrap();
        assert_eq!(template.max_total_tokens(), expected);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn template_rejects_zero_rate() {
        TraceTemplate::new(TraceConfig::cocktail_default()).instantiate(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn empty_trace_panics() {
        TraceGenerator::new(TraceConfig {
            num_requests: 0,
            ..TraceConfig::cocktail_default()
        });
    }

    #[test]
    fn request_serde_round_trips_exactly() {
        // f64 serialization uses the shortest round-trippable representation,
        // so a JSON round trip must reproduce the request bit-for-bit —
        // including the tenant tag and the session fields.
        let mut trace = TraceTemplate::new(TraceConfig::cocktail_default())
            .instantiate_tagged(0.37, TenantId(3));
        for (i, r) in trace.iter_mut().enumerate() {
            if i % 3 == 1 {
                r.session = 1 + i as u64 / 3;
                r.parent = Some(i as u64 - 1);
                r.shared_prefix_tokens = r.input_len / 2;
            }
        }
        for r in trace {
            let json = serde_json::to_string(&r).unwrap();
            let value = serde_json::from_str(&json).unwrap();
            let back = Request::from_value(&value).expect("decodes");
            assert_eq!(back, r);
            assert_eq!(back.arrival.to_bits(), r.arrival.to_bits());
        }
    }

    #[test]
    fn pre_tenant_snapshots_decode_as_tenant_zero() {
        // Trace snapshots written before multi-tenancy have no `tenant` key;
        // they must keep decoding (forward compatibility).
        let json = r#"{"id":5,"arrival":12.25,"input_len":100,"output_len":7}"#;
        let value = serde_json::from_str(json).unwrap();
        let r = Request::from_value(&value).expect("old snapshot decodes");
        assert_eq!(
            r,
            Request {
                id: 5,
                tenant: TenantId::default(),
                arrival: 12.25,
                input_len: 100,
                output_len: 7,
                session: 0,
                parent: None,
                shared_prefix_tokens: 0,
            }
        );
        // A malformed snapshot is rejected, not silently defaulted: a missing
        // required key, or a `tenant` key that is present but non-numeric.
        let bad = serde_json::from_str(r#"{"id":5,"arrival":1.0}"#).unwrap();
        assert!(Request::from_value(&bad).is_none());
        let corrupt = serde_json::from_str(
            r#"{"id":5,"tenant":"1","arrival":1.0,"input_len":10,"output_len":2}"#,
        )
        .unwrap();
        assert!(
            Request::from_value(&corrupt).is_none(),
            "non-numeric tenant must be rejected, not defaulted"
        );
    }

    #[test]
    fn pre_session_snapshots_decode_as_independent_requests() {
        // Pre-session snapshots (no session/parent/shared_prefix_tokens keys)
        // decode as independent requests; `parent: null` is how `None`
        // serializes and must also decode as `None`.
        let json = r#"{"id":2,"tenant":1,"arrival":3.5,"input_len":64,"output_len":8}"#;
        let value = serde_json::from_str(json).unwrap();
        let r = Request::from_value(&value).expect("pre-session snapshot decodes");
        assert_eq!(r.session, 0);
        assert_eq!(r.parent, None);
        assert_eq!(r.shared_prefix_tokens, 0);

        let json = r#"{"id":2,"tenant":1,"arrival":3.5,"input_len":64,"output_len":8,
                       "session":4,"parent":null,"shared_prefix_tokens":0}"#;
        let value = serde_json::from_str(json).unwrap();
        let r = Request::from_value(&value).expect("null parent decodes");
        assert_eq!(r.session, 4);
        assert_eq!(r.parent, None);

        let json = r#"{"id":2,"tenant":1,"arrival":3.5,"input_len":64,"output_len":8,
                       "session":4,"parent":1,"shared_prefix_tokens":32}"#;
        let value = serde_json::from_str(json).unwrap();
        let r = Request::from_value(&value).expect("numeric parent decodes");
        assert_eq!(r.parent, Some(1));
        assert_eq!(r.shared_prefix_tokens, 32);

        // Present-but-malformed session fields are corruption, not back-compat.
        let corrupt = serde_json::from_str(
            r#"{"id":2,"arrival":3.5,"input_len":64,"output_len":8,"parent":"x"}"#,
        )
        .unwrap();
        assert!(
            Request::from_value(&corrupt).is_none(),
            "non-numeric parent must be rejected, not defaulted"
        );
    }
}
