//! Request traces: datasets × arrival process → the stream of requests the cluster
//! simulator replays.

use crate::arrivals::PoissonArrivals;
use crate::dataset::Dataset;
use hack_tensor::DetRng;
use serde::{Deserialize, Serialize};

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Request id (position in the trace).
    pub id: u64,
    /// Arrival time in seconds since the start of the trace.
    pub arrival: f64,
    /// Prompt length in tokens.
    pub input_len: usize,
    /// Number of output tokens to generate.
    pub output_len: usize,
}

impl Request {
    /// Total sequence length at the end of decoding.
    pub fn total_tokens(&self) -> usize {
        self.input_len + self.output_len
    }
}

/// Trace-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Dataset providing the length distributions.
    pub dataset: Dataset,
    /// Requests per second of the Poisson arrival process.
    pub rps: f64,
    /// Number of requests in the trace.
    pub num_requests: usize,
    /// Context-window cap of the model serving the trace (inputs are clamped).
    pub max_context: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TraceConfig {
    /// A default trace: the paper's default dataset (Cocktail) at a moderate rate.
    pub fn cocktail_default() -> Self {
        Self {
            dataset: Dataset::Cocktail,
            rps: 0.1,
            num_requests: 100,
            max_context: 131_072,
            seed: 42,
        }
    }
}

/// Generates request traces.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: TraceConfig,
}

impl TraceGenerator {
    /// Creates a generator for the given configuration.
    pub fn new(config: TraceConfig) -> Self {
        assert!(
            config.num_requests > 0,
            "trace must contain at least one request"
        );
        Self { config }
    }

    /// The configuration this generator uses.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Generates the full trace.
    pub fn generate(&self) -> Vec<Request> {
        let mut rng = DetRng::new(self.config.seed);
        let mut arrivals = PoissonArrivals::new(self.config.rps);
        (0..self.config.num_requests as u64)
            .map(|id| {
                let arrival = arrivals.next_arrival(&mut rng);
                let (input_len, output_len) = self
                    .config
                    .dataset
                    .sample_lengths(self.config.max_context, &mut rng);
                Request {
                    id,
                    arrival,
                    input_len,
                    output_len,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_requested_length_and_ordering() {
        let gen = TraceGenerator::new(TraceConfig {
            dataset: Dataset::Arxiv,
            rps: 0.2,
            num_requests: 250,
            max_context: 131_072,
            seed: 1,
        });
        let trace = gen.generate();
        assert_eq!(trace.len(), 250);
        for w in trace.windows(2) {
            assert!(w[1].arrival > w[0].arrival);
            assert_eq!(w[1].id, w[0].id + 1);
        }
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let cfg = TraceConfig::cocktail_default();
        let a = TraceGenerator::new(cfg).generate();
        let b = TraceGenerator::new(cfg).generate();
        assert_eq!(a, b);
        let c = TraceGenerator::new(TraceConfig { seed: 43, ..cfg }).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn lengths_fall_within_dataset_bounds() {
        let cfg = TraceConfig {
            dataset: Dataset::HumanEval,
            rps: 1.0,
            num_requests: 500,
            max_context: 131_072,
            seed: 3,
        };
        let trace = TraceGenerator::new(cfg).generate();
        let istats = Dataset::HumanEval.input_stats();
        let ostats = Dataset::HumanEval.output_stats();
        for r in &trace {
            assert!(r.input_len >= istats.min && r.input_len <= istats.max);
            assert!(r.output_len >= ostats.min && r.output_len <= ostats.max);
            assert_eq!(r.total_tokens(), r.input_len + r.output_len);
        }
    }

    #[test]
    fn context_cap_is_enforced() {
        let cfg = TraceConfig {
            dataset: Dataset::Cocktail,
            rps: 0.1,
            num_requests: 200,
            max_context: 2048,
            seed: 4,
        };
        for r in TraceGenerator::new(cfg).generate() {
            assert!(r.input_len <= 2048);
        }
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn empty_trace_panics() {
        TraceGenerator::new(TraceConfig {
            num_requests: 0,
            ..TraceConfig::cocktail_default()
        });
    }
}
