//! Accuracy/fidelity evaluation of every method (the Table 6 proxy).
//!
//! Runs the reference transformer and the kernel-level fidelity experiments for the
//! baseline, CacheGen-like, KVQuant-like, FP4 and the three HACK partition sizes, and
//! prints both the raw fidelity measurements and the accuracy proxy anchored at the
//! paper's Cocktail/Llama-3.1-70B baseline accuracy (86.39%).
//!
//! Run with: `cargo run --release --example accuracy_eval`

use hack_core::fidelity::{evaluate_all, FidelitySetup};
use hack_core::prelude::*;

fn main() {
    let methods = [
        Method::Baseline,
        Method::Hack { partition: 32 },
        Method::hack(),
        Method::CacheGen,
        Method::KvQuant,
        Method::Hack { partition: 128 },
        Method::Fp4,
    ];
    let setup = FidelitySetup::default();
    println!(
        "Evaluating fidelity with {} trials, kernel sequence length {}, {} generated tokens...\n",
        setup.trials, setup.kernel_seq_len, setup.generate_tokens
    );
    let reports = evaluate_all(&methods, &setup);

    let mut table = ExperimentTable::new(
        "accuracy_eval",
        "Numerical fidelity and accuracy proxy (anchored at 86.39% baseline accuracy)",
        vec![
            "attention cos".into(),
            "logit cos".into(),
            "token agree".into(),
            "ROUGE-1".into(),
            "edit sim".into(),
            "accuracy proxy %".into(),
        ],
        "mixed",
    );
    let baseline_accuracy = 86.39;
    for r in &reports {
        table.push_row(Row::new(
            r.method_name.clone(),
            vec![
                r.attention_cosine,
                r.logit_cosine,
                r.token_agreement,
                r.rouge1,
                r.edit_similarity,
                r.accuracy_proxy(baseline_accuracy, 3.0),
            ],
        ));
    }
    println!("{}", table.render());
    println!(
        "Expected shape (Table 6): HACK Pi=32 ≥ HACK Pi=64 ≥ CacheGen ≈ KVQuant ≳ HACK Pi=128,\n\
         all within a few points of the baseline."
    );
}
