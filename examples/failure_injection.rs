//! Fault injection: a decode replica dies mid-run and the cluster rides it out.
//!
//! This scenario is impossible to express in the original monolithic simulator —
//! it needs event cancellation (aborting in-flight decodes) and dynamic
//! membership of the decode fleet, both of which come from the `hack-sim`
//! engine underneath the refactored `hack-cluster`. A decode replica fails in
//! the middle of the run, its in-flight requests are aborted and re-queued onto
//! the surviving replicas (re-transferring their KV data from the prefill
//! side's CPU copy), and the replica later rejoins the fleet empty.
//!
//! Run with: `cargo run --release --example failure_injection`

use hack_core::prelude::*;

fn breakdown_line(result: &hack_cluster::SimulationResult) -> String {
    let r = result.average_ratios();
    format!(
        "prefill {:>4.1}% | comm {:>4.1}% | decode {:>4.1}% | queue {:>4.1}%",
        100.0 * r.prefill,
        100.0 * r.communication,
        100.0 * r.decode,
        100.0 * r.queueing
    )
}

fn main() {
    let num_requests = 60;
    let experiment = JctExperiment {
        num_requests,
        rps: Some(0.08),
        ..JctExperiment::paper_default()
    };
    let base_config = SimulationConfig {
        cluster: experiment.cluster_config(),
        trace: TraceConfig {
            dataset: Dataset::Cocktail,
            rps: 0.08,
            num_requests,
            max_context: ModelKind::Llama31_70B.spec().max_context,
            seed: 7,
        },
        profile: Method::hack().profile(),
        policy: PolicyConfig::default(),
        failure: None,
        telemetry: TelemetryConfig::Off,
    };

    println!("== Fault injection on the paper-default cluster (HACK, Cocktail) ==\n");

    // Healthy reference run.
    let healthy = Simulator::new(base_config).run();
    println!(
        "healthy : {} requests, avg JCT {:>7.2}s, makespan {:>7.1}s",
        healthy.records.len(),
        healthy.average_jct(),
        healthy.makespan
    );
    println!("          {}", breakdown_line(&healthy));

    // Pick the busiest decode replica and kill it mid-run, recovering later.
    let mut served = vec![0usize; base_config.cluster.decode_replicas()];
    for r in &healthy.records {
        served[r.decode_replica] += 1;
    }
    let victim = served
        .iter()
        .enumerate()
        .max_by_key(|(_, n)| **n)
        .map(|(i, _)| i)
        .unwrap();
    let fail_at = 0.25 * healthy.makespan;
    let recover_at = 0.75 * healthy.makespan;
    println!(
        "\ninjecting: decode replica {victim} (serving {}/{} requests) fails at t={fail_at:.0}s, recovers at t={recover_at:.0}s\n",
        served[victim],
        healthy.records.len()
    );

    let failed = Simulator::new(SimulationConfig {
        failure: Some(FailureSpec::transient(victim, fail_at, recover_at)),
        ..base_config
    })
    .run();
    println!(
        "failure : {} requests, avg JCT {:>7.2}s, makespan {:>7.1}s",
        failed.records.len(),
        failed.average_jct(),
        failed.makespan
    );
    println!("          {}", breakdown_line(&failed));
    println!(
        "          {} re-queues caused by the outage; {} requests waited for memory",
        failed.requeued_requests, failed.swapped_requests
    );

    let mut served_failed = vec![0usize; base_config.cluster.decode_replicas()];
    for r in &failed.records {
        served_failed[r.decode_replica] += 1;
    }
    println!("\nrequests served per decode replica:");
    for (i, (h, f)) in served.iter().zip(served_failed.iter()).enumerate() {
        let marker = if i == victim {
            "  <- failed replica"
        } else {
            ""
        };
        println!("  decode-{i}: healthy {h:>3}  vs  with outage {f:>3}{marker}");
    }

    let slowdown = failed.average_jct() / healthy.average_jct();
    println!(
        "\nimpact: {:.1}% average-JCT inflation from losing 1/{} of the decode fleet for half the run",
        100.0 * (slowdown - 1.0),
        base_config.cluster.decode_replicas()
    );
    assert_eq!(
        failed.records.len(),
        healthy.records.len(),
        "every request must still complete despite the outage"
    );
    println!(
        "all {} requests completed despite the outage.",
        failed.records.len()
    );
}
