//! Fault injection: a decode replica dies mid-run and the cluster rides it out,
//! then a whole ToR switch takes its rack down at once.
//!
//! Part 1 is the single-replica scenario, impossible to express in the
//! original monolithic simulator — it needs event cancellation (aborting
//! in-flight decodes) and dynamic membership of the decode fleet, both of
//! which come from the `hack-sim` engine underneath the refactored
//! `hack-cluster`. A decode replica fails in the middle of the run, its
//! in-flight requests are aborted and re-queued onto the surviving replicas
//! (re-transferring their KV data from the prefill side's CPU copy), and the
//! replica later rejoins the fleet empty.
//!
//! Part 2 switches the fabric to the topology-aware link graph and fails a
//! ToR switch: every decode replica cabled behind it dies *atomically*, every
//! in-flight KV transfer crossing the dead uplink aborts with its partial
//! progress kept, and the seeded backoff retries carry the work to the
//! survivors. The run self-validates the blast radius against the topology
//! and exports a Perfetto trace (`artifacts/fault_storm_trace.json`) with the fault and
//! recovery instants on it.
//!
//! Run with: `cargo run --release --example failure_injection`
//! CI smoke mode (fewer requests): `FAILURE_SMOKE=1 cargo run --example failure_injection`

use hack_core::prelude::*;

fn breakdown_line(result: &hack_cluster::SimulationResult) -> String {
    let r = result.average_ratios();
    format!(
        "prefill {:>4.1}% | comm {:>4.1}% | decode {:>4.1}% | queue {:>4.1}%",
        100.0 * r.prefill,
        100.0 * r.communication,
        100.0 * r.decode,
        100.0 * r.queueing
    )
}

fn main() {
    let smoke = std::env::var("FAILURE_SMOKE").is_ok();
    let num_requests = if smoke { 30 } else { 60 };
    let experiment = JctExperiment {
        num_requests,
        rps: Some(0.08),
        ..JctExperiment::paper_default()
    };
    let base_config = SimulationConfig {
        cluster: experiment.cluster_config(),
        trace: TraceConfig {
            dataset: Dataset::Cocktail,
            rps: 0.08,
            num_requests,
            max_context: ModelKind::Llama31_70B.spec().max_context,
            seed: 7,
        },
        profile: Method::hack().profile(),
        policy: PolicyConfig::default(),
        faults: FaultPlan::none(),
        telemetry: TelemetryConfig::Off,
        cache: CacheConfig::Off,
    };

    println!("== Fault injection on the paper-default cluster (HACK, Cocktail) ==\n");

    // Healthy reference run.
    let healthy = Simulator::new(base_config).run();
    println!(
        "healthy : {} requests, avg JCT {:>7.2}s, makespan {:>7.1}s",
        healthy.records.len(),
        healthy.average_jct(),
        healthy.makespan
    );
    println!("          {}", breakdown_line(&healthy));

    // Pick the busiest decode replica and kill it mid-run, recovering later.
    let mut served = vec![0usize; base_config.cluster.decode_replicas()];
    for r in &healthy.records {
        served[r.decode_replica] += 1;
    }
    let victim = served
        .iter()
        .enumerate()
        .max_by_key(|(_, n)| **n)
        .map(|(i, _)| i)
        .unwrap();
    let fail_at = 0.25 * healthy.makespan;
    let recover_at = 0.75 * healthy.makespan;
    println!(
        "\ninjecting: decode replica {victim} (serving {}/{} requests) fails at t={fail_at:.0}s, recovers at t={recover_at:.0}s\n",
        served[victim],
        healthy.records.len()
    );

    let failed = Simulator::new(SimulationConfig {
        faults: FailureSpec::transient(victim, fail_at, recover_at).into(),
        ..base_config
    })
    .run();
    println!(
        "failure : {} requests, avg JCT {:>7.2}s, makespan {:>7.1}s",
        failed.records.len(),
        failed.average_jct(),
        failed.makespan
    );
    println!("          {}", breakdown_line(&failed));
    println!(
        "          {} re-queues caused by the outage; {} requests waited for memory",
        failed.requeued_requests, failed.swapped_requests
    );

    let mut served_failed = vec![0usize; base_config.cluster.decode_replicas()];
    for r in &failed.records {
        served_failed[r.decode_replica] += 1;
    }
    println!("\nrequests served per decode replica:");
    for (i, (h, f)) in served.iter().zip(served_failed.iter()).enumerate() {
        let marker = if i == victim {
            "  <- failed replica"
        } else {
            ""
        };
        println!("  decode-{i}: healthy {h:>3}  vs  with outage {f:>3}{marker}");
    }

    let slowdown = failed.average_jct() / healthy.average_jct();
    println!(
        "\nimpact: {:.1}% average-JCT inflation from losing 1/{} of the decode fleet for half the run",
        100.0 * (slowdown - 1.0),
        base_config.cluster.decode_replicas()
    );
    assert_eq!(
        failed.records.len(),
        healthy.records.len(),
        "every request must still complete despite the outage"
    );
    println!(
        "all {} requests completed despite the outage.",
        failed.records.len()
    );

    correlated_tor_storm(smoke);
}

/// Part 2: a ToR switch fault on the topology-aware fabric — correlated
/// replica loss, transfer retries with partial progress, blast-radius
/// self-validation, and a Perfetto trace export.
fn correlated_tor_storm(smoke: bool) {
    println!("\n== Correlated failure: one ToR switch takes its rack down ==\n");

    let num_requests = if smoke { 30 } else { 60 };
    let spec = LinkGraphSpec::paper_default();
    let mut cluster = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
    cluster.topology = TopologySpec::LinkGraph(spec);
    let decode_replicas = cluster.decode_replicas();

    // ToR 0 shields decode replicas [0, decode_per_tor).
    let shielded: Vec<usize> = (0..spec.decode_per_tor.min(decode_replicas)).collect();
    // The smoke trace is half as long, so the fault window shrinks with it to
    // keep the recovery inside the run.
    let (fail_at, recover_at) = if smoke { (15.0, 45.0) } else { (30.0, 90.0) };
    let mut faults = FaultPlan::none();
    faults.push(FaultEvent::transient(
        FaultDomain::DecodeTor(0),
        fail_at,
        recover_at,
    ));

    let config = SimulationConfig {
        cluster,
        trace: TraceConfig {
            dataset: Dataset::Arxiv,
            rps: 0.4,
            num_requests,
            max_context: ModelKind::Llama31_70B.spec().max_context,
            seed: 11,
        },
        profile: Method::hack().profile(),
        policy: PolicyConfig::default(),
        faults,
        telemetry: TelemetryConfig::with_interval(1.0),
        cache: CacheConfig::Off,
    };
    let (result, telemetry) = Simulator::new(config).run_with_telemetry();
    let tel = telemetry.expect("telemetry is on");

    println!(
        "storm   : {} completed, {} aborted, avg JCT {:>6.2}s, makespan {:>6.1}s",
        result.records.len(),
        result.aborted_requests,
        result.average_jct(),
        result.makespan
    );
    let fault = result.faults[0];
    println!(
        "fault   : decode ToR 0 down over [{fail_at:.0}s, {recover_at:.0}s] — blast radius {} replicas, {} in-flight requests aborted",
        fault.replicas_affected, fault.requests_aborted
    );
    println!(
        "retries : {} transfer retries; goodput while degraded {:.2} req/s over {:.0}s",
        result.transfer_retries, result.degraded_goodput, result.degraded_secs
    );

    // --- Self-validation: the blast radius is exactly the topology's rack. ---
    assert_eq!(
        fault.replicas_affected,
        shielded.len(),
        "a ToR fault must fail exactly the replicas behind the switch"
    );
    assert_eq!(
        result.injected_failures,
        1 + shielded.len(),
        "one fabric fault + one correlated replica failure per rack member"
    );
    // Request conservation under the storm.
    assert_eq!(
        result.records.len() + result.rejected_requests + result.aborted_requests,
        num_requests,
        "every request must complete, be rejected, or be accounted aborted"
    );

    // --- Perfetto trace export with the fault instants on it. ---
    let trace_json = tel.chrome_trace_json();
    std::fs::create_dir_all("artifacts").expect("create artifacts/");
    std::fs::write("artifacts/fault_storm_trace.json", &trace_json)
        .expect("write artifacts/fault_storm_trace.json");
    let parsed = serde_json::from_str(&trace_json).expect("exported trace must be valid JSON");
    assert!(
        matches!(
            parsed.get_key("traceEvents"),
            Some(serde_json::Value::Array(a)) if !a.is_empty()
        ),
        "trace carries events"
    );
    let instant = |name: &str| tel.instants().iter().any(|i| i.name == name);
    assert!(
        instant("fabric_fault"),
        "the ToR fault must be on the trace"
    );
    assert!(
        instant("fabric_recovered"),
        "the recovery must be on the trace"
    );
    assert!(
        instant("replica_failed"),
        "the correlated replica failures must be on the trace"
    );
    println!(
        "\nwrote artifacts/fault_storm_trace.json ({} bytes) — open at https://ui.perfetto.dev",
        trace_json.len()
    );
    println!("blast radius, conservation and trace contents validated.");
}
