//! Multi-tenant serving: two workload classes share one disaggregated
//! cluster, and the frontend's scheduling policy decides who absorbs the
//! overload.
//!
//! An interactive tenant (IMDb: short prompts, 120 s SLO) shares the
//! paper-default cluster with a batch tenant (Cocktail: long prompts, loose
//! SLO) driven past the cluster's single-tenant capacity. Under FCFS the
//! interactive tenant queues behind the batch backlog; weighted round-robin
//! bounds its wait to one scheduling turn, and SLO-EDF prioritises its tight
//! deadlines outright. The run prints per-tenant JCT statistics, the Jain
//! fairness index and SLO attainment for each policy.
//!
//! Run with: `cargo run --release --example multi_tenant`

use hack_core::prelude::*;

fn main() {
    let mix = TenantMixExperiment::interactive_vs_batch();
    let trace = mix.trace();
    println!("== Multi-tenant contention on the paper-default cluster (HACK) ==\n");
    println!(
        "merged trace: {} requests from {} tenants",
        trace.num_requests(),
        mix.tenants.len()
    );
    for (i, t) in mix.tenants.iter().enumerate() {
        println!(
            "  tenant-{i}: {:<9} rps {:<5} n {:<4} weight {:<3} SLO {:>6.0}s",
            t.dataset.name(),
            t.rps,
            t.num_requests,
            t.weight,
            t.slo_jct
        );
    }
    println!();

    let mut outcomes = Vec::new();
    for scheduling in SchedulingPolicyKind::all() {
        let outcome = mix.run(Method::hack(), scheduling);
        println!(
            "-- {} --  jain fairness {:.3}, global avg JCT {:>7.1}s",
            scheduling.name(),
            outcome.jain_fairness,
            outcome.average_jct
        );
        for t in &outcome.per_tenant {
            let slo = outcome
                .slo
                .iter()
                .find(|s| s.tenant == t.tenant)
                .expect("every tenant has an SLO row");
            println!(
                "   {}: mean {:>8.1}s  p95 {:>8.1}s  queueing {:>8.1}s  SLO {:>5.1}%",
                t.tenant,
                t.stats.mean,
                t.stats.p95,
                t.stats.mean_breakdown.queueing,
                100.0 * slo.attainment()
            );
        }
        println!();
        outcomes.push(outcome);
    }

    let fcfs = &outcomes[0];
    let wrr = &outcomes[1];
    let edf = &outcomes[2];
    let interactive = TenantId(0);
    let fcfs_wait = fcfs
        .tenant_stats(interactive)
        .unwrap()
        .mean_breakdown
        .queueing;
    let wrr_wait = wrr
        .tenant_stats(interactive)
        .unwrap()
        .mean_breakdown
        .queueing;
    println!(
        "takeaway: WRR cuts the interactive tenant's mean queueing from {fcfs_wait:.0}s \
         to {wrr_wait:.0}s ({}x) and lifts Jain fairness {:.3} -> {:.3}; \
         SLO-EDF reaches {:.3}.",
        (fcfs_wait / wrr_wait.max(1e-9)).round(),
        fcfs.jain_fairness,
        wrr.jain_fairness,
        edf.jain_fairness
    );
    assert!(
        wrr.jain_fairness > fcfs.jain_fairness,
        "round-robin must out-fair FCFS under overload"
    );
}
