//! Sessions: session-structured workloads over the KV prefix cache.
//!
//! Generates a multi-turn chat stream and an agentic fan-out stream (tool
//! calls joined back into the conversation), merges them into one arrival
//! process, and runs the same trace three ways:
//!
//! 1. cache off, least-loaded dispatch — the pre-cache baseline,
//! 2. cache on, least-loaded dispatch — hits only when the dispatcher lands
//!    a follow-up on its prefix replica by chance,
//! 3. cache on, session-affinity dispatch — follow-ups routed to the replica
//!    holding their session's prefix (with a load-spill escape hatch).
//!
//! A telemetry-instrumented run of configuration 3 exports
//! `artifacts/sessions_trace.json` (Chrome trace-event JSON, open at
//! <https://ui.perfetto.dev>): the `prefix_hit` instants line up with the
//! shortened prefill spans of the follow-up turns.
//!
//! The run also self-validates: no child request starts before its parent
//! completes, every request completes exactly once, the chat-heavy stream
//! hits the cache on most follow-ups, and the cached run beats the cache-off
//! baseline on mean JCT.
//!
//! Run with: `cargo run --release --example sessions`
//! CI smoke mode (fewer sessions): `SESSION_SMOKE=1 cargo run --example sessions`

use hack_core::prelude::*;
use std::sync::Arc;

fn main() {
    let smoke = std::env::var("SESSION_SMOKE").is_ok();
    let model = ModelKind::Llama31_70B;
    let sessions = if smoke { 6 } else { 12 };

    // --- The workload: chat sessions (linear follow-ups after think time)
    // merged with agentic sessions (parallel tool calls + a join request). ---
    let chat = SessionSpec {
        tenant: TenantId(0),
        kind: SessionKind::Chat {
            turns: 4,
            think_mean_s: 25.0,
        },
        sessions,
        rps: 0.04,
        dataset: Dataset::Cocktail,
        max_context: model.spec().max_context,
        seed: 17,
    };
    let agentic = SessionSpec {
        tenant: TenantId(1),
        kind: SessionKind::Agentic {
            tools: 3,
            tool_delay_s: 5.0,
        },
        sessions: sessions / 2,
        rps: 0.02,
        dataset: Dataset::Cocktail,
        max_context: model.spec().max_context,
        seed: 18,
    };
    let requests = Arc::new(SessionTrace::new(vec![chat, agentic]).generate());
    let follow_ups = requests.iter().filter(|r| r.parent.is_some()).count();
    println!("== Session-structured serving with a KV prefix cache ==\n");
    println!(
        "trace   : {} requests in {} sessions ({} follow-ups carrying shared prefixes)",
        requests.len(),
        sessions + sessions / 2,
        follow_ups
    );

    let config = |cache: CacheConfig, dispatch: DispatchPolicyKind| SimulationConfig {
        cluster: ClusterConfig::paper_default(model, GpuKind::A10G),
        trace: TraceConfig {
            dataset: Dataset::Cocktail,
            rps: 0.06,
            num_requests: requests.len(),
            max_context: model.spec().max_context,
            seed: 17,
        },
        profile: Method::hack().profile(),
        policy: PolicyConfig {
            dispatch,
            ..PolicyConfig::default()
        },
        faults: FaultPlan::none(),
        telemetry: TelemetryConfig::Off,
        cache,
    };

    // --- The three runs. ---
    let runs = [
        (
            "cache off / least-loaded",
            CacheConfig::Off,
            DispatchPolicyKind::LeastLoaded,
        ),
        (
            "cache on  / least-loaded",
            CacheConfig::on(),
            DispatchPolicyKind::LeastLoaded,
        ),
        (
            "cache on  / session-affinity",
            CacheConfig::on(),
            DispatchPolicyKind::SessionAffinity,
        ),
    ];
    let mut results = Vec::new();
    println!(
        "\n{:<30} {:>10} {:>10} {:>9} {:>12} {:>12}",
        "configuration", "mean JCT", "p99 JCT", "hit rate", "prefill -s", "KV -MB"
    );
    for (label, cache, dispatch) in runs {
        let result = Simulator::with_requests(config(cache, dispatch), requests.clone()).run();
        let stats = result.jct_stats();
        println!(
            "{label:<30} {:>9.2}s {:>9.2}s {:>9.2} {:>11.1}s {:>12.1}",
            result.average_jct(),
            stats.p99,
            result.prefix_hit_rate,
            result.prefill_seconds_saved,
            result.prefix_bytes_saved / 1e6,
        );
        results.push(result);
    }
    let (off, affinity) = (&results[0], &results[2]);

    // --- Telemetry export: the affinity run, instrumented. ---
    let mut instrumented = config(CacheConfig::on(), DispatchPolicyKind::SessionAffinity);
    instrumented.telemetry = TelemetryConfig::with_interval((off.makespan / 200.0).max(1.0));
    let (tel_result, telemetry) =
        Simulator::with_requests(instrumented, requests.clone()).run_with_telemetry();
    let tel = telemetry.expect("telemetry is on");
    assert_eq!(
        &tel_result, affinity,
        "telemetry must not perturb the simulation"
    );
    let trace_json = tel.chrome_trace_json();
    std::fs::create_dir_all("artifacts").expect("create artifacts/");
    std::fs::write("artifacts/sessions_trace.json", &trace_json)
        .expect("write artifacts/sessions_trace.json");
    println!(
        "\nwrote artifacts/sessions_trace.json ({} bytes) — open at https://ui.perfetto.dev",
        trace_json.len()
    );

    // --- Self-validation (CI smoke gate). ---
    // Conservation: every generated request completes exactly once.
    for result in &results {
        let mut seen = vec![0usize; requests.len()];
        for r in &result.records {
            seen[r.request.id as usize] += 1;
        }
        assert!(
            seen.iter().all(|&n| n == 1),
            "every request must complete exactly once"
        );
    }
    // Causal ordering: no child starts before its parent finishes.
    for result in &results {
        let mut finish = vec![0.0f64; requests.len()];
        for r in &result.records {
            finish[r.request.id as usize] = r.finish_time;
        }
        for r in &result.records {
            if let Some(parent) = r.request.parent {
                assert!(
                    r.request.arrival + r.breakdown.queueing >= finish[parent as usize] - 1e-9,
                    "request {} started before its parent {parent} finished",
                    r.request.id
                );
            }
        }
    }
    // The cache works: majority hit rate and a mean-JCT win over cache-off.
    assert_eq!(off.prefix_hits + off.prefix_misses, 0, "cache off is off");
    assert!(
        affinity.prefix_hit_rate >= 0.5,
        "chat-heavy mix must hit on most follow-ups (got {})",
        affinity.prefix_hit_rate
    );
    assert!(
        affinity.average_jct() < off.average_jct(),
        "the cache must beat the cache-off baseline on mean JCT"
    );
    // The trace carries the cache vocabulary.
    let parsed: serde_json::Value =
        serde_json::from_str(&trace_json).expect("exported trace must be valid JSON");
    assert!(
        matches!(parsed.get_key("traceEvents"), Some(serde_json::Value::Array(a)) if !a.is_empty()),
        "trace carries events"
    );
    assert!(
        tel.instants().iter().any(|i| i.name == "prefix_hit"),
        "prefix hits must be on the trace"
    );
    assert!(tel.counter("prefix_hit") > 0, "hit counter recorded");
    println!("conservation, causal ordering, hit rate and JCT win validated.");
}
