//! Disaggregated prefill/decode demo over real TCP.
//!
//! A "prefill worker" thread runs HACK prefill attention on a batch of requests,
//! quantizes their KV data and ships it (2-bit codes + metadata + FP16 V-tail + first
//! token) over a localhost TCP connection to a "decode worker", which rebuilds the
//! quantized KV state and generates tokens with the homomorphic decode kernel — the
//! same split the paper implements with NCCL between AWS instances (Fig. 5).
//!
//! Run with: `cargo run --example disaggregated_demo`

use hack_core::prelude::*;
use hack_transport::{DecodeServer, KvTransferMessage, PrefillClient};
use std::time::Instant;

const HEAD_DIM: usize = 64;
const NUM_REQUESTS: u64 = 6;
const DECODE_STEPS: usize = 8;

fn synth_kv(tokens: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = DetRng::new(seed);
    let gen = |rng: &mut DetRng| {
        Matrix::from_fn(tokens, HEAD_DIM, |t, c| {
            ((c % 7) as f32 - 3.0) * 0.3
                + 0.25 * rng.normal_f32(0.0, 1.0)
                + 0.05 * (t as f32 * 0.01).cos()
        })
    };
    (gen(&mut rng), gen(&mut rng), gen(&mut rng))
}

fn main() {
    // Decode side: listens for quantized KV transfers.
    let server = DecodeServer::start().expect("bind decode server");
    let addr = server.addr();
    println!("decode worker listening on {addr}");

    // Prefill side: runs prefill for each request and streams the quantized KV.
    let prefill_handle = std::thread::spawn(move || {
        let mut client = PrefillClient::connect(addr).expect("connect to decode worker");
        let cfg = HackConfig::paper_default();
        let mut total_bytes = 0usize;
        let mut total_fp16 = 0usize;
        for id in 0..NUM_REQUESTS {
            let tokens = 192 + (id as usize % 3) * 64;
            let (q, k, v) = synth_kv(tokens, 100 + id);
            let mut rng = DetRng::new(500 + id);
            let started = Instant::now();
            let prefill = hack_prefill_attention(&q, &k, &v, cfg, &mut rng);
            // "First token": pretend the argmax over the mean output channel is it.
            let first_token = prefill
                .output
                .row(prefill.output.rows() - 1)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i as u32)
                .unwrap_or(0);
            let msg = KvTransferMessage {
                request_id: id,
                layer: 0,
                head: 0,
                first_token,
                k: prefill.state.k_quant().clone(),
                v: prefill.state.v_quant().clone(),
                v_tail: prefill.state.v_tail().clone(),
            };
            let sent = client.send(&msg).expect("send KV transfer");
            total_bytes += sent;
            total_fp16 += 2 * 2 * tokens * HEAD_DIM;
            println!(
                "prefill[{id}]: {tokens} tokens, prefill+quantize {:.1} ms, shipped {:.1} KiB",
                started.elapsed().as_secs_f64() * 1e3,
                sent as f64 / 1024.0
            );
        }
        println!(
            "prefill worker done: {:.1} KiB on the wire vs {:.1} KiB FP16 ({:.1}% compression)",
            total_bytes as f64 / 1024.0,
            total_fp16 as f64 / 1024.0,
            100.0 * (1.0 - total_bytes as f64 / total_fp16 as f64)
        );
    });

    // Decode side: rebuild each request's KV state and run a few decode iterations.
    let mut received = 0;
    while received < NUM_REQUESTS {
        let msg = server.recv().expect("receive KV transfer");
        received += 1;
        let mut state = HackKvState::from_parts(
            HackConfig::paper_default(),
            HEAD_DIM,
            msg.k.clone(),
            msg.v.clone(),
            msg.v_tail.clone(),
        );
        let mut rng = DetRng::new(900 + msg.request_id);
        let mut generated = vec![msg.first_token];
        for step in 0..DECODE_STEPS {
            let last = *generated.last().unwrap() as usize;
            let q: Vec<f32> = (0..HEAD_DIM)
                .map(|i| ((i + last + step) as f32 * 0.02).sin())
                .collect();
            let k: Vec<f32> = (0..HEAD_DIM)
                .map(|i| ((i * 3 + last) as f32 * 0.015).cos())
                .collect();
            let v: Vec<f32> = (0..HEAD_DIM)
                .map(|i| ((i + 2 * step) as f32 * 0.04).sin())
                .collect();
            let (out, _) = state.decode_step(&q, &k, &v, &mut rng);
            // Toy "sampling": index of the strongest output channel.
            let next = out
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i as u32)
                .unwrap();
            generated.push(next);
        }
        println!(
            "decode[{}]: restored {} prompt tokens ({} quantized + {} FP16 tail), generated {:?}",
            msg.request_id,
            state.seq_len() - DECODE_STEPS,
            state.quantized_tokens(),
            state.tail_tokens(),
            generated
        );
    }

    prefill_handle.join().expect("prefill worker");
    server.shutdown();
    println!("demo complete: prefill → TCP transfer of quantized KV → decode, with no dequantization step.");
}
