//! Quickstart: homomorphic-quantized attention on a single head.
//!
//! Demonstrates the core HACK pipeline from §5 of the paper on one attention head:
//! quantize Q/K/V, compute attention with homomorphic quantized matmuls (no
//! dequantization), compare the result and the KV footprint against exact FP32
//! attention, then run a few decode steps against the quantized KV state.
//!
//! Run with: `cargo run --example quickstart`

use hack_core::prelude::*;

fn main() {
    let mut rng = DetRng::new(42);
    let tokens = 512;
    let head_dim = 128;

    // Synthetic per-head projections with realistic per-channel structure.
    let gen = |rng: &mut DetRng| {
        Matrix::from_fn(tokens, head_dim, |t, c| {
            ((c % 13) as f32 - 6.0) * 0.2
                + 0.3 * rng.normal_f32(0.0, 1.0)
                + 0.1 * ((t + c) as f32 * 0.01).sin()
        })
    };
    let q = gen(&mut rng);
    let k = gen(&mut rng);
    let v = gen(&mut rng);

    // Exact attention (what an FP16/FP32 kernel would produce).
    let exact = baseline_attention(&q, &k, &v, AttentionMask::Causal);

    // HACK prefill: 2-bit K/V, 8-bit Q/P, partition size 64, computed homomorphically.
    let cfg = HackConfig::paper_default();
    let prefill = hack_prefill_attention(&q, &k, &v, cfg, &mut rng);

    let cos = hack_tensor::cosine_similarity(&exact, &prefill.output);
    println!("== HACK quickstart ==");
    println!("prompt tokens            : {tokens}");
    println!("head dimension           : {head_dim}");
    println!("partition size (Pi)      : {}", cfg.partition.get());
    println!("attention output cosine  : {cos:.4} (vs exact FP32 attention)");

    // KV footprint: what would be cached / transferred to the decode instance.
    let state = prefill.state;
    let quantized = state.kv_bytes();
    let fp16 = state.fp16_bytes();
    println!(
        "KV footprint             : {:.1} KiB quantized vs {:.1} KiB FP16 ({:.1}% compression)",
        quantized as f64 / 1024.0,
        fp16 as f64 / 1024.0,
        100.0 * (1.0 - quantized as f64 / fp16 as f64)
    );
    println!(
        "quantized / FP16-tail    : {} tokens quantized, {} tokens in the FP16 tail (RQE)",
        state.quantized_tokens(),
        state.tail_tokens()
    );

    // A few decode steps: append a token's K/V, then attend with its query — all on the
    // quantized state, no dequantization anywhere.
    let mut state = state;
    println!("\n-- decode steps --");
    for step in 0..4 {
        let new_q: Vec<f32> = (0..head_dim)
            .map(|i| ((i + step) as f32 * 0.03).cos())
            .collect();
        let new_k: Vec<f32> = (0..head_dim)
            .map(|i| ((i * 2 + step) as f32 * 0.02).sin())
            .collect();
        let new_v: Vec<f32> = (0..head_dim)
            .map(|i| ((i + 3 * step) as f32 * 0.05).cos())
            .collect();
        let (out, stats) = state.decode_step(&new_q, &new_k, &new_v, &mut rng);
        println!(
            "step {step}: seq_len={} int8 MACs={} approx ops={} tail FP ops={} |out|={:.3}",
            state.seq_len(),
            stats.int_mac_ops,
            stats.approx_ops,
            stats.tail_fp_ops,
            out.iter().map(|x| x * x).sum::<f32>().sqrt()
        );
    }

    println!(
        "\nDone. See `examples/long_prompt_summarization.rs` for the end-to-end cluster view."
    );
}
