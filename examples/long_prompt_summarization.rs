//! Long-prompt summarization scenario (the workload class that motivates the paper).
//!
//! Serves an arXiv-summarization-like workload (6.3K-token prompts on average) with
//! Llama-3.1 70B on A10G prefill instances and A100 decode instances, and compares the
//! disaggregated baseline, CacheGen-like, KVQuant-like and HACK end to end on the
//! cluster simulator: average JCT, its decomposition, and peak decode-GPU memory.
//!
//! Run with: `cargo run --release --example long_prompt_summarization`

use hack_core::prelude::*;

fn main() {
    let experiment = JctExperiment {
        num_requests: 80,
        ..JctExperiment::new(ModelKind::Llama31_70B, GpuKind::A10G, Dataset::Arxiv)
    };
    println!(
        "Serving {} with {:?} prefill instances on the {} dataset (RPS {:.3})",
        ModelKind::Llama31_70B.spec().name,
        GpuKind::A10G,
        Dataset::Arxiv.name(),
        experiment.effective_rps()
    );
    println!(
        "simulating {} requests per method...\n",
        experiment.num_requests
    );

    let outcomes = experiment.run_all(&Method::main_comparison());

    let mut table = ExperimentTable::new(
        "long_prompt_summarization",
        "Average JCT and decomposition (arXiv summarization, Llama-3.1 70B, A10G prefill)",
        vec![
            "avg JCT (s)".into(),
            "prefill %".into(),
            "comm %".into(),
            "dequant/approx %".into(),
            "decode %".into(),
            "peak mem %".into(),
        ],
        "mixed",
    );
    for o in &outcomes {
        table.push_row(Row::new(
            o.method_name.clone(),
            vec![
                o.average_jct,
                100.0 * o.ratios.prefill,
                100.0 * o.ratios.communication,
                100.0 * o.ratios.dequant_or_approx,
                100.0 * o.ratios.decode,
                100.0 * o.peak_decode_memory_fraction,
            ],
        ));
    }
    println!("{}", table.render());

    let baseline = &outcomes[0];
    for o in &outcomes[1..] {
        println!(
            "{:<10} reduces average JCT by {:.1}% vs the baseline",
            o.method_name,
            100.0 * o.jct_reduction_vs(baseline)
        );
    }
    let hack = outcomes.last().unwrap();
    let kvquant = &outcomes[2];
    println!(
        "HACK       reduces average JCT by {:.1}% vs KVQuant (paper reports up to 52.3%)",
        100.0 * hack.jct_reduction_vs(kvquant)
    );
}
