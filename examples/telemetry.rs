//! Telemetry: export a Perfetto-loadable trace of a failure-injection run.
//!
//! Runs the fault-injection scenario of `examples/failure_injection.rs` with
//! telemetry enabled, then exports
//!
//! * `artifacts/telemetry_trace.json` — Chrome trace-event JSON: one track per replica
//!   (prefill, NIC, decode) carrying the request-lifecycle spans (queue wait,
//!   prefill, quantize, NIC wait, KV transfer, memory wait, decode) plus the
//!   sampled counter tracks. Open it at <https://ui.perfetto.dev> (or
//!   `chrome://tracing`) — the injected outage is visible as the span gap on
//!   the failed decode replica's track.
//! * `artifacts/telemetry_timeseries.csv` — the periodic samples (queue depths, KV
//!   occupancy, in-flight transfers, tenant backlog) as `series,time_s,value`.
//!
//! The run also self-validates: the exported JSON must parse, carry at least
//! one complete span per component kind, and the telemetry-on result must be
//! bit-identical to the telemetry-off result of the same seed.
//!
//! Run with: `cargo run --release --example telemetry`
//! CI smoke mode (fewer requests): `TELEMETRY_SMOKE=1 cargo run --example telemetry`

use hack_core::prelude::*;

fn main() {
    let smoke = std::env::var("TELEMETRY_SMOKE").is_ok();
    let num_requests = if smoke { 30 } else { 60 };
    let experiment = JctExperiment {
        num_requests,
        rps: Some(0.08),
        ..JctExperiment::paper_default()
    };
    let base_config = SimulationConfig {
        cluster: experiment.cluster_config(),
        trace: TraceConfig {
            dataset: Dataset::Cocktail,
            rps: 0.08,
            num_requests,
            max_context: ModelKind::Llama31_70B.spec().max_context,
            seed: 7,
        },
        profile: Method::hack().profile(),
        policy: PolicyConfig::default(),
        faults: FaultPlan::none(),
        telemetry: TelemetryConfig::Off,
        cache: CacheConfig::Off,
    };

    println!("== Telemetry export of a failure-injection run (HACK, Cocktail) ==\n");

    // Healthy reference run (telemetry off): picks the failure window and the
    // victim, and pins the bit-identity claim below.
    let healthy = Simulator::new(base_config).run();
    let mut served = vec![0usize; base_config.cluster.decode_replicas()];
    for r in &healthy.records {
        served[r.decode_replica] += 1;
    }
    let victim = served
        .iter()
        .enumerate()
        .max_by_key(|(_, n)| **n)
        .map(|(i, _)| i)
        .unwrap();
    let fail_at = 0.25 * healthy.makespan;
    let recover_at = 0.75 * healthy.makespan;

    // The instrumented run: same failure scenario, telemetry on. Sample every
    // ~1/200th of the expected makespan so counter tracks have useful shape.
    let interval = (healthy.makespan / 200.0).max(1.0);
    let config = SimulationConfig {
        faults: FailureSpec::transient(victim, fail_at, recover_at).into(),
        telemetry: TelemetryConfig::with_interval(interval),
        cache: CacheConfig::Off,
        ..base_config
    };
    let (result, telemetry) = Simulator::new(config).run_with_telemetry();
    let tel = telemetry.expect("telemetry is on");

    // Telemetry observes, it does not perturb: the off run of the same
    // configuration is bit-identical.
    let off = Simulator::new(SimulationConfig {
        telemetry: TelemetryConfig::Off,
        cache: CacheConfig::Off,
        ..config
    })
    .run();
    assert_eq!(result, off, "telemetry must not perturb the simulation");

    println!(
        "run     : {} requests, avg JCT {:.2}s, makespan {:.1}s; decode-{victim} down over [{fail_at:.0}s, {recover_at:.0}s]",
        result.records.len(),
        result.average_jct(),
        result.makespan
    );
    println!("captured: {}", tel.summary_line());
    let stats = result.jct_stats();
    println!(
        "jct     : p50 {:.2}s  p95 {:.2}s  p99 {:.2}s  max {:.2}s",
        stats.p50, stats.p95, stats.p99, stats.max
    );
    for (group, s) in result.per_decode_group_stats() {
        println!(
            "decode group {group}: {} completed, p50 {:.2}s p99 {:.2}s",
            s.count, s.p50, s.p99
        );
    }

    // --- Export. ---
    let trace_json = tel.chrome_trace_json();
    let csv = tel.timeseries_csv();
    std::fs::create_dir_all("artifacts").expect("create artifacts/");
    std::fs::write("artifacts/telemetry_trace.json", &trace_json)
        .expect("write artifacts/telemetry_trace.json");
    std::fs::write("artifacts/telemetry_timeseries.csv", &csv)
        .expect("write artifacts/telemetry_timeseries.csv");
    println!(
        "\nwrote artifacts/telemetry_trace.json ({} bytes) — open at https://ui.perfetto.dev",
        trace_json.len()
    );
    println!(
        "wrote artifacts/telemetry_timeseries.csv ({} bytes)",
        csv.len()
    );

    // --- Self-validation (CI smoke gate). ---
    let parsed = serde_json::from_str(&trace_json).expect("exported trace must be valid JSON");
    let events = parsed
        .get_key("traceEvents")
        .expect("traceEvents key present");
    assert!(
        matches!(events, serde_json::Value::Array(a) if !a.is_empty()),
        "trace carries events"
    );
    for cat in ["frontend", "prefill", "fabric", "decode"] {
        assert!(
            tel.span_count_in(cat) > 0,
            "expected at least one complete span in category {cat}"
        );
    }
    assert!(
        tel.instants().iter().any(|i| i.name == "replica_failed"),
        "the injected failure must be visible in the trace"
    );
    assert_eq!(
        tel.counter("completed") as usize,
        result.records.len(),
        "one completion event per completed request"
    );
    println!("\ntrace validated: JSON parses, all component kinds present, failure visible.");
}
