//! Heterogeneous prefill fleets: a mixed A10G + L4 deployment vs a uniform
//! A10G one of equal instance count, under replica-aware dispatch.
//!
//! The fleet-topology API makes the ROADMAP's "Heterogeneous GPUs" scenario a
//! first-class configuration: each `ReplicaGroup` carries its own GPU kind,
//! parallelism, NIC bandwidth and cost model. The L4 groups prefill faster
//! (121 vs 70 FP16 TFLOPS, double the INT8 rate) on the same 40 Gbps NIC, so
//! a mixed fleet beats the uniform one — *if* the frontend's dispatch policy
//! is group-aware. Least-loaded splits tokens evenly; fastest-eligible routes
//! by estimated completion time and shifts load onto the L4s; group-affinity
//! pins tenants to groups (and on this single-tenant trace degenerates to
//! using half the fleet — a deliberately bad fit, shown for contrast).
//!
//! Run with: `cargo run --release --example heterogeneous`

use hack_core::prelude::*;

fn main() {
    let e = HeteroFleetExperiment::paper_mixed();
    let uniform = e.uniform_cluster();
    let mixed = e.mixed_cluster();
    println!("== Mixed A10G+L4 vs uniform A10G prefill fleet (HACK) ==\n");
    println!(
        "workload: {} x {} requests at {} rps\n",
        e.dataset.name(),
        e.num_requests,
        e.rps
    );
    for (name, cluster) in [("uniform", &uniform), ("mixed", &mixed)] {
        println!(
            "{name} fleet ({} prefill groups):",
            cluster.fleet.prefill.len()
        );
        for (i, g) in cluster.fleet.prefill.iter().enumerate() {
            println!(
                "  group {i}: {} x {:?} (TP{} PP{}, {} Gbps NIC)",
                g.replicas, g.gpu, g.parallel.tp, g.parallel.pp, g.network_gbps
            );
        }
    }
    println!();

    let baseline = e.run(uniform, Method::hack(), DispatchPolicyKind::LeastLoaded);
    println!(
        "uniform/least-loaded      avg JCT {:>7.2}s  p95 {:>7.2}s  util [{:.2}]",
        baseline.average_jct, baseline.stats.p95, baseline.prefill_groups[0].utilization
    );

    let mut outcomes = Vec::new();
    for dispatch in DispatchPolicyKind::all() {
        let outcome = e.run(mixed, Method::hack(), dispatch);
        let utils: Vec<String> = outcome
            .prefill_groups
            .iter()
            .map(|g| format!("{:.2}", g.utilization))
            .collect();
        println!(
            "mixed/{:<19} avg JCT {:>7.2}s  p95 {:>7.2}s  util [{}]  ({:+.1}% vs uniform)",
            dispatch.name(),
            outcome.average_jct,
            outcome.stats.p95,
            utils.join(", "),
            -100.0 * outcome.jct_reduction_vs(&baseline)
        );
        outcomes.push(outcome);
    }

    let least = &outcomes[0];
    let fastest = &outcomes[1];
    println!(
        "\ntakeaway: swapping half the A10G instances for L4s cuts the average JCT \
         {:.1}s -> {:.1}s under plain least-loaded dispatch, and the group-aware \
         fastest-eligible policy takes another {:.0}% by pushing {} of {} requests \
         onto the faster L4 group (vs {} under least-loaded).",
        baseline.average_jct,
        least.average_jct,
        100.0 * fastest.jct_reduction_vs(least),
        fastest.prefill_groups[1].completed,
        fastest.completed_requests,
        least.prefill_groups[1].completed,
    );
    assert!(
        least.average_jct < baseline.average_jct,
        "the mixed fleet must beat the uniform one"
    );
    assert!(
        fastest.average_jct < least.average_jct,
        "group-aware dispatch must beat load-only dispatch on a mixed fleet"
    );
}
