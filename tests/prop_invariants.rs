//! Property-based tests (proptest) on the core data structures and invariants:
//! quantization round trips, homomorphic-product equivalence, packing, entropy coding,
//! softmax, FP16 conversion and the metrics.

use hack_baselines::entropy;
use hack_core::prelude::*;
use hack_metrics::edit::edit_similarity;
use hack_metrics::rouge::rouge1_f1;
use hack_quant::homomorphic::{dequant_matmul, homomorphic_matmul, homomorphic_matmul_no_se};
use hack_quant::packing::{pack_codes, unpack_codes};
use hack_quant::params::{QuantBits, RoundingMode};
use hack_tensor::half::round_to_f16;
use hack_tensor::softmax::softmax_rows;
use proptest::prelude::*;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn quantize_dequantize_error_is_bounded_by_one_step(
        m in small_matrix(4, 64),
        seed in 0u64..1000,
        bits_choice in 0usize..3,
    ) {
        let bits = [QuantBits::Int2, QuantBits::Int4, QuantBits::Int8][bits_choice];
        let mut rng = DetRng::new(seed);
        let q = QuantizedTensor::quantize_rows(&m, bits, 32, RoundingMode::Stochastic, &mut rng);
        let back = q.dequantize();
        for r in 0..m.rows() {
            for p in 0..q.n_partitions() {
                let meta = q.meta(r, p);
                let (start, end) = q.partition_range(p);
                for c in start..end {
                    let err = (m.get(r, c) - back.get(r, c)).abs();
                    // One quantization step plus FP16 metadata rounding slack.
                    prop_assert!(err <= meta.scale * 1.01 + 0.05,
                        "err {err} exceeds step {} at ({r},{c})", meta.scale);
                }
            }
        }
        prop_assert!(q.sums_consistent());
    }

    #[test]
    fn codes_never_exceed_bit_range(
        m in small_matrix(3, 48),
        seed in 0u64..1000,
    ) {
        let mut rng = DetRng::new(seed);
        let q = QuantizedTensor::quantize_rows(&m, QuantBits::Int2, 16, RoundingMode::Stochastic, &mut rng);
        prop_assert!(q.codes().iter().all(|&c| c <= 3));
    }

    #[test]
    fn homomorphic_equals_dequantized_product(
        a in small_matrix(3, 64),
        b in small_matrix(5, 64),
        seed in 0u64..1000,
    ) {
        // Eq. 4 is an exact algebraic identity: computing on codes then correcting must
        // equal dequantizing then multiplying, up to float rounding.
        let mut rng = DetRng::new(seed);
        let qa = QuantizedTensor::quantize_rows(&a, QuantBits::Int8, 32, RoundingMode::Nearest, &mut rng);
        let qb = QuantizedTensor::quantize_rows(&b, QuantBits::Int2, 32, RoundingMode::Nearest, &mut rng);
        let hom = homomorphic_matmul(&qa, &qb);
        let deq = dequant_matmul(&qa, &qb);
        let err = hack_tensor::relative_frobenius_error(&deq, &hom);
        prop_assert!(err < 5e-3, "relative error {err}");
    }

    #[test]
    fn summation_elimination_never_changes_the_result(
        a in small_matrix(2, 32),
        b in small_matrix(4, 32),
        seed in 0u64..1000,
    ) {
        let mut rng = DetRng::new(seed);
        let qa = QuantizedTensor::quantize_rows(&a, QuantBits::Int8, 16, RoundingMode::Stochastic, &mut rng);
        let qb = QuantizedTensor::quantize_rows(&b, QuantBits::Int2, 16, RoundingMode::Stochastic, &mut rng);
        let with_se = homomorphic_matmul(&qa, &qb);
        let without_se = homomorphic_matmul_no_se(&qa, &qb);
        prop_assert_eq!(with_se.as_slice(), without_se.as_slice());
    }

    #[test]
    fn packing_round_trips(
        codes in proptest::collection::vec(0u8..4, 0..200),
    ) {
        let packed = pack_codes(&codes, QuantBits::Int2);
        prop_assert_eq!(unpack_codes(&packed, QuantBits::Int2, codes.len()), codes);
    }

    #[test]
    fn entropy_coder_round_trips(
        data in proptest::collection::vec(0u8..16, 0..600),
    ) {
        prop_assert_eq!(entropy::decode(&entropy::encode(&data)), data);
    }

    #[test]
    fn softmax_rows_are_distributions(m in small_matrix(4, 16)) {
        let p = softmax_rows(&m);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
        }
    }

    #[test]
    fn f16_round_trip_is_idempotent(x in -65000.0f32..65000.0) {
        let once = round_to_f16(x);
        let twice = round_to_f16(once);
        prop_assert_eq!(once, twice);
        if x.abs() > 1e-3 {
            prop_assert!(((once - x) / x).abs() <= 2.0f32.powi(-10));
        }
    }

    #[test]
    fn append_token_preserves_kv_state_invariants(
        prompt_tokens in 1usize..90,
        extra in 1usize..40,
        seed in 0u64..500,
    ) {
        let d_h = 32;
        let mut rng = DetRng::new(seed);
        let k = Matrix::random_normal(prompt_tokens, d_h, 0.0, 1.0, &mut rng);
        let v = Matrix::random_normal(prompt_tokens, d_h, 0.0, 1.0, &mut rng);
        let mut state = HackKvState::from_prefill(&k, &v, HackConfig::paper_default(), &mut rng);
        for i in 0..extra {
            let row: Vec<f32> = (0..d_h).map(|j| ((i + j) as f32 * 0.01).sin()).collect();
            let stats = state.append_token(&row, &row, &mut rng);
            prop_assert_eq!(stats.requantized_elements, 0);
        }
        prop_assert_eq!(state.seq_len(), prompt_tokens + extra);
        prop_assert_eq!(
            state.quantized_tokens() + state.tail_tokens(),
            prompt_tokens + extra
        );
        prop_assert!(state.tail_tokens() < 64);
        prop_assert!(state.k_quant().sums_consistent());
        prop_assert!(state.v_quant().sums_consistent());
    }

    #[test]
    fn edit_similarity_properties(
        a in proptest::collection::vec(0u32..50, 0..30),
        b in proptest::collection::vec(0u32..50, 0..30),
    ) {
        let s = edit_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((edit_similarity(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((edit_similarity(&b, &a) - s).abs() < 1e-12, "symmetry");
    }

    #[test]
    fn rouge_is_bounded_and_symmetric_in_f1(
        a in "[a-d ]{0,40}",
        b in "[a-d ]{0,40}",
    ) {
        let f = rouge1_f1(&a, &b);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!((rouge1_f1(&b, &a) - f).abs() < 1e-12);
    }

    #[test]
    fn cache_layout_bytes_are_monotone_in_tokens(
        tokens_a in 1usize..4000,
        tokens_b in 1usize..4000,
    ) {
        use hack_kvcache::{CacheLayout, KvShape};
        let shape = KvShape { layers: 4, kv_heads: 4, head_dim: 128 };
        let layout = Method::hack().cache_layout();
        let (lo, hi) = if tokens_a <= tokens_b { (tokens_a, tokens_b) } else { (tokens_b, tokens_a) };
        prop_assert!(layout.kv_bytes(&shape, lo) <= layout.kv_bytes(&shape, hi));
        prop_assert!(layout.kv_bytes(&shape, hi) < CacheLayout::Fp16.kv_bytes(&shape, hi));
    }
}
