//! Property-based tests on the core data structures and invariants:
//! quantization round trips, homomorphic-product equivalence, packing, entropy
//! coding, softmax, FP16 conversion, the metrics — and determinism of the
//! `hack-sim` discrete-event engine and the cluster simulator built on it.
//!
//! The external `proptest` crate is unavailable in this offline environment, so
//! inputs are generated with the workspace's own [`DetRng`]: every property runs
//! over `CASES` independently seeded random instances, which keeps the tests
//! exhaustive in spirit while staying fully deterministic and dependency-free.

use hack_baselines::entropy;
use hack_cluster::FailureSpec;
use hack_core::prelude::*;
use hack_metrics::edit::edit_similarity;
use hack_metrics::rouge::rouge1_f1;
use hack_quant::homomorphic::{dequant_matmul, homomorphic_matmul, homomorphic_matmul_no_se};
use hack_quant::packing::{pack_codes, unpack_codes};
use hack_quant::params::{QuantBits, RoundingMode};
use hack_sim::{Event, EventHandler, EventRecord, Simulation, SimulationContext};
use hack_tensor::half::round_to_f16;
use hack_tensor::softmax::softmax_rows;
use hack_workload::trace::TraceConfig;
use std::cell::RefCell;
use std::rc::Rc;

/// Number of random instances per property (mirrors the old proptest config).
const CASES: u64 = 48;

fn uniform_matrix(rows: usize, cols: usize, rng: &mut DetRng) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| rng.range_f32(-10.0, 10.0))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn random_bytes(max_len: usize, max_value: u8, rng: &mut DetRng) -> Vec<u8> {
    let len = rng.range_usize(0, max_len + 1);
    (0..len)
        .map(|_| rng.range_usize(0, max_value as usize) as u8)
        .collect()
}

#[test]
fn quantize_dequantize_error_is_bounded_by_one_step() {
    for case in 0..CASES {
        let mut rng = DetRng::new(1000 + case);
        let m = uniform_matrix(4, 64, &mut rng);
        let bits = [QuantBits::Int2, QuantBits::Int4, QuantBits::Int8][case as usize % 3];
        let q = QuantizedTensor::quantize_rows(&m, bits, 32, RoundingMode::Stochastic, &mut rng);
        let back = q.dequantize();
        for r in 0..m.rows() {
            for p in 0..q.n_partitions() {
                let meta = q.meta(r, p);
                let (start, end) = q.partition_range(p);
                for c in start..end {
                    let err = (m.get(r, c) - back.get(r, c)).abs();
                    // One quantization step plus FP16 metadata rounding slack.
                    assert!(
                        err <= meta.scale * 1.01 + 0.05,
                        "case {case}: err {err} exceeds step {} at ({r},{c})",
                        meta.scale
                    );
                }
            }
        }
        assert!(q.sums_consistent(), "case {case}");
    }
}

#[test]
fn codes_never_exceed_bit_range() {
    for case in 0..CASES {
        let mut rng = DetRng::new(2000 + case);
        let m = uniform_matrix(3, 48, &mut rng);
        let q = QuantizedTensor::quantize_rows(
            &m,
            QuantBits::Int2,
            16,
            RoundingMode::Stochastic,
            &mut rng,
        );
        assert!(q.codes().iter().all(|&c| c <= 3), "case {case}");
    }
}

#[test]
fn homomorphic_equals_dequantized_product() {
    for case in 0..CASES {
        // Eq. 4 is an exact algebraic identity: computing on codes then correcting must
        // equal dequantizing then multiplying, up to float rounding.
        let mut rng = DetRng::new(3000 + case);
        let a = uniform_matrix(3, 64, &mut rng);
        let b = uniform_matrix(5, 64, &mut rng);
        let qa = QuantizedTensor::quantize_rows(
            &a,
            QuantBits::Int8,
            32,
            RoundingMode::Nearest,
            &mut rng,
        );
        let qb = QuantizedTensor::quantize_rows(
            &b,
            QuantBits::Int2,
            32,
            RoundingMode::Nearest,
            &mut rng,
        );
        let hom = homomorphic_matmul(&qa, &qb);
        let deq = dequant_matmul(&qa, &qb);
        let err = hack_tensor::relative_frobenius_error(&deq, &hom);
        assert!(err < 5e-3, "case {case}: relative error {err}");
    }
}

#[test]
fn summation_elimination_never_changes_the_result() {
    for case in 0..CASES {
        let mut rng = DetRng::new(4000 + case);
        let a = uniform_matrix(2, 32, &mut rng);
        let b = uniform_matrix(4, 32, &mut rng);
        let qa = QuantizedTensor::quantize_rows(
            &a,
            QuantBits::Int8,
            16,
            RoundingMode::Stochastic,
            &mut rng,
        );
        let qb = QuantizedTensor::quantize_rows(
            &b,
            QuantBits::Int2,
            16,
            RoundingMode::Stochastic,
            &mut rng,
        );
        let with_se = homomorphic_matmul(&qa, &qb);
        let without_se = homomorphic_matmul_no_se(&qa, &qb);
        assert_eq!(with_se.as_slice(), without_se.as_slice(), "case {case}");
    }
}

#[test]
fn packing_round_trips() {
    for case in 0..CASES {
        let mut rng = DetRng::new(5000 + case);
        let codes = random_bytes(200, 4, &mut rng);
        let packed = pack_codes(&codes, QuantBits::Int2);
        assert_eq!(
            unpack_codes(&packed, QuantBits::Int2, codes.len()),
            codes,
            "case {case}"
        );
    }
}

#[test]
fn entropy_coder_round_trips() {
    for case in 0..CASES {
        let mut rng = DetRng::new(6000 + case);
        let data = random_bytes(600, 16, &mut rng);
        assert_eq!(
            entropy::decode(&entropy::encode(&data)),
            data,
            "case {case}"
        );
    }
}

#[test]
fn softmax_rows_are_distributions() {
    for case in 0..CASES {
        let mut rng = DetRng::new(7000 + case);
        let m = uniform_matrix(4, 16, &mut rng);
        let p = softmax_rows(&m);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-4,
                "case {case}: row {r} sums to {sum}"
            );
            assert!(
                p.row(r).iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)),
                "case {case}"
            );
        }
    }
}

#[test]
fn f16_round_trip_is_idempotent() {
    for case in 0..CASES {
        let mut rng = DetRng::new(8000 + case);
        let x = rng.range_f32(-65000.0, 65000.0);
        let once = round_to_f16(x);
        let twice = round_to_f16(once);
        assert_eq!(once, twice, "case {case}");
        if x.abs() > 1e-3 {
            assert!(
                ((once - x) / x).abs() <= 2.0f32.powi(-10),
                "case {case}: x {x}"
            );
        }
    }
}

#[test]
fn append_token_preserves_kv_state_invariants() {
    // Fewer cases: this property builds a full KV state per case.
    for case in 0..12 {
        let mut rng = DetRng::new(9000 + case);
        let prompt_tokens = rng.range_usize(1, 90);
        let extra = rng.range_usize(1, 40);
        let d_h = 32;
        let k = Matrix::random_normal(prompt_tokens, d_h, 0.0, 1.0, &mut rng);
        let v = Matrix::random_normal(prompt_tokens, d_h, 0.0, 1.0, &mut rng);
        let mut state = HackKvState::from_prefill(&k, &v, HackConfig::paper_default(), &mut rng);
        for i in 0..extra {
            let row: Vec<f32> = (0..d_h).map(|j| ((i + j) as f32 * 0.01).sin()).collect();
            let stats = state.append_token(&row, &row, &mut rng);
            assert_eq!(stats.requantized_elements, 0, "case {case}");
        }
        assert_eq!(state.seq_len(), prompt_tokens + extra, "case {case}");
        assert_eq!(
            state.quantized_tokens() + state.tail_tokens(),
            prompt_tokens + extra,
            "case {case}"
        );
        assert!(state.tail_tokens() < 64, "case {case}");
        assert!(state.k_quant().sums_consistent(), "case {case}");
        assert!(state.v_quant().sums_consistent(), "case {case}");
    }
}

#[test]
fn edit_similarity_properties() {
    for case in 0..CASES {
        let mut rng = DetRng::new(10_000 + case);
        let len_a = rng.range_usize(0, 30);
        let len_b = rng.range_usize(0, 30);
        let a: Vec<u32> = (0..len_a).map(|_| rng.range_usize(0, 50) as u32).collect();
        let b: Vec<u32> = (0..len_b).map(|_| rng.range_usize(0, 50) as u32).collect();
        let s = edit_similarity(&a, &b);
        assert!((0.0..=1.0).contains(&s), "case {case}");
        assert!((edit_similarity(&a, &a) - 1.0).abs() < 1e-12, "case {case}");
        assert!(
            (edit_similarity(&b, &a) - s).abs() < 1e-12,
            "case {case}: symmetry"
        );
    }
}

#[test]
fn rouge_is_bounded_and_symmetric_in_f1() {
    let random_text = |rng: &mut DetRng| -> String {
        let len = rng.range_usize(0, 40);
        (0..len)
            .map(|_| ['a', 'b', 'c', 'd', ' '][rng.range_usize(0, 5)])
            .collect()
    };
    for case in 0..CASES {
        let mut rng = DetRng::new(11_000 + case);
        let a = random_text(&mut rng);
        let b = random_text(&mut rng);
        let f = rouge1_f1(&a, &b);
        assert!((0.0..=1.0).contains(&f), "case {case}");
        assert!((rouge1_f1(&b, &a) - f).abs() < 1e-12, "case {case}");
    }
}

#[test]
fn cache_layout_bytes_are_monotone_in_tokens() {
    use hack_kvcache::{CacheLayout, KvShape};
    for case in 0..CASES {
        let mut rng = DetRng::new(12_000 + case);
        let tokens_a = rng.range_usize(1, 4000);
        let tokens_b = rng.range_usize(1, 4000);
        let shape = KvShape {
            layers: 4,
            kv_heads: 4,
            head_dim: 128,
        };
        let layout = Method::hack().cache_layout();
        let (lo, hi) = if tokens_a <= tokens_b {
            (tokens_a, tokens_b)
        } else {
            (tokens_b, tokens_a)
        };
        assert!(
            layout.kv_bytes(&shape, lo) <= layout.kv_bytes(&shape, hi),
            "case {case}"
        );
        assert!(
            layout.kv_bytes(&shape, hi) < CacheLayout::Fp16.kv_bytes(&shape, hi),
            "case {case}"
        );
    }
}

// --- Engine determinism: same seed + same component logic ⇒ bit-identical
// --- event order; same config ⇒ bit-identical SimulationResult.

/// A component that reacts to every event with a random number of random-delay
/// echoes: any nondeterminism in queue ordering or RNG state shows up in its
/// event trace immediately.
struct Echo {
    ctx: SimulationContext,
    budget: u32,
}

struct Burst;

impl EventHandler for Echo {
    fn on(&mut self, event: Event) {
        if event.is::<Burst>() && self.budget > 0 {
            self.budget -= 1;
            let fan_out = 1 + (self.ctx.rand() * 3.0) as usize;
            for _ in 0..fan_out {
                let delay = self.ctx.gen_range(0.0, 2.0);
                self.ctx.emit_self(Burst, delay);
            }
        }
    }
}

fn echo_trace(seed: u64) -> (Vec<EventRecord>, f64, u64) {
    let mut sim = Simulation::new(seed);
    sim.set_log_enabled(true);
    let ctx = sim.create_context("echo");
    let echo = Rc::new(RefCell::new(Echo { ctx, budget: 200 }));
    echo.borrow().ctx.emit_self(Burst, 0.0);
    sim.add_handler("echo", echo);
    sim.run();
    (sim.take_log(), sim.time(), sim.processed_count())
}

#[test]
fn engine_event_order_is_bit_identical_across_runs() {
    for seed in 0..8 {
        let (log_a, time_a, count_a) = echo_trace(seed);
        let (log_b, time_b, count_b) = echo_trace(seed);
        assert!(!log_a.is_empty());
        assert_eq!(log_a, log_b, "seed {seed}: event traces must be identical");
        assert_eq!(
            time_a.to_bits(),
            time_b.to_bits(),
            "seed {seed}: final clock"
        );
        assert_eq!(count_a, count_b, "seed {seed}");
    }
    // Different seeds must actually diverge (the RNG is in the loop).
    assert_ne!(echo_trace(1).0, echo_trace(2).0);
}

fn random_sim_config(rng: &mut DetRng) -> SimulationConfig {
    let datasets = [
        Dataset::Imdb,
        Dataset::Cocktail,
        Dataset::Arxiv,
        Dataset::HumanEval,
    ];
    let dataset = datasets[rng.range_usize(0, datasets.len())];
    let mut cluster = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
    cluster.pipelining = rng.chance(0.5);
    SimulationConfig {
        cluster,
        trace: TraceConfig {
            dataset,
            rps: rng.range_f64(0.02, 0.5),
            num_requests: rng.range_usize(5, 25),
            max_context: ModelKind::Llama31_70B.spec().max_context,
            seed: rng.next_u64(),
        },
        profile: if rng.chance(0.5) {
            Method::hack().profile()
        } else {
            Method::Baseline.profile()
        },
        policy: PolicyConfig::default(),
        faults: if rng.chance(0.3) {
            FailureSpec::transient(
                rng.range_usize(0, cluster.decode_replicas()),
                rng.range_f64(1.0, 300.0),
                1e6,
            )
            .into()
        } else {
            FaultPlan::none()
        },
        telemetry: TelemetryConfig::Off,
        cache: CacheConfig::Off,
    }
}

#[test]
fn cluster_simulation_results_are_bit_identical_for_same_config() {
    for case in 0..10 {
        let mut rng = DetRng::new(13_000 + case);
        let config = random_sim_config(&mut rng);
        let a = Simulator::new(config).run();
        let b = Simulator::new(config).run();
        // PartialEq on SimulationResult compares every f64 exactly: same seed +
        // same config must give bit-identical results, not merely close ones.
        assert_eq!(a, b, "case {case}: {config:?}");
    }
}

#[test]
fn cluster_simulation_diverges_across_trace_seeds() {
    let mut rng = DetRng::new(99);
    let config = random_sim_config(&mut rng);
    let mut other = config;
    other.trace.seed = config.trace.seed.wrapping_add(1);
    let a = Simulator::new(config).run();
    let b = Simulator::new(other).run();
    assert_ne!(a, b, "different trace seeds must change the outcome");
}

// --- Policy invariants: conservation per tenant, no cross-tenant leakage,
// --- and FCFS-equals-seed equivalence on single-tenant traces (the legacy
// --- oracle itself lives in crates/hack-cluster/tests/seed_equivalence.rs).

use hack_workload::tenant::{MultiTenantTrace, TenantSpec};
use hack_workload::trace::TenantId;
use std::sync::Arc;

/// A random multi-tenant workload (2–4 tenants, mixed datasets/rates/seeds)
/// over a random cluster config, under random scheduling, dispatch and
/// decode-fleet scaling policies — so the conservation / no-leakage /
/// determinism properties below also cover runs that grow and drain the
/// decode fleet mid-flight.
fn random_multi_tenant(rng: &mut DetRng) -> (SimulationConfig, Arc<Vec<hack_workload::Request>>) {
    use hack_cluster::{PolicyConfig, SchedulingPolicyKind, TenantClass, TenantClasses};
    let datasets = [
        Dataset::Imdb,
        Dataset::Cocktail,
        Dataset::Arxiv,
        Dataset::HumanEval,
    ];
    let num_tenants = rng.range_usize(2, 5);
    let mut specs = Vec::new();
    let mut classes = Vec::new();
    for t in 0..num_tenants {
        specs.push(TenantSpec {
            tenant: TenantId(t as u32),
            trace: TraceConfig {
                dataset: datasets[rng.range_usize(0, datasets.len())],
                rps: rng.range_f64(0.05, 0.6),
                num_requests: rng.range_usize(4, 14),
                max_context: ModelKind::Llama31_70B.spec().max_context,
                seed: rng.next_u64(),
            },
        });
        classes.push(TenantClass {
            weight: rng.range_f64(0.5, 4.0),
            slo_jct: rng.range_f64(30.0, 3000.0),
        });
    }
    let trace = MultiTenantTrace::new(specs);
    let requests = Arc::new(trace.generate());
    let scheduling = [
        SchedulingPolicyKind::Fcfs,
        SchedulingPolicyKind::WeightedRoundRobin,
        SchedulingPolicyKind::SloEdf,
    ][rng.range_usize(0, 3)];
    let dispatch = {
        let all = hack_cluster::DispatchPolicyKind::all();
        all[rng.range_usize(0, all.len())]
    };
    let scaling = {
        use hack_cluster::ScalingPolicyKind;
        [
            ScalingPolicyKind::Off,
            ScalingPolicyKind::Threshold {
                high: rng.range_f64(1.0, 6.0),
                low: rng.range_f64(0.1, 0.9),
            },
            ScalingPolicyKind::TargetUtilization {
                setpoint: rng.range_f64(0.4, 0.9),
                band: rng.range_f64(0.05, 0.2),
            },
            ScalingPolicyKind::Predictive {
                alpha: rng.range_f64(0.1, 0.9),
                per_replica_rps: rng.range_f64(0.1, 1.0),
                headroom: rng.range_f64(1.0, 1.5),
            },
        ][rng.range_usize(0, 4)]
    };
    let mut base = random_sim_config(rng);
    base.faults = FaultPlan::none(); // exercised separately; keep every request completable
    base.trace.num_requests = requests.len();
    base.policy = PolicyConfig {
        tenants: TenantClasses::new(&classes),
        dispatch,
        admission: hack_cluster::AdmissionPolicyKind::AdmitAll,
        scheduling,
        retry: hack_cluster::RetryPolicy::default(),
        scaling,
    };
    (base, requests)
}

#[test]
fn every_admitted_request_completes_exactly_once_per_tenant() {
    for case in 0..10 {
        let mut rng = DetRng::new(14_000 + case);
        let (config, requests) = random_multi_tenant(&mut rng);
        let result = Simulator::with_requests(config, requests.clone()).run();
        assert_eq!(result.rejected_requests, 0, "case {case}: AdmitAll");
        // Conservation: every generated request appears in the records exactly
        // once, and per-tenant completion counts equal per-tenant generation
        // counts.
        let mut seen = vec![0usize; requests.len()];
        for r in &result.records {
            seen[r.request.id as usize] += 1;
        }
        assert!(
            seen.iter().all(|&n| n == 1),
            "case {case}: duplicate or missing completion"
        );
        for (tenant, stats) in result.per_tenant_stats() {
            let generated = requests.iter().filter(|r| r.tenant == tenant).count();
            assert_eq!(stats.count, generated, "case {case}: {tenant}");
        }
    }
}

#[test]
fn records_never_leak_across_tenants() {
    for case in 0..10 {
        let mut rng = DetRng::new(15_000 + case);
        let (config, requests) = random_multi_tenant(&mut rng);
        let result = Simulator::with_requests(config, requests.clone()).run();
        for r in &result.records {
            // A record's embedded request — tenant tag included — is exactly
            // the generated one; the policy layer can reorder service but
            // never relabel or rewrite a request.
            assert_eq!(
                r.request, requests[r.request.id as usize],
                "case {case}: record diverged from its trace entry"
            );
        }
    }
}

#[test]
fn multi_tenant_runs_are_deterministic_under_every_policy() {
    for case in 0..6 {
        let mut rng = DetRng::new(16_000 + case);
        let (config, requests) = random_multi_tenant(&mut rng);
        let a = Simulator::with_requests(config, requests.clone()).run();
        let b = Simulator::with_requests(config, requests.clone()).run();
        assert_eq!(a, b, "case {case}: {:?}", config.policy.scheduling);
    }
}

#[test]
fn fcfs_policy_equals_default_on_single_tenant_traces() {
    // The pluggable-policy frontend under any shipped scheduling policy must
    // reproduce the default (pre-policy, FCFS) simulator bit-for-bit on
    // single-tenant traces: with one tenant, round-robin has a single
    // participant and EDF a single deadline offset.
    use hack_cluster::SchedulingPolicyKind;
    for case in 0..8 {
        let mut rng = DetRng::new(17_000 + case);
        let config = random_sim_config(&mut rng);
        let default_run = Simulator::new(config).run();
        for scheduling in [
            SchedulingPolicyKind::Fcfs,
            SchedulingPolicyKind::WeightedRoundRobin,
            SchedulingPolicyKind::SloEdf,
        ] {
            let mut explicit = config;
            explicit.policy.scheduling = scheduling;
            assert_eq!(
                Simulator::new(explicit).run(),
                default_run,
                "case {case}: {scheduling:?} must coincide with FCFS on one tenant"
            );
        }
    }
}

// --- Robustness invariants: conservation under randomized fault plans
// --- (topology-aware fabric, correlated switch faults, transfer retries).

use hack_cluster::{CostMode, SimulationResult};
use hack_sim::EngineMode;

/// A random non-overlapping fault plan over every fault-domain kind. When any
/// chosen domain needs the link graph, the caller must have set a `LinkGraph`
/// topology on the cluster first (this helper derives ToR counts from it).
fn random_fault_plan(rng: &mut DetRng, cluster: &ClusterConfig) -> FaultPlan {
    let link_graph = cluster.topology.link_graph().is_some();
    let mut plan = FaultPlan::none();
    let mut used: Vec<FaultDomain> = Vec::new();
    for _ in 0..rng.range_usize(1, 4) {
        let kinds = if link_graph { 7 } else { 2 };
        let domain = match rng.range_usize(0, kinds) {
            0 => FaultDomain::DecodeReplica(rng.range_usize(0, cluster.decode_replicas())),
            1 => FaultDomain::PrefillReplica(rng.range_usize(0, cluster.prefill_replicas())),
            2 => FaultDomain::DecodeNic(rng.range_usize(0, cluster.decode_replicas())),
            3 => FaultDomain::PrefillNic(rng.range_usize(0, cluster.prefill_replicas())),
            4 => FaultDomain::DecodeTor(rng.range_usize(0, cluster.decode_tors())),
            5 => FaultDomain::PrefillTor(rng.range_usize(0, cluster.prefill_tors())),
            _ => FaultDomain::Spine(0),
        };
        // The validator rejects overlapping windows on one domain; one fault
        // per domain sidesteps overlap entirely.
        if used.contains(&domain) {
            continue;
        }
        used.push(domain);
        let at = rng.range_f64(1.0, 300.0);
        plan.push(FaultEvent::transient(
            domain,
            at,
            at + rng.range_f64(5.0, 100.0),
        ));
    }
    plan
}

/// Global conservation: every generated request is completed exactly once,
/// rejected, or accounted as aborted — never lost, never duplicated.
fn assert_conserved(result: &SimulationResult, total: usize, label: &str) {
    let mut seen = vec![0usize; total];
    for r in &result.records {
        seen[r.request.id as usize] += 1;
    }
    assert!(
        seen.iter().all(|&n| n <= 1),
        "{label}: a request completed twice"
    );
    let missing = seen.iter().filter(|&&n| n == 0).count();
    assert_eq!(
        missing,
        result.rejected_requests + result.aborted_requests,
        "{label}: completed {} + rejected {} + aborted {} != total {total}",
        result.records.len(),
        result.rejected_requests,
        result.aborted_requests
    );
}

#[test]
fn conservation_holds_under_randomized_fault_plans_across_engines_and_cost_modes() {
    use hack_cluster::{LinkGraphSpec, TopologySpec};
    for case in 0..8 {
        let mut rng = DetRng::new(18_000 + case);
        let mut config = random_sim_config(&mut rng);
        if rng.chance(0.7) {
            config.cluster.topology = TopologySpec::LinkGraph(LinkGraphSpec::paper_default());
        }
        config.faults = random_fault_plan(&mut rng, &config.cluster);
        let total = config.trace.num_requests;

        // The two engine layouts must agree bit-for-bit even mid-fault-storm.
        let slab = Simulator::new(config).run_with_mode(EngineMode::Slab);
        let boxed = Simulator::new(config).run_with_mode(EngineMode::Boxed);
        assert_eq!(slab, boxed, "case {case}: engine divergence under faults");

        // Conservation holds in every cost mode (Reference recomputes each
        // stage time from first principles, so it reshuffles all timing).
        let reference = Simulator::new(config).run_with_costs(CostMode::Reference);
        assert_conserved(&slab, total, &format!("case {case} (table)"));
        assert_conserved(&reference, total, &format!("case {case} (reference)"));

        // Fault records stay within the plan's bounds.
        assert_eq!(slab.faults.len(), config.faults.len());
        for f in &slab.faults {
            assert!(f.requests_aborted <= total);
            assert!(f.downtime_secs >= 0.0);
        }
    }
}

#[test]
fn per_tenant_conservation_holds_under_randomized_fault_plans() {
    use hack_cluster::{LinkGraphSpec, TopologySpec};
    for case in 0..6 {
        let mut rng = DetRng::new(19_000 + case);
        let (mut config, requests) = random_multi_tenant(&mut rng);
        config.cluster.topology = TopologySpec::LinkGraph(LinkGraphSpec::paper_default());
        config.faults = random_fault_plan(&mut rng, &config.cluster);
        let result = Simulator::with_requests(config, requests.clone()).run();

        assert_conserved(&result, requests.len(), &format!("case {case}"));

        // Per-tenant: completions plus that tenant's missing requests cover
        // exactly what the tenant generated, and rejections never exceed the
        // tenant's missing share.
        let mut completed = std::collections::BTreeMap::new();
        let mut done = vec![false; requests.len()];
        for r in &result.records {
            *completed.entry(r.request.tenant).or_insert(0usize) += 1;
            done[r.request.id as usize] = true;
        }
        for (tenant, stats) in result.per_tenant_stats() {
            let generated = requests.iter().filter(|r| r.tenant == tenant).count();
            let finished = completed.get(&tenant).copied().unwrap_or(0);
            assert_eq!(stats.count, finished, "case {case}: {tenant}");
            let missing = requests
                .iter()
                .filter(|r| r.tenant == tenant && !done[r.id as usize])
                .count();
            assert_eq!(finished + missing, generated, "case {case}: {tenant}");
        }
    }
}

// --- Availability invariants: MTBF/MTTR-generated fault plans.

/// A random availability model. Link-bound kinds (NICs, ToRs, spine) are only
/// populated when the cluster actually has a link-graph fabric — on the flat
/// fabric the generator produces zero instances for them anyway, so gating
/// here just keeps the drawn specs meaningful.
fn random_availability_model(
    rng: &mut DetRng,
    link_graph: bool,
) -> hack_cluster::AvailabilityModel {
    use hack_cluster::{AvailabilityModel, MtbfSpec};
    let mut draw = |degradable: bool| -> Option<MtbfSpec> {
        if !rng.chance(0.6) {
            return None;
        }
        let mtbf = rng.range_f64(30.0, 600.0);
        let mttr = rng.range_f64(5.0, 90.0);
        if degradable && rng.chance(0.5) {
            Some(MtbfSpec::slowdown(mtbf, mttr, rng.range_f64(0.05, 0.95)))
        } else {
            Some(MtbfSpec::outage(mtbf, mttr))
        }
    };
    let mut model = AvailabilityModel {
        decode_replica: draw(false),
        prefill_replica: draw(false),
        ..AvailabilityModel::default()
    };
    if link_graph {
        model.prefill_nic = draw(true);
        model.decode_nic = draw(true);
        model.prefill_tor = draw(true);
        model.decode_tor = draw(true);
        model.spine = draw(true);
    }
    model
}

#[test]
fn generated_fault_plans_are_deterministic_and_always_validate() {
    use hack_cluster::{LinkGraphSpec, TopologySpec};
    for case in 0..24 {
        let mut rng = DetRng::new(21_000 + case);
        let mut config = random_sim_config(&mut rng);
        config.faults = hack_cluster::FaultPlan::none();
        let link_graph = rng.chance(0.6);
        if link_graph {
            config.cluster.topology =
                TopologySpec::LinkGraph(LinkGraphSpec::redundant(rng.range_usize(1, 5)));
        }
        let model = random_availability_model(&mut rng, link_graph);
        let shape = config.cluster.fleet_shape();
        let horizon = rng.range_f64(20.0, 2_000.0);
        let seed = rng.next_u64();

        let plan = model.generate_plan(&shape, horizon, seed);
        assert_eq!(
            plan,
            model.generate_plan(&shape, horizon, seed),
            "case {case}: generation must be a pure function of (model, shape, horizon, seed)"
        );
        assert!(plan.len() <= hack_cluster::MAX_FAULTS);
        for event in plan.iter() {
            assert!(event.at >= 0.0 && event.at < horizon, "case {case}");
            assert!(event.recover_at.unwrap() > event.at, "case {case}");
        }

        // Whatever the model drew, the generated plan passes the same typed
        // validator that rejects malformed hand-written plans.
        config.faults = plan;
        config
            .validate()
            .unwrap_or_else(|e| panic!("case {case}: generated plan rejected: {e}"));
    }
}

#[test]
fn conservation_holds_under_generated_plans_across_engines_and_cost_modes() {
    use hack_cluster::{LinkGraphSpec, TopologySpec};
    for case in 0..6 {
        let mut rng = DetRng::new(22_000 + case);
        let mut config = random_sim_config(&mut rng);
        config.cluster.topology =
            TopologySpec::LinkGraph(LinkGraphSpec::redundant(rng.range_usize(1, 4)));
        let model = random_availability_model(&mut rng, true);
        // A horizon past every arrival so faults can land mid-decode too.
        let horizon = config.trace.num_requests as f64 / config.trace.rps + 100.0;
        config.faults = model.generate_plan(&config.cluster.fleet_shape(), horizon, rng.next_u64());
        let total = config.trace.num_requests;

        let slab = Simulator::new(config).run_with_mode(EngineMode::Slab);
        let boxed = Simulator::new(config).run_with_mode(EngineMode::Boxed);
        assert_eq!(slab, boxed, "case {case}: engine divergence");
        let reference = Simulator::new(config).run_with_costs(CostMode::Reference);
        assert_conserved(&slab, total, &format!("case {case} (table)"));
        assert_conserved(&reference, total, &format!("case {case} (reference)"));

        // Degradation exposure only ever comes from degrade-tagged events.
        if config.faults.iter().all(|e| e.degrade.is_none()) {
            assert_eq!(slab.degraded_link_secs, 0.0, "case {case}");
            assert_eq!(slab.throughput_loss_gbps_s, 0.0, "case {case}");
        }
    }
}

// --- Session invariants: causal ordering, conservation under randomized
// --- session DAGs, and cache-off bit-identity to independent requests.

use hack_workload::session::{SessionKind, SessionSpec, SessionTrace};

/// A random session-structured workload (chat and agentic streams mixed with
/// an independent background stream) over a random cluster config, with the
/// prefix cache and the session-affinity dispatcher armed on half the draws.
fn random_session_workload(
    rng: &mut DetRng,
) -> (SimulationConfig, Arc<Vec<hack_workload::Request>>) {
    let datasets = [
        Dataset::Imdb,
        Dataset::Cocktail,
        Dataset::Arxiv,
        Dataset::HumanEval,
    ];
    let mut specs = Vec::new();
    for t in 0..rng.range_usize(1, 4) {
        let kind = if rng.chance(0.5) {
            SessionKind::Chat {
                turns: rng.range_usize(2, 6),
                think_mean_s: rng.range_f64(2.0, 60.0),
            }
        } else {
            SessionKind::Agentic {
                tools: rng.range_usize(1, 5),
                tool_delay_s: rng.range_f64(0.5, 20.0),
            }
        };
        specs.push(SessionSpec {
            tenant: hack_workload::trace::TenantId(t as u32),
            kind,
            sessions: rng.range_usize(2, 6),
            rps: rng.range_f64(0.02, 0.2),
            dataset: datasets[rng.range_usize(0, datasets.len())],
            max_context: ModelKind::Llama31_70B.spec().max_context,
            seed: rng.next_u64(),
        });
    }
    let mut trace = SessionTrace::new(specs);
    if rng.chance(0.5) {
        // Independent background requests interleaved into the same stream.
        trace = trace.with_background(
            hack_workload::trace::TraceGenerator::new(TraceConfig {
                dataset: datasets[rng.range_usize(0, datasets.len())],
                rps: rng.range_f64(0.05, 0.3),
                num_requests: rng.range_usize(3, 10),
                max_context: ModelKind::Llama31_70B.spec().max_context,
                seed: rng.next_u64(),
            })
            .generate(),
        );
    }
    let requests = Arc::new(trace.generate());
    let mut config = random_sim_config(rng);
    config.faults = FaultPlan::none(); // keep every request completable
    config.trace.num_requests = requests.len();
    if rng.chance(0.5) {
        config.cache = CacheConfig::with_capacity_fraction(rng.range_f64(0.1, 1.0));
    }
    if rng.chance(0.5) {
        config.policy.dispatch = hack_cluster::DispatchPolicyKind::SessionAffinity;
    }
    (config, requests)
}

#[test]
fn session_children_never_start_before_their_parent_completes() {
    for case in 0..8 {
        let mut rng = DetRng::new(23_000 + case);
        let (config, requests) = random_session_workload(&mut rng);
        let result = Simulator::with_requests(config, requests.clone()).run();
        assert_conserved(&result, requests.len(), &format!("case {case}"));

        let mut finish = vec![f64::NAN; requests.len()];
        for r in &result.records {
            finish[r.request.id as usize] = r.finish_time;
        }
        for r in &result.records {
            let Some(parent) = r.request.parent else {
                continue;
            };
            let parent_finish = finish[parent as usize];
            assert!(
                parent_finish.is_finite(),
                "case {case}: request {} completed but its parent {parent} did not",
                r.request.id
            );
            // Dispatch to prefill happens at nominal arrival plus queueing
            // wait; gating must hold it past the parent's completion.
            let started = r.request.arrival + r.breakdown.queueing;
            assert!(
                started >= parent_finish - 1e-9,
                "case {case}: request {} started at {started} before parent {parent} \
                 finished at {parent_finish}",
                r.request.id
            );
        }
    }
}

#[test]
fn session_conservation_holds_across_engines_and_cost_modes() {
    for case in 0..6 {
        let mut rng = DetRng::new(24_000 + case);
        let (config, requests) = random_session_workload(&mut rng);
        let slab =
            Simulator::with_requests(config, requests.clone()).run_with_mode(EngineMode::Slab);
        let boxed =
            Simulator::with_requests(config, requests.clone()).run_with_mode(EngineMode::Boxed);
        assert_eq!(
            slab, boxed,
            "case {case}: engine divergence on session DAGs"
        );
        let reference =
            Simulator::with_requests(config, requests.clone()).run_with_costs(CostMode::Reference);
        assert_conserved(&slab, requests.len(), &format!("case {case} (table)"));
        assert_conserved(
            &reference,
            requests.len(),
            &format!("case {case} (reference)"),
        );
    }
}

#[test]
fn cache_off_single_turn_sessions_match_independent_requests_exactly() {
    // With the cache off and every session a single root (no parents, no
    // shared prefixes), session tagging is inert metadata: the run must be
    // bit-identical to the same trace with the tags stripped.
    for case in 0..4 {
        let mut rng = DetRng::new(25_000 + case);
        let trace = SessionTrace::new(vec![SessionSpec {
            tenant: hack_workload::trace::TenantId(0),
            kind: SessionKind::Chat {
                turns: 1,
                think_mean_s: 10.0,
            },
            sessions: rng.range_usize(8, 20),
            rps: rng.range_f64(0.05, 0.3),
            dataset: [Dataset::Imdb, Dataset::Cocktail][rng.range_usize(0, 2)],
            max_context: ModelKind::Llama31_70B.spec().max_context,
            seed: rng.next_u64(),
        }]);
        let tagged = Arc::new(trace.generate());
        assert!(tagged.iter().all(|r| r.parent.is_none()));
        let stripped = Arc::new(
            tagged
                .iter()
                .map(|r| hack_workload::Request {
                    session: 0,
                    shared_prefix_tokens: 0,
                    ..*r
                })
                .collect::<Vec<_>>(),
        );
        let mut config = random_sim_config(&mut rng);
        config.cache = CacheConfig::Off;
        config.trace.num_requests = tagged.len();
        let mut from_tagged = Simulator::with_requests(config, tagged).run();
        let from_stripped = Simulator::with_requests(config, stripped).run();
        // Records embed the generated request; normalize the inert tags away
        // so `assert_eq!` compares every timing and cost field bit-for-bit.
        for r in &mut from_tagged.records {
            r.request.session = 0;
            r.request.shared_prefix_tokens = 0;
        }
        assert_eq!(from_tagged, from_stripped, "case {case}");
    }
}
