//! Integration: availability modeling end to end.
//!
//! Link degradation must fail *softer* than an equivalent binary outage
//! (graceful degradation: more completions, fewer permanent aborts, zero
//! replicas in the blast radius), redundant spines must turn spine outages
//! from transfer-killing events into ECMP reroutes of the surviving flows,
//! MTBF/MTTR-generated availability sweeps must be bit-identically
//! reproducible across runs and engine layouts, and the degraded-window
//! sensors must recount exactly from the raw fault plan even when windows of
//! different domains overlap in time.

use hack_cluster::SimulationResult;
use hack_core::prelude::*;
use hack_sim::EngineMode;

fn graph_config(n: usize, rps: f64, spines: usize) -> SimulationConfig {
    let mut cluster = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
    cluster.topology = TopologySpec::LinkGraph(LinkGraphSpec::redundant(spines));
    SimulationConfig {
        cluster,
        trace: TraceConfig {
            dataset: Dataset::Arxiv,
            rps,
            num_requests: n,
            max_context: ModelKind::Llama31_70B.spec().max_context,
            seed: 11,
        },
        profile: Method::Baseline.profile(),
        policy: PolicyConfig::default(),
        faults: FaultPlan::none(),
        telemetry: TelemetryConfig::Off,
        cache: CacheConfig::Off,
    }
}

fn assert_conserved(result: &SimulationResult, total: usize, label: &str) {
    assert_eq!(
        result.records.len() + result.rejected_requests + result.aborted_requests,
        total,
        "{label}: completed {} + rejected {} + aborted {} != total {total}",
        result.records.len(),
        result.rejected_requests,
        result.aborted_requests
    );
}

#[test]
fn link_degradation_fails_softer_than_the_equivalent_binary_outage() {
    // The same permanent fault of *both* decode-side ToRs (a single dead ToR
    // is routed around), once as a binary cut and once as a slowdown to 35%
    // of nominal capacity. The cut strands every transfer into the decode
    // fleet (bounded retries, then permanent aborts); the slowdown merely
    // stretches them, so the degraded run must complete strictly more
    // requests and abort strictly fewer.
    let n = 60;
    let mut binary = graph_config(n, 0.4, 1);
    let mut plan = FaultPlan::none();
    plan.push(FaultEvent::permanent(FaultDomain::DecodeTor(0), 30.0));
    plan.push(FaultEvent::permanent(FaultDomain::DecodeTor(1), 30.0));
    binary.faults = plan;

    let mut degraded = graph_config(n, 0.4, 1);
    let mut plan = FaultPlan::none();
    for tor in 0..2 {
        plan.push(FaultEvent {
            domain: FaultDomain::DecodeTor(tor),
            at: 30.0,
            recover_at: None,
            degrade: Some(0.35),
        });
    }
    degraded.faults = plan;

    let hard = Simulator::new(binary).run();
    let soft = Simulator::new(degraded).run();
    assert_conserved(&hard, n, "binary");
    assert_conserved(&soft, n, "degraded");

    // Graceful degradation, strictly.
    assert!(
        hard.aborted_requests > 0,
        "the binary outage must actually strand requests"
    );
    assert_eq!(soft.aborted_requests, 0, "a slow link loses nothing");
    assert_eq!(soft.abandoned_requests, 0);
    assert!(soft.records.len() > hard.records.len());

    // A degradation cuts no replicas and triggers no replica failovers: the
    // blast radius is empty and the only injected events are the fabric ones.
    assert_eq!(soft.faults.len(), 2);
    for f in &soft.faults {
        assert_eq!(f.replicas_affected, 0);
        assert_eq!(f.requests_aborted, 0);
    }
    assert_eq!(soft.injected_failures, 2);

    // The exposure sensors see the (makespan-clamped) degraded window.
    assert!(soft.degraded_link_secs > 0.0);
    assert!(soft.throughput_loss_gbps_s > 0.0);
    assert_eq!(hard.degraded_link_secs, 0.0);
    assert_eq!(hard.throughput_loss_gbps_s, 0.0);
}

#[test]
fn redundant_spines_reroute_flows_a_single_spine_fabric_must_retry() {
    // The same transient spine-block outage against one spine and against
    // two. With a single spine the fabric is partitioned: every in-flight
    // transfer dies and retries under backoff. With two spines the flows
    // ECMP-pinned to the dead block re-split onto the survivor and keep
    // going — no new retries, strictly fewer than the partitioned fabric.
    let n = 80;
    let mut single = graph_config(n, 0.6, 1);
    let mut plan = FaultPlan::none();
    plan.push(FaultEvent::transient(FaultDomain::Spine(0), 15.0, 60.0));
    single.faults = plan;
    let mut dual = graph_config(n, 0.6, 2);
    dual.faults = plan;

    let partitioned = Simulator::new(single).run();
    let rerouted = Simulator::new(dual).run();
    assert_conserved(&partitioned, n, "single spine");
    assert_conserved(&rerouted, n, "dual spine");

    // The single-spine fabric suffers: transfers crossing the outage abort
    // and retry. A spine fault never takes replicas down in either fabric.
    assert!(partitioned.transfer_retries > 0);
    assert_eq!(partitioned.faults[0].replicas_affected, 0);
    assert_eq!(rerouted.faults[0].replicas_affected, 0);

    // The dual-spine fabric reroutes the in-flight flows of the dead block
    // instead of aborting them.
    assert!(rerouted.rerouted_flows > 0, "ECMP must reroute live flows");
    assert!(rerouted.transfer_retries < partitioned.transfer_retries);
    assert!(rerouted.records.len() >= partitioned.records.len());

    // ECMP with every spine alive spreads flows without changing totals:
    // the no-fault dual-spine run completes everything the single-spine
    // no-fault run does.
    let calm_single = Simulator::new(graph_config(n, 0.6, 1)).run();
    let calm_dual = Simulator::new(graph_config(n, 0.6, 2)).run();
    assert_eq!(calm_single.transfer_retries, 0);
    assert_eq!(calm_single.records.len(), n);
    assert_eq!(calm_dual.records.len(), n);
    assert_eq!(calm_dual.rerouted_flows, 0);
}

#[test]
fn availability_sweeps_are_reproducible_and_engine_independent() {
    let experiment = AvailabilityExperiment {
        num_requests: 25,
        mtbf_grid_s: vec![60.0, 600.0],
        fault_seeds: vec![101, 102],
        ..AvailabilityExperiment::paper_sweep()
    };

    // Same seeds, bit-identical sweep — the Monte-Carlo grid is a pure
    // function of the experiment.
    let first = experiment.sweep(Method::Baseline);
    let second = experiment.sweep(Method::Baseline);
    assert_eq!(first, second);

    // Each generated cell validates, conserves requests, and is identical
    // under both engine layouts.
    for &mtbf in &experiment.mtbf_grid_s {
        for &seed in &experiment.fault_seeds {
            let config = experiment.simulation_config(mtbf, seed, Method::Baseline);
            config.validate().expect("generated plans always validate");
            let slab = Simulator::new(config).run_with_mode(EngineMode::Slab);
            let boxed = Simulator::new(config).run_with_mode(EngineMode::Boxed);
            assert_eq!(slab, boxed, "engine divergence at mtbf={mtbf} seed={seed}");
            assert_conserved(&slab, experiment.num_requests, "generated plan");
        }
    }

    // The aggressive grid point actually exercises the fault machinery.
    assert!(first[0].generated_faults > 0);
    assert!(first[0].availability > 0.0);
}

#[test]
fn degraded_window_sensors_recount_from_the_raw_plan_under_overlapping_windows() {
    // Three degradations whose windows overlap *in time* (the validator only
    // rejects overlap on one domain): exposure is per-link, so the sensor
    // must count each domain's window independently — overlapping windows on
    // different links accumulate, they do not merge.
    let n = 60;
    let mut config = graph_config(n, 0.4, 1);
    let mut plan = FaultPlan::none();
    plan.push(FaultEvent::degraded(
        FaultDomain::DecodeTor(0),
        20.0,
        60.0,
        0.5,
    ));
    plan.push(FaultEvent::degraded(
        FaultDomain::DecodeTor(1),
        30.0,
        50.0,
        0.25,
    ));
    plan.push(FaultEvent::degraded(
        FaultDomain::PrefillTor(0),
        45.0,
        75.0,
        0.8,
    ));
    config.faults = plan;
    config.validate().expect("overlap across domains is legal");

    let result = Simulator::new(config).run();
    assert_conserved(&result, n, "overlapping degradations");
    assert!(result.makespan > 75.0, "windows must close before makespan");

    // Recount from the raw plan: each ToR domain maps to exactly one fabric
    // link (its spine uplink), so degraded link-seconds are the summed
    // window lengths and the throughput loss is each window's capacity
    // shortfall on that 100 Gbps uplink.
    let expected_secs = (60.0 - 20.0) + (50.0 - 30.0) + (75.0 - 45.0);
    let uplink = LinkGraphSpec::paper_default().tor_uplink_gbps;
    let expected_loss =
        uplink * (1.0 - 0.5) * 40.0 + uplink * (1.0 - 0.25) * 20.0 + uplink * (1.0 - 0.8) * 30.0;
    assert!((result.degraded_link_secs - expected_secs).abs() < 1e-9);
    assert!((result.throughput_loss_gbps_s - expected_loss).abs() < 1e-6);

    // Every degradation is recorded as a zero-blast-radius fault.
    assert_eq!(result.faults.len(), 3);
    for f in &result.faults {
        assert_eq!(f.replicas_affected, 0);
        assert_eq!(f.requests_aborted, 0);
    }

    // The *merged*-window sensors, by contrast, take the union over domains:
    // the three overlapping windows fuse into [20, 75], so degraded seconds
    // are 55 — not the 90 summed link-seconds — and degraded goodput divides
    // the completions landing inside the union by exactly that.
    assert!((result.degraded_secs - 55.0).abs() < 1e-9);
    let inside = result
        .records
        .iter()
        .filter(|r| r.finish_time >= 20.0 && r.finish_time <= 75.0)
        .count();
    assert!(inside > 0, "the squeeze must overlap some completions");
    assert!((result.degraded_goodput - inside as f64 / 55.0).abs() < 1e-9);

    // A binary outage overlapping a degrade window *on the same domain* cuts
    // the very link the degradation slows: dead time is not degraded time, so
    // the sensors count the union and subtract the outage. DecodeTor(0)'s
    // degraded window [20, 60] loses its intersection with the outage
    // [30, 50] — 20 degraded link-seconds survive — while DecodeTor(1)'s
    // outage-free window still counts in full.
    let mut overlaid = graph_config(n, 0.4, 1);
    let mut plan = FaultPlan::none();
    plan.push(FaultEvent::degraded(
        FaultDomain::DecodeTor(0),
        20.0,
        60.0,
        0.5,
    ));
    plan.push(FaultEvent::transient(FaultDomain::DecodeTor(0), 30.0, 50.0));
    plan.push(FaultEvent::degraded(
        FaultDomain::DecodeTor(1),
        30.0,
        50.0,
        0.25,
    ));
    overlaid.faults = plan;
    overlaid
        .validate()
        .expect("a degrade over a binary outage on one domain is legal");
    let overlaid = Simulator::new(overlaid).run();
    assert_conserved(&overlaid, n, "degrade over outage");
    assert!(
        overlaid.makespan > 60.0,
        "windows must close before makespan"
    );
    let expected_secs = ((60.0 - 20.0) - (50.0 - 30.0)) + (50.0 - 30.0);
    let expected_loss = uplink * (1.0 - 0.5) * 20.0 + uplink * (1.0 - 0.25) * 20.0;
    assert!((overlaid.degraded_link_secs - expected_secs).abs() < 1e-9);
    assert!((overlaid.throughput_loss_gbps_s - expected_loss).abs() < 1e-6);
    // The outage itself is a real fault with a real blast radius (the two
    // replicas behind the ToR), recorded alongside the two degradations.
    assert_eq!(overlaid.faults.len(), 3);
    assert!(overlaid.faults.iter().any(|f| f.replicas_affected == 2));
}
