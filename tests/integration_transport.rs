//! Cross-crate integration tests: the real TCP prefill→decode path (the NCCL
//! substitute of §6), exercised with actual quantized attention states.

use hack_core::prelude::*;
use hack_transport::{DecodeServer, KvTransferMessage, PrefillClient};

fn build_state(tokens: usize, head_dim: usize, seed: u64) -> HackKvState {
    let mut rng = DetRng::new(seed);
    let gen = |rng: &mut DetRng| {
        Matrix::from_fn(tokens, head_dim, |t, c| {
            ((c % 5) as f32 - 2.0) * 0.4
                + 0.2 * rng.normal_f32(0.0, 1.0)
                + 0.03 * (t as f32 * 0.05).cos()
        })
    };
    let k = gen(&mut rng);
    let v = gen(&mut rng);
    HackKvState::from_prefill(&k, &v, HackConfig::paper_default(), &mut rng)
}

#[test]
fn prefill_to_decode_over_tcp_preserves_the_state_bit_for_bit() {
    let head_dim = 64;
    let server = DecodeServer::start().expect("bind server");
    let addr = server.addr();

    let states: Vec<HackKvState> = (0..3)
        .map(|i| build_state(100 + 30 * i, head_dim, i as u64))
        .collect();
    let expected: Vec<_> = states
        .iter()
        .map(|s| (s.k_quant().clone(), s.v_quant().clone(), s.v_tail().clone()))
        .collect();

    let sender = {
        let states = states.clone();
        std::thread::spawn(move || {
            let mut client = PrefillClient::connect(addr).expect("connect");
            for (i, s) in states.iter().enumerate() {
                let msg = KvTransferMessage {
                    request_id: i as u64,
                    layer: 0,
                    head: 0,
                    first_token: 11,
                    k: s.k_quant().clone(),
                    v: s.v_quant().clone(),
                    v_tail: s.v_tail().clone(),
                };
                client.send(&msg).expect("send");
            }
        })
    };
    sender.join().unwrap();

    let mut received = server.recv_n(3);
    received.sort_by_key(|m| m.request_id);
    for (i, msg) in received.iter().enumerate() {
        let (k, v, tail) = &expected[i];
        assert_eq!(&msg.k, k, "request {i}: K codes must be identical");
        assert_eq!(&msg.v, v, "request {i}: V codes must be identical");
        assert_eq!(
            &msg.v_tail, tail,
            "request {i}: FP16 tail must be identical"
        );
    }
    server.shutdown();
}

#[test]
fn transferred_state_continues_decoding_identically() {
    let head_dim = 32;
    let state = build_state(130, head_dim, 9);
    let server = DecodeServer::start().expect("bind server");
    let mut client = PrefillClient::connect(server.addr()).expect("connect");
    client
        .send(&KvTransferMessage {
            request_id: 7,
            layer: 1,
            head: 2,
            first_token: 99,
            k: state.k_quant().clone(),
            v: state.v_quant().clone(),
            v_tail: state.v_tail().clone(),
        })
        .expect("send");
    let msg = server.recv().expect("receive");
    server.shutdown();

    let mut remote = HackKvState::from_parts(
        HackConfig::paper_default(),
        head_dim,
        msg.k,
        msg.v,
        msg.v_tail,
    );
    let mut local = state;

    // Run the same decode steps on both sides with the same RNG stream; every output
    // must match exactly.
    let mut rng_local = DetRng::new(555);
    let mut rng_remote = DetRng::new(555);
    for step in 0..10 {
        let q: Vec<f32> = (0..head_dim)
            .map(|i| ((i + step) as f32 * 0.04).sin())
            .collect();
        let kv: Vec<f32> = (0..head_dim)
            .map(|i| ((i * 2 + step) as f32 * 0.03).cos())
            .collect();
        let (out_local, _) = local.decode_step(&q, &kv, &kv, &mut rng_local);
        let (out_remote, _) = remote.decode_step(&q, &kv, &kv, &mut rng_remote);
        assert_eq!(out_local, out_remote, "step {step} diverged");
    }
}

#[test]
fn wire_size_matches_cache_accounting_scale() {
    // The bytes that cross the network should be in the same ballpark as the quantized
    // cache accounting predicts (codes + metadata + sums + tail), and far below FP16.
    let head_dim = 128;
    let tokens = 1024;
    let state = build_state(tokens, head_dim, 21);
    let msg = KvTransferMessage {
        request_id: 0,
        layer: 0,
        head: 0,
        first_token: 0,
        k: state.k_quant().clone(),
        v: state.v_quant().clone(),
        v_tail: state.v_tail().clone(),
    };
    let wire = msg.encoded_len() as f64;
    let fp16 = state.fp16_bytes() as f64;
    let accounted = state.kv_bytes() as f64;
    assert!(wire < 0.3 * fp16, "wire {wire} vs fp16 {fp16}");
    // The wire format ships sums as i32 (vs 1-2 bytes in the cache), so it is a bit
    // larger than the cache accounting but within 2x.
    assert!(
        wire < 2.0 * accounted,
        "wire {wire} vs accounted {accounted}"
    );
    assert!(wire > 0.5 * accounted);
}
