//! Heterogeneous-fleet scenario suite: mixed replica groups with per-group
//! cost models, replica-aware dispatch and per-group result stats, plus the
//! backward-compatibility contract at the experiment level.

use hack_core::prelude::*;
use hack_sim::EngineMode;
use hack_workload::tenant::{MultiTenantTrace, TenantSpec};
use std::sync::Arc;

fn experiment() -> HeteroFleetExperiment {
    HeteroFleetExperiment {
        num_requests: 50,
        ..HeteroFleetExperiment::paper_mixed()
    }
}

#[test]
fn mixed_fleet_runs_deterministically_with_per_group_stats() {
    let e = experiment();
    for dispatch in DispatchPolicyKind::all() {
        let a = e.run(e.mixed_cluster(), Method::hack(), dispatch);
        let b = e.run(e.mixed_cluster(), Method::hack(), dispatch);
        assert_eq!(
            a,
            b,
            "{}: mixed-fleet runs must be bit-identical",
            dispatch.name()
        );
        assert_eq!(a.completed_requests, e.num_requests, "{}", dispatch.name());
        assert_eq!(a.prefill_groups.len(), 2);
        assert_eq!(a.decode_groups.len(), 1);
        let served: usize = a.prefill_groups.iter().map(|g| g.completed).sum();
        assert_eq!(
            served,
            e.num_requests,
            "{}: group attribution",
            dispatch.name()
        );
        for g in &a.prefill_groups {
            assert!(
                g.utilization >= 0.0 && g.utilization <= 1.0 + 1e-9,
                "{}: group {} utilization {}",
                dispatch.name(),
                g.group,
                g.utilization
            );
        }
    }
}

#[test]
fn mixed_fleet_is_engine_mode_invariant() {
    let e = experiment();
    let config = e.simulation_config(
        e.mixed_cluster(),
        Method::hack(),
        DispatchPolicyKind::FastestEligible,
    );
    let sim = Simulator::new(config);
    assert_eq!(
        sim.run_with_mode(EngineMode::Slab),
        sim.run_with_mode(EngineMode::Boxed),
        "engine modes must agree bit-for-bit on heterogeneous fleets"
    );
}

#[test]
fn mixed_beats_uniform_and_group_aware_dispatch_beats_load_only() {
    // The scenario the fleet API exists for: an L4 half-fleet accelerates
    // prefill, and only a group-aware dispatch policy fully exploits it.
    let e = experiment();
    let uniform = e.run(
        e.uniform_cluster(),
        Method::hack(),
        DispatchPolicyKind::LeastLoaded,
    );
    let least = e.run(
        e.mixed_cluster(),
        Method::hack(),
        DispatchPolicyKind::LeastLoaded,
    );
    let fastest = e.run(
        e.mixed_cluster(),
        Method::hack(),
        DispatchPolicyKind::FastestEligible,
    );
    assert!(
        least.average_jct < uniform.average_jct,
        "mixed {} vs uniform {}",
        least.average_jct,
        uniform.average_jct
    );
    assert!(
        fastest.average_jct < least.average_jct,
        "fastest-eligible {} vs least-loaded {}",
        fastest.average_jct,
        least.average_jct
    );
    // The policy shifts completions toward the faster L4 group.
    assert!(fastest.prefill_groups[1].completed > least.prefill_groups[1].completed);
    // And the L4 group's mean JCT reflects its faster service.
    assert!(fastest.prefill_groups[1].utilization > least.prefill_groups[1].utilization);
}

#[test]
fn group_affinity_partitions_tenants_onto_groups() {
    // Two tenants on a two-group fleet under group-affinity dispatch: every
    // request must be prefilled by a replica of its tenant's pinned group.
    let e = experiment();
    let mixed = e.mixed_cluster();
    let specs: Vec<TenantSpec> = (0..2u32)
        .map(|t| TenantSpec {
            tenant: TenantId(t),
            trace: TraceConfig {
                dataset: if t == 0 {
                    Dataset::Imdb
                } else {
                    Dataset::Cocktail
                },
                rps: 0.2,
                num_requests: 15,
                max_context: e.model.spec().max_context,
                seed: 21 + u64::from(t),
            },
        })
        .collect();
    let requests = Arc::new(MultiTenantTrace::new(specs).generate());
    let mut config = e.simulation_config(mixed, Method::hack(), DispatchPolicyKind::GroupAffinity);
    config.trace.num_requests = requests.len();
    let result = Simulator::with_requests(config, requests).run();
    assert_eq!(result.records.len(), 30);
    let group0_replicas = mixed.fleet.prefill.get(0).replicas;
    for r in &result.records {
        let group = usize::from(r.prefill_replica >= group0_replicas);
        assert_eq!(
            group,
            r.request.tenant.index() % 2,
            "request {} (tenant {}) prefilled by group {group}",
            r.request.id,
            r.request.tenant
        );
    }
    // Both groups actually served their tenant.
    assert!(result.prefill_groups.iter().all(|g| g.completed > 0));
}

#[test]
fn uniform_fleet_reproduces_legacy_jct_experiment_results() {
    // A JctExperiment drives the same single-group topology through the
    // legacy constructors; an explicitly fleet-built uniform cluster with the
    // identical shape must reproduce it bit-for-bit.
    let e = experiment();
    let uniform = e.uniform_cluster();
    let legacy_config = SimulationConfig {
        cluster: uniform,
        trace: TraceConfig {
            dataset: e.dataset,
            rps: e.rps,
            num_requests: e.num_requests,
            max_context: e.model.spec().max_context,
            seed: e.seed,
        },
        profile: Method::hack().profile(),
        policy: PolicyConfig::default(),
        faults: FaultPlan::none(),
        telemetry: TelemetryConfig::Off,
        cache: CacheConfig::Off,
    };
    let direct = Simulator::new(legacy_config).run();
    let via_experiment = e.run(uniform, Method::hack(), DispatchPolicyKind::LeastLoaded);
    assert_eq!(
        HeteroFleetOutcome::from_result(DispatchPolicyKind::LeastLoaded, direct),
        via_experiment
    );
}

#[test]
fn per_group_decode_budgets_follow_the_group_spec() {
    // A decode side with two groups of different memory (A100 80 GiB vs L4
    // 24 GiB per GPU): the smaller group must report a smaller peak budget,
    // and the simulation still completes with per-group memory accounting.
    let e = experiment();
    let mut cluster = e.mixed_cluster();
    let a100 = *cluster.fleet.decode.get(0);
    let l4_decode = ReplicaGroup {
        replicas: 2,
        parallel: hack_model::parallelism::Parallelism::new(4, 1),
        ..ReplicaGroup::paper_sized(e.model, GpuKind::L4, 4)
    };
    cluster.fleet.decode = GroupSet::new(&[a100, l4_decode]);
    // Four L4s (96 GiB) cannot even hold the FP16 weights of a 70B model —
    // the group's KV budget clamps to zero and every request must land on
    // the A100 group.
    assert_eq!(cluster.decode_group_kv_budget_bytes(1), 0.0);
    assert!(cluster.decode_group_kv_budget_bytes(0) > 0.0);
    let config = e.simulation_config(cluster, Method::hack(), DispatchPolicyKind::LeastLoaded);
    let result = Simulator::new(config).run();
    assert_eq!(result.records.len(), e.num_requests);
    let a100_replicas = cluster.fleet.decode.get(0).replicas;
    assert!(
        result
            .records
            .iter()
            .all(|r| r.decode_replica < a100_replicas),
        "no request may decode on the zero-budget L4 group"
    );
    assert_eq!(result.decode_groups.len(), 2);
    assert_eq!(result.decode_groups[1].completed, 0);
}

#[test]
fn aborted_decode_time_is_charged_to_the_failing_group() {
    // Split the paper's 4 decode replicas into two groups of 2 and fail a
    // group-0 replica mid-decode: the wasted attempt seconds must stay on
    // group 0's utilization account even though the aborted requests complete
    // on other replicas (the per-request breakdown still charges the request).
    let e = experiment();
    let mut cluster = e.mixed_cluster();
    let a100 = *cluster.fleet.decode.get(0);
    let half = ReplicaGroup {
        replicas: 2,
        ..a100
    };
    cluster.fleet.decode = GroupSet::new(&[half, half]);
    let base = e.simulation_config(cluster, Method::Baseline, DispatchPolicyKind::LeastLoaded);

    // Pick a victim that decodes on group 0 (replicas 0..2) for over a second.
    let healthy = Simulator::new(base).run();
    let victim = healthy
        .records
        .iter()
        .find(|r| r.decode_replica < 2 && r.breakdown.decode > 1.0)
        .expect("some request decodes on group 0 for more than a second");
    let mut config = base;
    config.faults = FailureSpec::permanent(victim.decode_replica, victim.finish_time - 0.5).into();
    let result = Simulator::new(config).run();
    assert_eq!(result.records.len(), e.num_requests);
    assert!(result.requeued_requests > 0, "the failure must abort work");

    // Conservation: the groups' decode busy-seconds (successful attempts plus
    // aborted ones, charged where they ran) sum to the records' decode +
    // dequant columns (which fold the aborted time into the completing
    // request).
    let group_busy: f64 = result.decode_groups.iter().map(|g| g.busy_secs).sum();
    let record_busy: f64 = result
        .records
        .iter()
        .map(|r| r.breakdown.decode + r.breakdown.dequant_or_approx)
        .sum();
    assert!(
        (group_busy - record_busy).abs() <= 1e-9 * record_busy.max(1.0),
        "group accounting must conserve decode seconds: {group_busy} vs {record_busy}"
    );
    for g in &result.decode_groups {
        assert!(
            g.utilization <= 1.0 + 1e-9,
            "group {} utilization {} exceeds its capacity",
            g.group,
            g.utilization
        );
    }
    // The failed group keeps a non-zero busy account (its pre-failure and
    // aborted work), and both groups completed requests.
    assert!(result.decode_groups[0].busy_secs > 0.0);
    assert!(result.decode_groups.iter().all(|g| g.completed > 0));
}

#[test]
fn hetero_grid_is_deterministic() {
    let e = experiment();
    let a = e.grid(Method::Baseline);
    let b = e.grid(Method::Baseline);
    // Cell-wise bit equality (NaN marks absent groups, so PartialEq on the
    // whole table would reject identical grids).
    assert_eq!(a.columns, b.columns);
    assert_eq!(a.rows.len(), b.rows.len());
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.label, rb.label);
        for (va, vb) in ra.values.iter().zip(&rb.values) {
            assert!(va.to_bits() == vb.to_bits(), "{}: {va} vs {vb}", ra.label);
        }
    }
}
