//! Cross-crate integration tests: the cluster simulator driven through the public
//! `hack-core` experiment API (the machinery behind Figs. 1–4 and 9–14).

use hack_core::prelude::*;

fn experiment(dataset: Dataset, n: usize) -> JctExperiment {
    JctExperiment {
        num_requests: n,
        ..JctExperiment::new(ModelKind::Llama31_70B, GpuKind::A10G, dataset)
    }
}

#[test]
fn fig9_shape_hack_wins_on_every_dataset() {
    for dataset in [Dataset::Imdb, Dataset::Cocktail] {
        let outcomes = experiment(dataset, 30).run_all(&Method::main_comparison());
        let baseline = &outcomes[0];
        let hack = &outcomes[3];
        assert!(
            hack.average_jct < baseline.average_jct,
            "{}: HACK {} vs baseline {}",
            dataset.name(),
            hack.average_jct,
            baseline.average_jct
        );
        for o in &outcomes {
            assert_eq!(o.completed_requests, 30, "{}", o.method_name);
        }
    }
}

#[test]
fn long_datasets_benefit_more_than_short_ones() {
    // Fig. 9: the JCT improvement of HACK over the baseline is larger for arXiv and
    // Cocktail than for IMDb and HumanEval.
    let gain = |dataset: Dataset| {
        let e = experiment(dataset, 30);
        let base = e.run(Method::Baseline);
        let hack = e.run(Method::hack());
        hack.jct_reduction_vs(&base)
    };
    let short = gain(Dataset::Imdb);
    let long = gain(Dataset::Cocktail);
    assert!(
        long > short,
        "long-dataset gain {long} should exceed short-dataset gain {short}"
    );
}

#[test]
fn fig12_baseline_comm_ratio_tracks_bandwidth() {
    // Fig. 1(a): the A100 prefill instance (400 Gbps) has a far smaller communication
    // ratio than the 10-50 Gbps instances.
    let ratio = |gpu: GpuKind| {
        let e = JctExperiment {
            num_requests: 30,
            ..JctExperiment::new(ModelKind::Llama31_70B, gpu, Dataset::Cocktail)
        };
        e.run(Method::Baseline).ratios.communication
    };
    let a100 = ratio(GpuKind::A100);
    let v100 = ratio(GpuKind::V100);
    let a10g = ratio(GpuKind::A10G);
    assert!(a100 < a10g, "A100 comm {a100} vs A10G {a10g}");
    assert!(a100 < v100, "A100 comm {a100} vs V100 {v100}");
}

#[test]
fn table5_memory_shape() {
    // Table 5: quantized methods cut peak decode memory; HACK sits at or slightly above
    // CacheGen/KVQuant (sums + FP16 tail) but below the baseline. The simulated
    // residency is lower than the paper's (its decode instances run much closer to
    // memory saturation), so only the ordering is asserted here; the table5 harness
    // additionally reports the analytic at-capacity breakdown, which reproduces the
    // paper's magnitudes.
    let e = experiment(Dataset::Cocktail, 40);
    let base = e.run(Method::Baseline);
    let cachegen = e.run(Method::CacheGen);
    let hack = e.run(Method::hack());
    assert!(base.peak_decode_memory_fraction > cachegen.peak_decode_memory_fraction);
    assert!(hack.peak_decode_memory_fraction >= cachegen.peak_decode_memory_fraction - 1e-9);
    assert!(hack.peak_decode_memory_fraction <= base.peak_decode_memory_fraction);
}

#[test]
fn fig13_ablations_cost_time() {
    // Fig. 13: HACK/SE is slower than HACK, especially on long sequences; HACK/RQE is
    // never faster than HACK.
    let e = experiment(Dataset::Cocktail, 30);
    let hack = e.run(Method::hack());
    let no_se = e.run(Method::HackNoSe);
    let no_rqe = e.run(Method::HackNoRqe);
    assert!(
        no_se.average_jct > hack.average_jct,
        "SE removal must cost time"
    );
    assert!(no_rqe.average_jct >= hack.average_jct);
}

#[test]
fn fig14_scalability_completes_and_keeps_the_method_ordering() {
    // Fig. 14: at every prefill:decode ratio p the compressed methods stay below the
    // baseline. (The paper's 127% baseline JCT growth comes from running its real
    // decode side at saturation, which the calibrated service-time model does not reach
    // at RPS = 0.02·p; the harness binary prints the simulated series and
    // EXPERIMENTS.md records the deviation.)
    for p in [1usize, 4] {
        let e = JctExperiment::scalability(p);
        let base = e.run(Method::Baseline);
        let hack = e.run(Method::hack());
        assert_eq!(base.completed_requests, e.num_requests);
        assert_eq!(hack.completed_requests, e.num_requests);
        assert!(
            hack.average_jct < base.average_jct,
            "p={p}: HACK {} vs baseline {}",
            hack.average_jct,
            base.average_jct
        );
    }
}

#[test]
fn pipelining_only_helps_communication() {
    let plain = experiment(Dataset::Cocktail, 30);
    let mut piped = plain;
    piped.pipelining = true;
    let a = plain.run(Method::Baseline);
    let b = piped.run(Method::Baseline);
    assert!(b.ratios.communication <= a.ratios.communication + 1e-9);
    // Prefill and decode service times are untouched by pipelining.
    assert!((a.stats.mean_breakdown.prefill - b.stats.mean_breakdown.prefill).abs() < 1e-6);
}

#[test]
fn outcomes_serialize_to_json() {
    let e = experiment(Dataset::HumanEval, 10);
    let outcome = e.run(Method::hack());
    let json = serde_json::to_string(&outcome).expect("serializable outcome");
    assert!(json.contains("average_jct"));
    assert!(json.contains("HACK"));
}
