//! Integration: session-structured workloads over the KV prefix cache.
//!
//! The session subsystem must keep the simulator's core promises — every
//! generated request completes exactly once, no child starts before its
//! parent finishes — in every (mix, cache, dispatch) cell, while the cache
//! itself honours its byte budget (evicting under pressure rather than
//! growing past `capacity_fraction`) and cache-aware dispatch converts
//! session locality into hits. Cache state lives outside the event queue's
//! tie-order, so every cell must land bit-identically across engine layouts
//! and repeat runs.

use hack_cluster::SimulationResult;
use hack_core::prelude::*;
use hack_sim::EngineMode;
use std::sync::Arc;

fn experiment() -> SessionCacheExperiment {
    SessionCacheExperiment {
        sessions: 6,
        ..SessionCacheExperiment::paper_default()
    }
}

fn assert_conserved(result: &SimulationResult, total: usize, label: &str) {
    assert_eq!(
        result.records.len(),
        total,
        "{label}: a faultless session run completes everything"
    );
    let mut seen = vec![0usize; total];
    for r in &result.records {
        seen[r.request.id as usize] += 1;
    }
    assert!(
        seen.iter().all(|&n| n == 1),
        "{label}: every request completes exactly once"
    );
}

fn assert_causal(result: &SimulationResult, total: usize, label: &str) {
    let mut finish = vec![0.0f64; total];
    for r in &result.records {
        finish[r.request.id as usize] = r.finish_time;
    }
    for r in &result.records {
        if let Some(parent) = r.request.parent {
            let started = r.request.arrival + r.breakdown.queueing;
            assert!(
                started >= finish[parent as usize] - 1e-9,
                "{label}: request {} started at {started} before parent {parent} \
                 finished at {}",
                r.request.id,
                finish[parent as usize]
            );
        }
    }
}

#[test]
fn every_cell_conserves_requests_and_respects_the_dag() {
    // Conservation and causal ordering are unconditional: they hold with the
    // cache off, with the cache armed, and under both dispatchers, on linear
    // chat chains and agentic fan-out alike.
    let e = experiment();
    for mix in SessionMix::all() {
        let requests = Arc::new(e.trace(mix).generate());
        for (cache, dispatch) in e.cells() {
            let config = e.simulation_config(Method::hack(), mix, cache, dispatch, requests.len());
            let result = Simulator::with_requests(config, requests.clone()).run();
            let label = format!("{}/{}", mix.name(), dispatch.name());
            assert_conserved(&result, requests.len(), &label);
            assert_causal(&result, requests.len(), &label);
        }
    }
}

#[test]
fn affinity_dispatch_converts_session_locality_into_hits() {
    // The acceptance scenario: on the chat-heavy mix the armed cache under
    // session-affinity dispatch hits on most follow-ups, saves real prefill
    // seconds, and beats the cache-off baseline on mean JCT. Affinity must
    // also hit at least as often as chance placement (least-loaded).
    let e = experiment();
    for mix in [SessionMix::Chat, SessionMix::Mixed] {
        let [(off_cache, off_dispatch), (on_cache, ll), (_, affinity)] = e.cells();
        let off = e.run(Method::hack(), mix, off_cache, off_dispatch);
        let chance = e.run(Method::hack(), mix, on_cache, ll);
        let routed = e.run(Method::hack(), mix, on_cache, affinity);
        assert!(
            routed.hit_rate >= chance.hit_rate,
            "{}: affinity hit rate {} under chance placement's {}",
            mix.name(),
            routed.hit_rate,
            chance.hit_rate
        );
        assert!(
            routed.hit_rate >= 0.5,
            "{}: hit rate {}",
            mix.name(),
            routed.hit_rate
        );
        assert!(routed.prefill_seconds_saved > 0.0);
        assert!(routed.bytes_saved > 0.0);
        assert!(
            routed.mean_jct < off.mean_jct,
            "{}: cache on {} must beat off {}",
            mix.name(),
            routed.mean_jct,
            off.mean_jct
        );
    }
}

#[test]
fn a_starved_cache_evicts_and_honours_its_byte_budget() {
    // Shrink the cache until the session population no longer fits: the LRU
    // must evict (never grow past the budget), and the run must still keep
    // every correctness promise — a cache under pressure degrades hit rate,
    // not the simulation.
    let roomy = experiment();
    let starved = SessionCacheExperiment {
        capacity_fraction: 0.01,
        sessions: 10,
        ..roomy
    };
    let requests = Arc::new(starved.trace(SessionMix::Chat).generate());
    let config = starved.simulation_config(
        Method::hack(),
        SessionMix::Chat,
        CacheConfig::with_capacity_fraction(starved.capacity_fraction),
        DispatchPolicyKind::SessionAffinity,
        requests.len(),
    );
    let result = Simulator::with_requests(config, requests.clone()).run();
    assert_conserved(&result, requests.len(), "starved");
    assert_causal(&result, requests.len(), "starved");
    assert!(
        result.prefix_evictions > 0,
        "a 1% budget must force evictions (got {})",
        result.prefix_evictions
    );
    for (group, &peak) in result.prefix_cache_peak_fraction.iter().enumerate() {
        assert!(
            peak <= starved.capacity_fraction + 1e-9,
            "group {group}: peak occupancy {peak} exceeds the {} budget",
            starved.capacity_fraction
        );
    }
    // The roomy default on the same workload evicts nothing and hits more.
    let roomy_run = SessionCacheExperiment {
        sessions: 10,
        ..roomy
    }
    .run(
        Method::hack(),
        SessionMix::Chat,
        CacheConfig::with_capacity_fraction(roomy.capacity_fraction),
        DispatchPolicyKind::SessionAffinity,
    );
    let starved_run = SessionCacheOutcome::from_result(
        SessionMix::Chat,
        true,
        DispatchPolicyKind::SessionAffinity,
        result,
    );
    assert!(
        roomy_run.hit_rate >= starved_run.hit_rate,
        "starving the cache must not raise the hit rate ({} vs {})",
        starved_run.hit_rate,
        roomy_run.hit_rate
    );
}

#[test]
fn cache_cells_are_engine_independent_and_reproducible() {
    // Cache bookkeeping (LRU clocks, pins, byte accounting) draws no
    // randomness and never races the event queue, so every cell — hits,
    // evictions, every JCT — must be bit-identical across engine layouts and
    // across repeat runs.
    let e = experiment();
    for mix in SessionMix::all() {
        let requests = Arc::new(e.trace(mix).generate());
        for (cache, dispatch) in e.cells() {
            let config = e.simulation_config(Method::hack(), mix, cache, dispatch, requests.len());
            let run = |mode| Simulator::with_requests(config, requests.clone()).run_with_mode(mode);
            let slab = run(EngineMode::Slab);
            assert_eq!(
                slab,
                run(EngineMode::Boxed),
                "{}/{}: engine layouts diverged",
                mix.name(),
                dispatch.name()
            );
            assert_eq!(
                slab,
                run(EngineMode::Slab),
                "{}/{}: repeat runs diverged",
                mix.name(),
                dispatch.name()
            );
        }
    }
}

#[test]
fn the_grid_matches_its_individually_run_cells() {
    // The table is an aggregation, not a second code path: every value in
    // the grid must equal the outcome of running that cell on its own.
    let e = experiment();
    let table = e.grid(Method::hack());
    assert_eq!(table.rows.len(), SessionMix::all().len() * e.cells().len());
    for mix in SessionMix::all() {
        for (cache, dispatch) in e.cells() {
            let outcome = e.run(Method::hack(), mix, cache, dispatch);
            let label = outcome.label();
            assert_eq!(
                table.value(&label, "mean_jct_s"),
                Some(outcome.mean_jct),
                "{label}: mean JCT drifted between grid and cell"
            );
            assert_eq!(
                table.value(&label, "hit_rate"),
                Some(outcome.hit_rate),
                "{label}: hit rate drifted between grid and cell"
            );
        }
    }
}
