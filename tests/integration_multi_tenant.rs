//! Multi-tenant scenario suite: deterministic two-tenant contention on one
//! disaggregated cluster, pinning the policy layer's semantics.
//!
//! The scenario is the `tenant_mix` default — an interactive tenant (IMDb,
//! short prompts, tight SLO) sharing the paper-default cluster with a batch
//! tenant (Cocktail, long prompts) driven past single-tenant capacity — and
//! the assertions are the reasons the policy layer exists:
//!
//! * same seed ⇒ bit-identical per-tenant results, across runs and across
//!   engine representations (`EngineMode::Slab` vs `Boxed`), and within 1e-9
//!   across cost models (`CostMode::Table` vs `Reference`);
//! * FCFS starves the interactive tenant behind the batch backlog, weighted
//!   round-robin bounds its wait, SLO-EDF prioritises its deadlines — and
//!   both measurably improve the Jain fairness index over FCFS.

use hack_cluster::{CostMode, SchedulingPolicyKind, SimulationConfig, Simulator};
use hack_core::prelude::*;
use hack_sim::EngineMode;
use hack_workload::Request;
use std::sync::Arc;

/// The pinned contention scenario (shrunk from the `tenant_mix` default for
/// test runtime; the overload ratio is preserved).
fn contention_mix() -> TenantMixExperiment {
    let mut mix = TenantMixExperiment::interactive_vs_batch();
    mix.tenants[0].num_requests = 15;
    mix.tenants[1].num_requests = 70;
    mix
}

fn mix_config(mix: &TenantMixExperiment, scheduling: SchedulingPolicyKind) -> SimulationConfig {
    mix.simulation_config(Method::hack(), scheduling)
}

fn mix_requests(mix: &TenantMixExperiment) -> Arc<Vec<Request>> {
    Arc::new(mix.trace().generate())
}

#[test]
fn two_tenant_runs_are_bit_identical_across_runs_and_engine_modes() {
    let mix = contention_mix();
    for scheduling in SchedulingPolicyKind::all() {
        let config = mix_config(&mix, scheduling);
        let run = |mode: EngineMode| {
            Simulator::with_requests(config, mix_requests(&mix)).run_with_mode(mode)
        };
        let a = run(EngineMode::Slab);
        let b = run(EngineMode::Slab);
        // PartialEq on SimulationResult compares every f64 exactly; equality
        // of the full results implies bit-identical per-tenant JctStats.
        assert_eq!(a, b, "{}: repeat run", scheduling.name());
        assert_eq!(
            a.per_tenant_stats(),
            b.per_tenant_stats(),
            "{}: per-tenant stats",
            scheduling.name()
        );
        let boxed = run(EngineMode::Boxed);
        assert_eq!(a, boxed, "{}: engine modes", scheduling.name());
        assert_eq!(a.records.len(), 85, "{}: all complete", scheduling.name());
    }
}

#[test]
fn cost_table_and_reference_agree_per_tenant() {
    let mix = contention_mix();
    for scheduling in SchedulingPolicyKind::all() {
        let sim = Simulator::with_requests(mix_config(&mix, scheduling), mix_requests(&mix));
        let table = sim.run_with_costs(CostMode::Table);
        let reference = sim.run_with_costs(CostMode::Reference);
        // The cost tables only reorder f64 summation, so the discrete
        // outcomes (who completed, where, per tenant) are identical and the
        // per-tenant timings agree to 1e-9 relative.
        assert_eq!(table.records.len(), reference.records.len());
        let ts = table.per_tenant_stats();
        let rs = reference.per_tenant_stats();
        assert_eq!(ts.len(), rs.len(), "{}", scheduling.name());
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
        for ((tt, t), (rt, r)) in ts.iter().zip(&rs) {
            assert_eq!(tt, rt, "{}", scheduling.name());
            assert_eq!(t.count, r.count, "{}: {tt} count", scheduling.name());
            assert!(close(t.mean, r.mean), "{}: {tt} mean", scheduling.name());
            assert!(close(t.p95, r.p95), "{}: {tt} p95", scheduling.name());
        }
        assert!(close(table.jain_fairness(), reference.jain_fairness()));
    }
}

#[test]
fn fcfs_starves_the_interactive_tenant_and_wrr_bounds_its_wait() {
    let mix = contention_mix();
    let interactive = TenantId(0);
    let fcfs = mix.run(Method::hack(), SchedulingPolicyKind::Fcfs);
    let wrr = mix.run(Method::hack(), SchedulingPolicyKind::WeightedRoundRobin);

    // Starvation under FCFS: the interactive tenant spends the bulk of its
    // JCT queueing behind the batch backlog (its own service is seconds).
    let fcfs_queue = fcfs
        .tenant_stats(interactive)
        .expect("interactive tenant completes")
        .mean_breakdown
        .queueing;
    let fcfs_service = fcfs.tenant_stats(interactive).unwrap().mean - fcfs_queue;
    assert!(
        fcfs_queue > 5.0 * fcfs_service,
        "FCFS must starve the interactive tenant: queueing {fcfs_queue:.1}s vs \
         service {fcfs_service:.1}s"
    );

    // Bounded wait under weighted round-robin: the interactive tenant's worst
    // queueing drops to a fraction of the FCFS backlog wait.
    let wrr_queue = wrr
        .tenant_stats(interactive)
        .unwrap()
        .mean_breakdown
        .queueing;
    assert!(
        wrr_queue < 0.6 * fcfs_queue,
        "WRR must bound the interactive tenant's wait: {wrr_queue:.1}s vs \
         FCFS {fcfs_queue:.1}s"
    );
    let fcfs_p95 = fcfs.tenant_stats(interactive).unwrap().p95;
    let wrr_p95 = wrr.tenant_stats(interactive).unwrap().p95;
    assert!(
        wrr_p95 < fcfs_p95,
        "tail JCT must improve too: {wrr_p95:.1}s vs {fcfs_p95:.1}s"
    );
}

#[test]
fn round_robin_and_edf_improve_jain_fairness_over_fcfs_under_overload() {
    let mix = contention_mix();
    let fcfs = mix.run(Method::hack(), SchedulingPolicyKind::Fcfs);
    let wrr = mix.run(Method::hack(), SchedulingPolicyKind::WeightedRoundRobin);
    let edf = mix.run(Method::hack(), SchedulingPolicyKind::SloEdf);

    assert!(
        wrr.jain_fairness > fcfs.jain_fairness + 0.01,
        "WRR must measurably out-fair FCFS: {} vs {}",
        wrr.jain_fairness,
        fcfs.jain_fairness
    );
    assert!(
        edf.jain_fairness > fcfs.jain_fairness + 0.01,
        "SLO-EDF must measurably out-fair FCFS: {} vs {}",
        edf.jain_fairness,
        fcfs.jain_fairness
    );

    // The fairness gain may not tank overall throughput: the batch tenant's
    // mean JCT stays within a few percent of its FCFS value.
    let batch = TenantId(1);
    let fcfs_batch = fcfs.tenant_stats(batch).unwrap().mean;
    let wrr_batch = wrr.tenant_stats(batch).unwrap().mean;
    assert!(
        wrr_batch < 1.15 * fcfs_batch,
        "WRR must not collapse the batch tenant: {wrr_batch:.1}s vs {fcfs_batch:.1}s"
    );

    // SLO-EDF earns its name: interactive SLO attainment is at least FCFS's.
    let slo_of = |o: &TenantMixOutcome, t: TenantId| {
        o.slo
            .iter()
            .find(|s| s.tenant == t)
            .map(|s| s.attainment())
            .unwrap()
    };
    assert!(slo_of(&edf, TenantId(0)) >= slo_of(&fcfs, TenantId(0)));
}

#[test]
fn per_tenant_record_sets_are_conserved_and_leak_free() {
    let mix = contention_mix();
    let trace = mix_requests(&mix);
    for scheduling in SchedulingPolicyKind::all() {
        let result = Simulator::with_requests(mix_config(&mix, scheduling), trace.clone()).run();
        assert_eq!(result.rejected_requests, 0);
        // Every generated request completes exactly once, under the tenant it
        // was generated with (no cross-tenant leakage through the policy
        // indirection).
        let mut seen = vec![false; trace.len()];
        for r in &result.records {
            let id = r.request.id as usize;
            assert!(
                !seen[id],
                "{}: request {id} completed twice",
                scheduling.name()
            );
            seen[id] = true;
            assert_eq!(
                r.request.tenant,
                trace[id].tenant,
                "{}: tenant leaked on request {id}",
                scheduling.name()
            );
            assert_eq!(
                r.request,
                trace[id],
                "{}: request mutated",
                scheduling.name()
            );
        }
        assert!(
            seen.iter().all(|&s| s),
            "{}: conservation",
            scheduling.name()
        );
        // Per-tenant counts match the trace's.
        for (tenant, stats) in result.per_tenant_stats() {
            let generated = trace.iter().filter(|r| r.tenant == tenant).count();
            assert_eq!(stats.count, generated, "{}: {tenant}", scheduling.name());
        }
    }
}

#[test]
fn single_tenant_traces_make_all_policies_coincide_with_fcfs() {
    // On a single-tenant trace WRR has one participant and EDF sees one
    // deadline offset, so both degrade to FCFS — bit-identically.
    let experiment = JctExperiment {
        num_requests: 40,
        rps: Some(0.3), // overloaded enough that queues form
        ..JctExperiment::paper_default()
    };
    let fcfs = Simulator::new(experiment.simulation_config(Method::hack())).run();
    for scheduling in [
        SchedulingPolicyKind::WeightedRoundRobin,
        SchedulingPolicyKind::SloEdf,
    ] {
        let mut config = experiment.simulation_config(Method::hack());
        config.policy.scheduling = scheduling;
        let run = Simulator::new(config).run();
        assert_eq!(run, fcfs, "{} on a single tenant", scheduling.name());
    }
}
