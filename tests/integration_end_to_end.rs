//! Cross-crate integration tests: the numerical pipeline end to end — quantization,
//! homomorphic attention, KV state evolution over prefill + many decode steps, and the
//! paged-cache memory accounting — checked against the exact computation.

use hack_attention::baseline::{baseline_attention, AttentionMask};
use hack_core::prelude::*;
use hack_kvcache::{CacheLayout, KvCacheManager, KvShape, SequenceId};
use hack_quant::params::RoundingMode;

fn structured(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = DetRng::new(seed);
    Matrix::from_fn(rows, cols, |t, c| {
        ((c % 8) as f32 - 3.5) * 0.3
            + 0.25 * rng.normal_f32(0.0, 1.0)
            + 0.05 * (t as f32 * 0.02).sin()
    })
}

#[test]
fn prefill_plus_decode_tracks_exact_attention_over_many_steps() {
    // Run HACK prefill on 200 tokens, then 100 decode steps, and verify the decode
    // output stays aligned with exact attention computed over the full history.
    let d_h = 64;
    let prompt = 200;
    let steps = 100;
    let cfg = HackConfig::paper_default();

    let k_full = structured(prompt + steps, d_h, 1);
    let v_full = structured(prompt + steps, d_h, 2);
    let q_full = structured(prompt + steps, d_h, 3);

    let mut rng = DetRng::new(10);
    let prefill = hack_prefill_attention(
        &q_full.row_block(0, prompt),
        &k_full.row_block(0, prompt),
        &v_full.row_block(0, prompt),
        cfg,
        &mut rng,
    );
    let mut state = prefill.state;

    let mut cos_sum = 0.0;
    for step in 0..steps {
        let t = prompt + step;
        let (out, stats) = state.decode_step(q_full.row(t), k_full.row(t), v_full.row(t), &mut rng);
        assert_eq!(state.seq_len(), t + 1);
        assert_eq!(
            stats.requantized_elements, 0,
            "RQE must prevent requantization"
        );

        let exact = baseline_attention(
            &q_full.row_block(t, t + 1),
            &k_full.row_block(0, t + 1),
            &v_full.row_block(0, t + 1),
            AttentionMask::Causal,
        );
        let out_m = Matrix::from_vec(1, d_h, out);
        cos_sum += hack_tensor::cosine_similarity(&exact, &out_m) as f64;
    }
    let avg_cos = cos_sum / steps as f64;
    assert!(
        avg_cos > 0.93,
        "average decode cosine over {steps} steps: {avg_cos}"
    );

    // The quantized state must keep its invariants after all those appends.
    assert!(state.k_quant().sums_consistent());
    assert!(state.v_quant().sums_consistent());
    assert!(state.tail_tokens() < cfg.partition.get());
    // With a small head dimension (64) and ~15% of the short sequence still sitting in
    // the FP16 tail, the compression is a bit below the ~85% asymptotic figure.
    let compression = 1.0 - state.kv_bytes() as f64 / state.fp16_bytes() as f64;
    assert!(compression > 0.7, "state compression {compression}");
}

#[test]
fn rqe_ablation_accumulates_requantization_work() {
    let d_h = 32;
    let prompt = 100;
    let steps = 50;
    let k = structured(prompt, d_h, 4);
    let v = structured(prompt, d_h, 5);
    let mut rng = DetRng::new(11);

    let mut with_rqe = HackKvState::from_prefill(&k, &v, HackConfig::paper_default(), &mut rng);
    let mut without_rqe =
        HackKvState::from_prefill(&k, &v, HackConfig::without_requant_elimination(), &mut rng);

    for step in 0..steps {
        let row: Vec<f32> = (0..d_h).map(|i| ((i + step) as f32 * 0.03).sin()).collect();
        with_rqe.append_token(&row, &row, &mut rng);
        without_rqe.append_token(&row, &row, &mut rng);
    }
    assert_eq!(with_rqe.append_stats().requantized_elements, 0);
    assert!(
        without_rqe.append_stats().requantized_elements > steps * d_h,
        "no-RQE requantized {} elements",
        without_rqe.append_stats().requantized_elements
    );
    assert_eq!(with_rqe.seq_len(), without_rqe.seq_len());
}

#[test]
fn paged_cache_admits_many_more_sequences_under_hack_layout() {
    let shape = KvShape {
        layers: 8,
        kv_heads: 8,
        head_dim: 128,
    };
    let budget = 2 * 1024 * 1024 * 1024usize; // 2 GiB of KV budget
    let count_admitted = |layout: CacheLayout| {
        let cache = KvCacheManager::new(budget, shape, layout);
        let mut n = 0u64;
        while cache.admit(SequenceId(n), 4096) {
            n += 1;
        }
        n
    };
    let fp16 = count_admitted(Method::Baseline.cache_layout());
    let hack = count_admitted(Method::hack().cache_layout());
    assert!(fp16 >= 1);
    assert!(
        hack >= 5 * fp16,
        "HACK layout admitted {hack} sequences vs {fp16} for FP16"
    );
}

#[test]
fn quantized_tensor_survives_transport_and_keeps_computing() {
    // Quantize K/V, push them through the wire format, rebuild the state on the
    // "decode side" and verify attention still matches the local computation exactly.
    let d_h = 64;
    let tokens = 150;
    let k = structured(tokens, d_h, 6);
    let v = structured(tokens, d_h, 7);
    let mut rng = DetRng::new(12);
    let state = HackKvState::from_prefill(&k, &v, HackConfig::paper_default(), &mut rng);

    let msg = hack_transport::KvTransferMessage {
        request_id: 1,
        layer: 0,
        head: 0,
        first_token: 3,
        k: state.k_quant().clone(),
        v: state.v_quant().clone(),
        v_tail: state.v_tail().clone(),
    };
    let rebuilt_msg = hack_transport::KvTransferMessage::decode(&msg.encode());
    let rebuilt = HackKvState::from_parts(
        HackConfig::paper_default(),
        d_h,
        rebuilt_msg.k,
        rebuilt_msg.v,
        rebuilt_msg.v_tail,
    );

    let q: Vec<f32> = (0..d_h).map(|i| (i as f32 * 0.05).cos()).collect();
    let mut rng_a = DetRng::new(77);
    let mut rng_b = DetRng::new(77);
    let (local, _) = state.decode_attention(&q, &mut rng_a);
    let (remote, _) = rebuilt.decode_attention(&q, &mut rng_b);
    assert_eq!(local, remote, "transported state must compute identically");
}

#[test]
fn stochastic_rounding_averages_to_the_exact_product() {
    // End-to-end unbiasedness: averaging HACK prefill outputs over many stochastic
    // quantizations converges towards exact attention.
    let d_h = 32;
    let tokens = 64;
    let q = structured(tokens, d_h, 8);
    let k = structured(tokens, d_h, 9);
    let v = structured(tokens, d_h, 10);
    let exact = baseline_attention(&q, &k, &v, AttentionMask::Causal);

    let trials = 24;
    let mut accumulated = Matrix::zeros(tokens, d_h);
    let cfg = HackConfig {
        rounding: RoundingMode::Stochastic,
        ..HackConfig::paper_default()
    };
    for t in 0..trials {
        let mut rng = DetRng::new(1000 + t);
        let out = hack_prefill_attention(&q, &k, &v, cfg, &mut rng).output;
        accumulated = accumulated.add(&out);
    }
    let mean = accumulated.scale(1.0 / trials as f32);
    let cos = hack_tensor::cosine_similarity(&exact, &mean);
    assert!(cos > 0.97, "averaged stochastic output cosine {cos}");
}
