//! Integration: topology-aware fault storms end to end.
//!
//! A ToR switch fault must fail *exactly* the replicas cabled behind it
//! (correlated failure), sever every in-flight transfer crossing its uplink
//! (partial progress preserved, deterministic seeded retries), and — once the
//! switch recovers — the memory-wait queue that built up during the outage
//! must drain, which the per-fault `recovery_drain_secs` sensor reports.
//! Throughout, request conservation holds: every generated request completes
//! exactly once, is rejected, or is accounted as aborted.

use hack_cluster::SimulationResult;
use hack_core::prelude::*;
use hack_sim::EngineMode;

fn storm_config(n: usize, rps: f64) -> SimulationConfig {
    let mut cluster = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
    cluster.topology = TopologySpec::LinkGraph(LinkGraphSpec::paper_default());
    SimulationConfig {
        cluster,
        trace: TraceConfig {
            dataset: Dataset::Arxiv,
            rps,
            num_requests: n,
            max_context: ModelKind::Llama31_70B.spec().max_context,
            seed: 11,
        },
        profile: Method::Baseline.profile(),
        policy: PolicyConfig::default(),
        faults: FaultPlan::none(),
        telemetry: TelemetryConfig::Off,
        cache: CacheConfig::Off,
    }
}

fn assert_conserved(result: &SimulationResult, total: usize) {
    let mut seen = vec![0usize; total];
    for r in &result.records {
        seen[r.request.id as usize] += 1;
    }
    assert!(seen.iter().all(|&n| n <= 1), "a request completed twice");
    let missing = seen.iter().filter(|&&n| n == 0).count();
    assert_eq!(
        missing,
        result.rejected_requests + result.aborted_requests,
        "conservation: completed {} + rejected {} + aborted {} != total {total}",
        result.records.len(),
        result.rejected_requests,
        result.aborted_requests
    );
}

#[test]
fn tor_fault_is_correlated_and_recovery_drains_the_memory_wait_queue() {
    // A decode side of two replicas, both cabled behind ToR 0, with the KV
    // budget squeezed so admission is memory-bound: the switch outage takes
    // the whole decode fleet down, arrivals park in the memory-wait queue
    // (the paper's CPU-swap path), and the backlog at recovery exceeds what
    // the two empty replicas can admit at once — the queue drains gradually
    // as decodes finish, which `recovery_drain_secs` measures.
    let mut config = storm_config(60, 0.4);
    config.cluster.fleet.decode.get_mut(0).replicas = 2;
    config.cluster.activation_reserve = 0.55;
    let mut plan = FaultPlan::none();
    plan.push(FaultEvent::transient(FaultDomain::DecodeTor(0), 30.0, 80.0));
    config.faults = plan;

    let result = Simulator::new(config).run();

    // Exactly the replicas behind the switch — both of them — plus the
    // fabric event itself.
    assert_eq!(result.faults.len(), 1);
    let fault = result.faults[0];
    assert_eq!(fault.replicas_affected, 2);
    assert_eq!(
        result.injected_failures, 3,
        "one fabric fault + one replica failure per shielded replica"
    );
    assert!((fault.downtime_secs - 50.0).abs() < 1e-9);

    // Nothing decodes during the outage (the whole decode side is dead), so
    // the degraded-window goodput is zero.
    assert_eq!(result.degraded_secs, 50.0);
    assert_eq!(
        result.degraded_goodput, 0.0,
        "nothing can complete while the whole decode side is down"
    );

    // The outage parked requests in the memory-wait queue, and recovery
    // found more backlog than fits at once: the drain sensor is positive.
    assert!(
        result.swapped_requests > 0,
        "the outage must overflow arrivals into the memory-wait queue"
    );
    assert!(
        fault.recovery_drain_secs > 0.0,
        "recovery must measure the memory-wait backlog draining: {fault:?}"
    );
    // The drain cannot outlast the rest of the run.
    assert!(fault.recovery_drain_secs < result.makespan - 80.0);

    // Work resumes after recovery and everything is accounted for.
    assert!(result.records.iter().any(|r| r.finish_time > 80.0));
    assert_conserved(&result, 60);
}

#[test]
fn aborted_transfers_resume_with_partial_progress_and_bounded_retries() {
    // A mid-run spine outage severs every prefill->decode path: in-flight
    // flows abort keeping their partial progress, and the seeded backoff
    // retries them until the fabric heals.
    let mut config = storm_config(60, 0.4);
    let mut plan = FaultPlan::none();
    plan.push(FaultEvent::transient(FaultDomain::Spine(0), 20.0, 40.0));
    config.faults = plan;

    let result = Simulator::new(config).run();

    let fault = result.faults[0];
    assert_eq!(fault.replicas_affected, 0, "spine fails no replicas");
    assert!(
        fault.requests_aborted > 0,
        "a 20s outage under load must catch transfers in flight"
    );
    assert!(
        result.transfer_retries > 0,
        "transfers attempted during the outage must retry"
    );
    // The histogram indexes by retry attempts used; its tail is bounded by
    // the per-transfer cap and its population is the requests that retried.
    let retried: usize = result.retry_histogram.iter().sum();
    assert!(retried > 0);
    assert!(retried <= 60);

    // Every request still completes (the outage heals before the retry
    // budget runs out), with a consistent JCT decomposition: aborted partial
    // progress and backoff gaps are charged to communication.
    assert_eq!(result.records.len(), 60);
    assert_eq!(result.aborted_requests, 0);
    for r in &result.records {
        let jct = r.jct();
        let total = r.breakdown.total();
        assert!(
            (total - jct).abs() < 1e-6 * jct.max(1.0),
            "request {}: breakdown {total} vs jct {jct}",
            r.request.id
        );
    }
    assert_conserved(&result, 60);

    // Deterministic, and identical across both engine layouts.
    let again = Simulator::new(config).run_with_mode(EngineMode::Boxed);
    assert_eq!(result, again);
}

#[test]
fn degraded_window_sensors_match_a_recount_from_the_records() {
    let healthy = Simulator::new(storm_config(60, 1.0)).run();

    let mut config = storm_config(60, 1.0);
    let mut plan = FaultPlan::none();
    plan.push(FaultEvent::transient(FaultDomain::DecodeTor(0), 30.0, 90.0));
    config.faults = plan;
    let degraded = Simulator::new(config).run();

    assert_conserved(&degraded, 60);

    // The degraded window is the fault window clipped to the makespan.
    let window_end = degraded.makespan.min(90.0);
    assert!((degraded.degraded_secs - (window_end - 30.0)).abs() < 1e-9);

    // The goodput sensor equals completions-inside-the-window over the
    // window length, recounted from the records.
    let in_window = degraded
        .records
        .iter()
        .filter(|r| r.finish_time >= 30.0 && r.finish_time <= window_end)
        .count();
    assert!(
        (degraded.degraded_goodput - in_window as f64 / degraded.degraded_secs).abs() < 1e-9,
        "goodput sensor {} vs recount {in_window}/{}",
        degraded.degraded_goodput,
        degraded.degraded_secs
    );

    // Aborting work mid-decode and re-running it cannot speed the run up.
    assert!(degraded.requeued_requests > 0);
    assert!(degraded.average_jct() > healthy.average_jct());
    assert!(degraded.makespan >= healthy.makespan - 1e-9);
}
