//! Cross-crate integration tests: numerical fidelity of the full quantization →
//! attention → model pipeline (the machinery behind Tables 6–8).

use hack_core::fidelity::{evaluate, evaluate_all, FidelitySetup};
use hack_core::prelude::*;

fn quick() -> FidelitySetup {
    FidelitySetup {
        kernel_seq_len: 192,
        head_dim: 64,
        prompt_len: 32,
        generate_tokens: 12,
        trials: 2,
        seed: 31,
    }
}

#[test]
fn baseline_fidelity_is_essentially_perfect() {
    let report = evaluate(Method::Baseline, &quick());
    assert!(report.attention_cosine > 0.999);
    assert!(report.token_agreement > 0.9);
    assert!(report.fidelity_score() > 0.95);
}

#[test]
fn all_methods_preserve_most_of_the_computation() {
    let methods = [
        Method::Baseline,
        Method::CacheGen,
        Method::KvQuant,
        Method::hack(),
        Method::Hack { partition: 32 },
        Method::Hack { partition: 128 },
    ];
    for report in evaluate_all(&methods, &quick()) {
        assert!(
            report.attention_cosine > 0.75,
            "{}: attention cosine {}",
            report.method_name,
            report.attention_cosine
        );
        assert!(
            report.fidelity_score() > 0.4,
            "{}: fidelity {}",
            report.method_name,
            report.fidelity_score()
        );
    }
}

#[test]
fn accuracy_proxy_ordering_matches_table6_shape() {
    // The paper's ordering: HACK Π=32 ≥ HACK Π=64, and every 2-bit method stays within
    // a few points of the baseline. Averaged over a few trials the kernel-level
    // ordering must hold; model-level token agreement is noisier, so the composite
    // score is only required to stay in a tight band.
    let setup = FidelitySetup {
        trials: 3,
        ..quick()
    };
    let baseline = evaluate(Method::Baseline, &setup);
    let p32 = evaluate(Method::Hack { partition: 32 }, &setup);
    let p128 = evaluate(Method::Hack { partition: 128 }, &setup);

    let acc = |r: &hack_core::FidelityReport| r.accuracy_proxy(86.39, 3.0);
    assert!(acc(&baseline) >= acc(&p32));
    assert!(acc(&baseline) >= acc(&p128));
    assert!(
        p32.attention_cosine >= p128.attention_cosine - 0.02,
        "Π=32 kernel fidelity {} vs Π=128 {}",
        p32.attention_cosine,
        p128.attention_cosine
    );
    // All proxies stay within 4 accuracy points of the baseline anchor.
    for r in [&p32, &p128] {
        assert!(acc(r) > 82.4, "{}: proxy {}", r.method_name, acc(r));
    }
}

#[test]
fn hack_rqe_ablation_accuracy_drop_is_small() {
    // Table 7: removing RQE costs at most ~0.3 accuracy points.
    let setup = quick();
    let hack = evaluate(Method::hack(), &setup);
    let no_rqe = evaluate(Method::HackNoRqe, &setup);
    let drop = hack.accuracy_proxy(86.39, 3.0) - no_rqe.accuracy_proxy(86.39, 3.0);
    assert!(drop.abs() < 1.0, "RQE ablation accuracy drop {drop}");
}

#[test]
fn hack_se_ablation_is_numerically_identical() {
    // SE only avoids recomputation; the numbers must not change at all.
    let setup = quick();
    let hack = evaluate(Method::hack(), &setup);
    let no_se = evaluate(Method::HackNoSe, &setup);
    assert!((hack.attention_cosine - no_se.attention_cosine).abs() < 1e-9);
    assert!((hack.logit_cosine - no_se.logit_cosine).abs() < 1e-9);
    assert_eq!(hack.token_agreement, no_se.token_agreement);
}

#[test]
fn wire_compressors_round_trip_with_expected_compression() {
    // The compressor objects exposed by `Method` must reproduce the ~86% (2-bit) and
    // 50-75% (FP8/4) compression rates the paper quotes, and reconstruct KV data that
    // still points in the same direction.
    // KV-like data: per-channel offsets plus a slow per-channel random walk, the
    // token-to-token correlation CacheGen's delta coding exploits.
    let mut rng = DetRng::new(5);
    let tokens = 1024;
    let channels = 128;
    let mut kv = Matrix::zeros(tokens, channels);
    for c in 0..channels {
        let mut walk = rng.normal_f32(0.0, 1.0);
        for t in 0..tokens {
            walk += rng.normal_f32(0.0, 0.04);
            kv.set(t, c, ((c % 9) as f32 - 4.0) * 0.3 + walk);
        }
    }
    for (method, min_ratio, max_ratio) in [
        (Method::KvQuant, 0.80, 0.92),
        (Method::CacheGen, 0.78, 0.95),
        (Method::Fp8, 0.49, 0.51),
        (Method::Fp4, 0.74, 0.76),
    ] {
        let compressor = method.compressor().expect("codec method");
        let compressed = compressor.compress(&kv, &mut rng);
        let ratio = compressed.compression_ratio();
        assert!(
            ratio >= min_ratio && ratio <= max_ratio,
            "{}: compression ratio {ratio}",
            method.name()
        );
        let restored = compressor.decompress(&compressed);
        assert_eq!(restored.shape(), kv.shape());
        let cos = hack_tensor::cosine_similarity(&kv, &restored);
        assert!(cos > 0.9, "{}: reconstruction cosine {cos}", method.name());
    }
}
