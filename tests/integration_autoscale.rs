//! Integration: elastic decode fleets end to end.
//!
//! Scale-downs must drain — a replica ordered away finishes its in-flight
//! decodes and honours its KV reservations before leaving, so shrinking the
//! fleet never loses a request. `ScalingPolicyKind::Off` must reproduce the
//! scaling-free simulator bit-for-bit (the retained-reference contract), an
//! armed-but-inert controller must match it too, and every scaling decision —
//! being pure clock-and-state logic — must land bit-identically across engine
//! layouts and across repeat runs.

use hack_cluster::SimulationResult;
use hack_core::prelude::*;
use hack_sim::EngineMode;
use std::sync::Arc;

fn experiment() -> AutoscaleExperiment {
    AutoscaleExperiment {
        num_requests: 40,
        ..AutoscaleExperiment::paper_sweep()
    }
}

fn assert_conserved(result: &SimulationResult, total: usize, label: &str) {
    assert_eq!(
        result.records.len() + result.rejected_requests + result.aborted_requests,
        total,
        "{label}: completed {} + rejected {} + aborted {} != total {total}",
        result.records.len(),
        result.rejected_requests,
        result.aborted_requests
    );
}

#[test]
fn scale_downs_drain_without_losing_requests() {
    // Every (shape, policy) cell of the sweep must conserve requests: with no
    // faults injected, nothing is rejected or aborted, so draining replicas
    // out of the fleet mid-run loses nothing — their in-flight decodes and
    // reserved transfers finish before the replica leaves.
    let e = experiment();
    for shape in TraceShape::all() {
        for scaling in ScalingPolicyKind::all(e.per_replica_rps) {
            let result = e.run_cell(shape, scaling, Method::hack());
            assert_conserved(&result, e.num_requests, shape.name());
            assert_eq!(
                result.records.len(),
                e.num_requests,
                "{}/{}: a faultless run completes everything",
                shape.name(),
                scaling.name()
            );
        }
    }
    // The sweep actually shrinks the fleet somewhere: the troughs of both
    // shapes leave the decode fleet idle enough to drain replicas.
    let shrunk = e
        .sweep(Method::hack())
        .into_iter()
        .any(|o| o.scale_downs > 0);
    assert!(shrunk, "the sweep must exercise the drain path");
}

#[test]
fn off_is_bit_identical_to_the_scaling_free_simulator() {
    // The retained-reference contract: `ScalingPolicyKind::Off` skips the
    // controller entirely, so its run — cost sensors included — equals the
    // pre-scaling simulator (`PolicyConfig::default()`) bit for bit.
    let e = experiment();
    let requests = Arc::new(e.trace(TraceShape::Diurnal));
    let off = e.simulation_config(ScalingPolicyKind::Off, Method::hack());
    let mut plain = off;
    plain.policy = PolicyConfig::default();
    assert_eq!(
        Simulator::with_requests(off, requests.clone()).run(),
        Simulator::with_requests(plain, requests.clone()).run(),
        "Off must not perturb the scaling-free run"
    );

    // An armed controller whose watermarks can never fire must also match:
    // ticking and probing without ordering changes nothing observable.
    let inert = e.simulation_config(
        ScalingPolicyKind::Threshold {
            high: 1e18,
            low: -1.0,
        },
        Method::hack(),
    );
    let inert_run = Simulator::with_requests(inert, requests.clone()).run();
    assert_eq!(
        Simulator::with_requests(off, requests).run(),
        inert_run,
        "an inert controller must be bit-identical to Off"
    );
    assert_eq!((inert_run.scale_ups, inert_run.scale_downs), (0, 0));
}

#[test]
fn scaling_decisions_are_engine_independent_and_reproducible() {
    // Scaling decisions are pure clock-and-state logic on the probe tick, so
    // the full result — scale events, billed dollars, every JCT — must be
    // bit-identical across engine layouts and across repeat runs.
    let e = experiment();
    for shape in TraceShape::all() {
        for scaling in ScalingPolicyKind::all(e.per_replica_rps) {
            let requests = Arc::new(e.trace(shape));
            let config = e.simulation_config(scaling, Method::hack());
            let run = |mode| Simulator::with_requests(config, requests.clone()).run_with_mode(mode);
            let slab = run(EngineMode::Slab);
            let boxed = run(EngineMode::Boxed);
            assert_eq!(
                slab,
                boxed,
                "{}/{}: engine layouts diverged",
                shape.name(),
                scaling.name()
            );
            assert_eq!(
                slab,
                run(EngineMode::Slab),
                "{}/{}: repeat runs diverged",
                shape.name(),
                scaling.name()
            );
        }
    }
}

#[test]
fn draining_stops_the_meter() {
    // Dollars are racked uptime × price: a drained replica's meter stops at
    // the drain instant, so — at equal makespan, which this over-provisioned
    // fleet keeps across policies — a run that only scaled down bills
    // strictly less than the static fleet.
    let e = experiment();
    let outcomes = e.sweep(Method::hack());
    for shape in TraceShape::all() {
        let of = |name: &str| {
            outcomes
                .iter()
                .find(|o| o.shape == shape && o.policy.name() == name)
                .copied()
                .expect("sweep covers every policy")
        };
        let off = of("off");
        for o in outcomes.iter().filter(|o| o.shape == shape) {
            if o.scale_downs > 0 && o.scale_ups == 0 && o.makespan_s == off.makespan_s {
                assert!(
                    o.gpu_dollars < off.gpu_dollars,
                    "{}/{}: draining must stop the meter (${} vs static ${})",
                    shape.name(),
                    o.policy.name(),
                    o.gpu_dollars,
                    off.gpu_dollars
                );
            }
        }
        // The claim is not vacuous: some policy actually drains on each shape
        // without paying it back with a longer run.
        assert!(
            outcomes.iter().any(|o| o.shape == shape
                && o.scale_downs > 0
                && o.scale_ups == 0
                && o.makespan_s == off.makespan_s
                && o.gpu_dollars < off.gpu_dollars),
            "{}: no drain-only run undercut the static fleet",
            shape.name()
        );
    }
}
