//! Offline stub of `serde_json`.
//!
//! Serializes any [`serde::Serialize`] type (via the stub's [`Value`] data model)
//! to JSON text, and parses JSON text back into [`Value`]. Covers the surface this
//! workspace uses: `to_string`, `to_string_pretty`, `from_str` into `Value`.

pub use serde::Value;

/// Error produced by [`from_str`] on malformed JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: usize,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; emit null like serde_json's arbitrary-precision fallback.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(out: &mut String, value: &Value, pretty: bool, indent: usize) {
    let pad = |out: &mut String, level: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..level {
                out.push_str("  ");
            }
        }
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_value(out, item, pretty, indent + 1);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_escaped(out, key);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, pretty, indent + 1);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), false, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), true, 0);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error<T>(&self, message: impl Into<String>) -> Result<T, Error> {
        Err(Error {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(format!("expected '{}'", byte as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(_) => self.parse_number(),
            None => self.error("unexpected end of input"),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            self.error(format!("expected '{literal}'"))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Number(n)),
            Err(_) => self.error(format!("invalid number '{text}'")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.error("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.error("invalid \\u escape"),
                            }
                        }
                        _ => return self.error("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| Error {
                        message: "invalid UTF-8".into(),
                        offset: self.pos,
                    })?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.error("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return self.error("expected ',' or '}'"),
            }
        }
    }
}

/// Parses JSON text into a [`Value`].
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.error("trailing characters");
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let v = Value::Object(vec![
            ("id".into(), Value::String("fig9".into())),
            (
                "rows".into(),
                Value::Array(vec![Value::Number(10.0), Value::Number(15.5)]),
            ),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
        assert!(pretty.contains("\n"));
    }

    #[test]
    fn strings_escape() {
        let v = Value::String("a\"b\\c\nd".into());
        assert_eq!(from_str(&to_string(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&40.0f64).unwrap(), "40");
        assert_eq!(to_string(&15.5f64).unwrap(), "15.5");
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
    }
}
