//! Offline stub of `rand`: only the [`RngCore`] trait (implemented by
//! `hack_tensor::DetRng`) and the [`Error`] type its fallible method mentions.

/// Error type for fallible RNG operations. The in-tree generators never fail, so
/// this is effectively uninhabited in practice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RNG failure")
    }
}

impl std::error::Error for Error {}

/// Core uniform random number generation interface.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}
