//! Offline stub of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` without `syn` or
//! `quote`, by walking the raw [`proc_macro::TokenStream`]. Supports what this
//! workspace actually derives on: non-generic structs with named fields and
//! non-generic enums (unit, tuple and struct variants). `#[serde(...)]` attributes
//! are not supported and will cause a compile error through the real attribute
//! check below.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this many fields.
    Tuple(usize),
    /// Struct variant with these named fields.
    Struct(Vec<String>),
}

/// Skips attributes (`#[...]`) at the current position.
fn skip_attributes(tokens: &[TokenTree], mut pos: usize) -> usize {
    while pos + 1 < tokens.len() {
        match (&tokens[pos], &tokens[pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                pos += 2;
            }
            _ => break,
        }
    }
    pos
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at the current position.
fn skip_visibility(tokens: &[TokenTree], mut pos: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(pos) {
        if id.to_string() == "pub" {
            pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    pos += 1;
                }
            }
        }
    }
    pos
}

/// Parses the named fields of a brace-delimited body: `field: Type, ...`.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < body.len() {
        pos = skip_attributes(body, pos);
        pos = skip_visibility(body, pos);
        let Some(TokenTree::Ident(name)) = body.get(pos) else {
            break;
        };
        fields.push(name.to_string());
        pos += 1;
        // Expect `:` then the type; skip type tokens up to a top-level comma
        // (tracking `<`/`>` depth so `Foo<A, B>` does not split).
        match body.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive stub: expected ':' after field name, got {other:?}"),
        }
        let mut angle_depth = 0i32;
        while pos < body.len() {
            match &body[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    fields
}

/// Counts the fields of a paren-delimited tuple body: `Type, Type, ...`.
fn count_tuple_fields(body: &[TokenTree]) -> usize {
    if body.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for token in body {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    count
}

fn parse_variants(body: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < body.len() {
        pos = skip_attributes(body, pos);
        let Some(TokenTree::Ident(name)) = body.get(pos) else {
            break;
        };
        let name = name.to_string();
        pos += 1;
        let kind = match body.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                VariantKind::Struct(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(&inner))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional explicit discriminant and the trailing comma.
        while pos < body.len() {
            if let TokenTree::Punct(p) = &body[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = skip_attributes(&tokens, 0);
    pos = skip_visibility(&tokens, pos);
    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, got {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic types are not supported (derive on `{name}`)");
        }
    }
    let body = match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        other => panic!(
            "serde_derive stub: only brace-bodied items are supported \
             (derive on `{name}`, got {other:?})"
        ),
    };
    match keyword.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("serde_derive stub: cannot derive on `{other}`"),
    }
}

fn serialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::serialize_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(__fields)\n\
                     }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vname}\")),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let pattern = binders.join(", ");
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                            .collect();
                        let items = items.join(", ");
                        arms.push_str(&format!(
                            "{name}::{vname}({pattern}) => ::serde::Value::Object(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Array(vec![{items}]))]),\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let pattern = fields.join(", ");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::serialize_value({f}))"
                                )
                            })
                            .collect();
                        let items = items.join(", ");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {pattern} }} => ::serde::Value::Object(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Object(vec![{items}]))]),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

/// Derives `serde::Serialize` (stub: conversion into the `serde::Value` model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    serialize_impl(&item)
        .parse()
        .expect("serde_derive stub generated invalid Rust")
}

/// Derives `serde::Deserialize` (stub: marker impl only).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse_item(input) {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde_derive stub generated invalid Rust")
}
