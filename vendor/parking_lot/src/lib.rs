//! Offline stub of `parking_lot`: a [`Mutex`] whose `lock()` returns the guard
//! directly (ignoring std's poison flag), matching the real crate's API shape.

/// Mutual exclusion primitive.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until it is available. Unlike `std`, a panic in
    /// a previous holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
