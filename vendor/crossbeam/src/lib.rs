//! Offline stub of `crossbeam`: `channel::{unbounded, Sender, Receiver}`
//! (implemented over `std::sync::mpsc` — single consumer is all this workspace
//! needs) and `thread::scope` (implemented over `std::thread::scope`, which has
//! provided structured borrowing of stack data since Rust 1.63).

pub mod thread {
    /// Scoped threads: spawned threads may borrow from the caller's stack and
    /// are all joined before `scope` returns.
    ///
    /// Unlike the real crossbeam (whose spawn closures receive a `&Scope`
    /// argument), this stub re-exports the `std` scope directly: closures take
    /// no argument. The `Result` mirrors crossbeam's signature — `Err` carries
    /// the payload of the first panicking thread instead of unwinding.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| std::thread::scope(f)))
    }

    /// Re-export of the std scope handle (`Scope::spawn` works as in std).
    pub use std::thread::Scope;
    /// Re-export of the std scoped join handle.
    pub use std::thread::ScopedJoinHandle;
}

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel (clonable).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; errors when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next message; errors when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// The receiver disconnected before the message could be delivered.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// All senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Nothing available right now (or all senders disconnected).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }
}

#[cfg(test)]
mod thread_tests {
    use super::thread;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data_and_join() {
        let counter = AtomicU32::new(0);
        let items = [1u32, 2, 3, 4];
        let counter_ref = &counter;
        let sum = thread::scope(|s| {
            let handles: Vec<_> = items
                .iter()
                .map(|&x| {
                    s.spawn(move || {
                        counter_ref.fetch_add(1, Ordering::SeqCst);
                        x * 10
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
        })
        .unwrap();
        assert_eq!(sum, 100);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panics_surface_as_err() {
        let result = thread::scope(|s| {
            s.spawn(|| panic!("boom"));
        });
        assert!(result.is_err());
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn multi_producer_fan_in() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
