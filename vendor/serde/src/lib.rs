//! Offline stub of `serde`.
//!
//! Provides the `Serialize`/`Deserialize` traits and the derive macros under their
//! usual names. Serialization goes through a single JSON-oriented [`Value`] data
//! model (re-exported by the `serde_json` stub) instead of serde's generic
//! serializer architecture — that is all this workspace needs.

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped data model produced by [`Serialize::serialize_value`].
///
/// Object keys keep insertion order so serialized output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object/array member lookup; returns `None` on kind or key mismatch.
    pub fn get_key(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get_key(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Types that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn serialize_value(&self) -> Value;
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

/// Marker trait for deserializable types.
///
/// Nothing in this workspace deserializes into concrete types (only into
/// [`Value`] via `serde_json::from_str`), so the trait carries no methods.
pub trait Deserialize {}

macro_rules! impl_serialize_number {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        })*
    };
}

impl_serialize_number!(f64, f32, usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(1.5f64.serialize_value(), Value::Number(1.5));
        assert_eq!(7usize.serialize_value(), Value::Number(7.0));
        assert_eq!(true.serialize_value(), Value::Bool(true));
        assert_eq!("hi".serialize_value(), Value::String("hi".into()));
        assert_eq!(Option::<f64>::None.serialize_value(), Value::Null);
    }

    #[test]
    fn indexing_and_comparisons() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("hack".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Number(1.0), Value::Number(2.5)]),
            ),
        ]);
        assert_eq!(v["name"], "hack");
        assert_eq!(v["xs"][1], 2.5);
        assert_eq!(v["missing"], Value::Null);
    }
}
