//! Offline stub of `bytes`: a growable byte buffer ([`BytesMut`]) and the
//! little-endian [`Buf`]/[`BufMut`] accessors used by `hack-transport`.

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Write-side accessors (little-endian where applicable).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side accessors (little-endian where applicable).
///
/// # Panics
/// All getters panic when the buffer holds fewer bytes than requested, like the
/// real crate.
pub trait Buf {
    /// Advances the read cursor by `count` bytes.
    fn advance(&mut self, count: usize);

    /// Copies out `N` bytes and advances.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        i32::from_le_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn advance(&mut self, count: usize) {
        assert!(count <= self.len(), "advance past end of buffer");
        *self = &self[count..];
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(N <= self.len(), "read past end of buffer");
        let mut out = [0u8; N];
        out.copy_from_slice(&self[..N]);
        *self = &self[N..];
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16_le(0x1234);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(0x0102_0304_0506_0708);
        b.put_i32_le(-42);
        b.put_slice(&[1, 2, 3]);
        let v = b.to_vec();
        assert_eq!(v.len(), 1 + 2 + 4 + 8 + 4 + 3);

        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(r.get_i32_le(), -42);
        assert_eq!(r, &[1, 2, 3]);
        r.advance(3);
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn reading_past_end_panics() {
        let mut r: &[u8] = &[1];
        let _ = r.get_u32_le();
    }
}
